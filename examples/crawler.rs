//! Topic-crawler simulation: gather resume pages from a synthetic web and
//! feed them to the pipeline — the paper's end-to-end data flow.
//!
//! Run with: `cargo run --example crawler`

use webre::Pipeline;
use webre_corpus::crawler::{crawl, PageKind, WebGraph};
use webre_schema::FrequentPathMiner;

fn main() {
    println!("building synthetic web: 48 resumes, 60 off-topic pages, hub directories...");
    let graph = WebGraph::build(314, 48, 60);
    println!("  {} pages total, seeds: {:?}", graph.pages.len(), graph.seeds);

    let concepts = webre::concepts::resume::concepts();
    let report = crawl(&graph, &concepts, 5, 1);
    println!();
    println!("== crawl report ==");
    println!("fetched:   {}", report.fetched);
    println!("harvested: {}", report.harvested.len());
    println!("precision: {:.2}", report.precision);
    println!("recall:    {:.2}", report.recall);

    // Feed the harvest into the pipeline.
    let htmls: Vec<String> = report
        .harvested
        .iter()
        .filter(|id| graph.pages[**id].kind == PageKind::Resume)
        .map(|id| graph.pages[*id].html.clone())
        .collect();
    let pipeline = Pipeline::resume_domain().with_miner(FrequentPathMiner {
        sup_threshold: 0.5,
        ratio_threshold: 0.3,
        constraints: Some(webre::concepts::resume::constraints()),
        max_len: None,
    });
    let docs = pipeline.convert_corpus(&htmls);
    let discovery = pipeline.discover_schema(&docs).expect("harvest non-empty");
    println!();
    println!(
        "== schema discovered from the {} harvested resumes ==",
        htmls.len()
    );
    print!("{}", discovery.dtd.to_dtd_string());
}
