//! Map non-conforming documents onto a discovered DTD with the tree-edit
//! based Document Mapping Component.
//!
//! Run with: `cargo run --example schema_mapping`

use webre::Pipeline;
use webre_corpus::CorpusGenerator;
use webre_schema::FrequentPathMiner;

fn main() {
    let corpus = CorpusGenerator::new(11).generate(60);
    let htmls: Vec<String> = corpus.iter().map(|d| d.html.clone()).collect();
    let pipeline = Pipeline::resume_domain().with_miner(FrequentPathMiner {
        sup_threshold: 0.5,
        ratio_threshold: 0.3,
        constraints: Some(webre::concepts::resume::constraints()),
        max_len: None,
    });

    let docs = pipeline.convert_corpus(&htmls);
    let discovery = pipeline.discover_schema(&docs).expect("non-empty corpus");
    println!("derived DTD:\n{}", discovery.dtd.to_dtd_string());

    let mut already = 0usize;
    let mut fixed = 0usize;
    let mut failed = 0usize;
    let mut total_distance = 0u64;
    let mut example_shown = false;

    for doc in &docs {
        if webre::xml::validate::conforms(doc, &discovery.dtd) {
            already += 1;
            continue;
        }
        let outcome = pipeline.map_document(doc, &discovery);
        if outcome.conforms {
            fixed += 1;
            total_distance += u64::from(outcome.edit_distance);
            if !example_shown {
                example_shown = true;
                println!("== example mapping ==");
                println!("before:\n{}", webre::xml::to_xml_pretty(doc));
                println!("after:\n{}", webre::xml::to_xml_pretty(&outcome.document));
                println!(
                    "edits: {} demoted, {} wrapped, {} inserted, {} merged, {} reordered \
                     (tree-edit distance {})",
                    outcome.demoted,
                    outcome.wrapped,
                    outcome.inserted,
                    outcome.merged,
                    outcome.reordered,
                    outcome.edit_distance
                );
                println!();
            }
        } else {
            failed += 1;
        }
    }

    println!("== mapping summary over {} documents ==", docs.len());
    println!("conforming as-extracted: {already}");
    println!("mapped to conformance:   {fixed}");
    println!("still non-conforming:    {failed}");
    if fixed > 0 {
        println!(
            "average tree-edit distance of successful mappings: {:.1}",
            total_distance as f64 / fixed as f64
        );
    }
}
