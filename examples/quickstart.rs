//! Quickstart: convert one HTML resume into concept-tagged XML.
//!
//! Run with: `cargo run --example quickstart`

use webre::Pipeline;

fn main() {
    // The paper's running example: an education section whose topic
    // sentence carries institution, degree, date and GPA information,
    // marked up for visual rendering only.
    let html = r#"
<html><head><title>Resume</title></head><body>
<p><b>Jane Doe</b></p>
<h2>Contact Information</h2>
<p>2211 Main Street<br>Phone: (530) 555-0199<br>Email: jane@example.com</p>
<h2>Objective</h2>
<p>A challenging development role in a fast-paced environment</p>
<h2>Education</h2>
<ul>
  <li>University of California at Davis, B.S.(Computer Science), June 1996, GPA 3.8/4.0</li>
  <li>Foothill College, Associate Degree in Information Systems, June 1994</li>
</ul>
<h2>Experience</h2>
<ul>
  <li>Verity Inc, Software Engineer, June 1996 - present</li>
</ul>
<h2>Skills</h2>
<p>C++, Java, Perl, SQL</p>
</body></html>"#;

    let pipeline = Pipeline::resume_domain();
    let (xml, stats) = pipeline.convert_html(html);

    println!("== extracted XML ==");
    print!("{}", webre::xml::to_xml_pretty(&xml));
    println!();
    println!("== conversion statistics ==");
    println!("tokens:            {}", stats.tokens_total);
    println!("identified:        {}", stats.tokens_identified);
    println!("unidentified:      {}", stats.tokens_unidentified);
    println!("decomposed:        {}", stats.tokens_decomposed);
    if let Some(ratio) = stats.identification_ratio() {
        println!("identification:    {:.1}%", ratio * 100.0);
    }
}
