//! Apply the framework to a *different* topic — the paper's future-work
//! direction of "broader types of topics such as product catalogs".
//!
//! The only input the approach needs is domain knowledge: topic concepts
//! with instances (here authored as JSON, the way a user would supply
//! them) and optional constraints. Everything else is domain-independent.
//!
//! Run with: `cargo run --example custom_domain`

use webre::concepts::Domain;
use webre::convert::{ConvertConfig, Converter};

const DOMAIN_JSON: &str = r#"{
  "concepts": [
    { "name": "product",      "role": "Title",
      "instances": ["product", "item", "model"] },
    { "name": "specs",        "role": "Title",
      "instances": ["specs", "specifications", "technical details", "features"] },
    { "name": "shipping",     "role": "Title",
      "instances": ["shipping", "delivery"] },
    { "name": "price",        "role": "Content",
      "instances": ["price", "sale price", "msrp", "our price"] },
    { "name": "manufacturer", "role": "Content",
      "instances": ["manufacturer", "made by", "brand"] },
    { "name": "weight",       "role": "Content",
      "instances": ["weight", "lbs", "kg"] },
    { "name": "warranty",     "role": "Content",
      "instances": ["warranty", "guarantee"] }
  ],
  "constraints": [
    "NoRepeat",
    { "MaxDepth": 3 }
  ]
}"#;

const CATALOG_PAGE: &str = r#"
<html><head><title>Widgets Direct</title></head><body>
<h2>Product: TurboWidget 3000</h2>
<p>The finest widget money can buy.</p>
<h2>Specifications</h2>
<ul>
  <li>Weight: 2.5 kg</li>
  <li>Made by Acme</li>
  <li>Two year warranty included</li>
</ul>
<h2>Shipping</h2>
<p>Our Price: $49.99, delivery in 3 days</p>
</body></html>"#;

fn main() {
    let domain = Domain::from_json(DOMAIN_JSON).expect("valid domain JSON");
    println!(
        "loaded domain: {} concepts, {} instances, {} constraints",
        domain.concepts.len(),
        domain.concept_set().total_instances(),
        domain.constraints.len()
    );

    let converter = Converter::with_config(
        domain.concept_set(),
        ConvertConfig {
            root_concept: "catalog-entry".into(),
            constraints: Some(domain.constraint_set()),
            ..ConvertConfig::default()
        },
    );
    let (xml, stats) = converter.convert_str(CATALOG_PAGE);

    println!();
    println!("== extracted XML ==");
    print!("{}", webre::xml::to_xml_pretty(&xml));
    println!();
    println!(
        "identified {}/{} tokens — the same rules, a different topic",
        stats.tokens_identified, stats.tokens_total
    );
}
