//! Full pipeline over a generated corpus: convert every document, discover
//! the majority schema, derive the DTD.
//!
//! Run with: `cargo run --example corpus_pipeline [-- <docs> <seed>]`

use webre::Pipeline;
use webre_corpus::CorpusGenerator;
use webre_schema::FrequentPathMiner;

fn main() {
    let mut args = std::env::args().skip(1);
    let docs: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2002);

    println!("generating {docs} heterogeneous resume documents (seed {seed})...");
    let corpus = CorpusGenerator::new(seed).generate(docs);
    let htmls: Vec<String> = corpus.iter().map(|d| d.html.clone()).collect();

    let pipeline = Pipeline::resume_domain().with_miner(FrequentPathMiner {
        sup_threshold: 0.5,
        ratio_threshold: 0.3,
        constraints: Some(webre::concepts::resume::constraints()),
        max_len: None,
    });

    println!("converting...");
    let xml_docs = pipeline.convert_corpus(&htmls);
    let avg_nodes: f64 = xml_docs
        .iter()
        .map(|d| d.element_count() as f64)
        .sum::<f64>()
        / xml_docs.len() as f64;
    println!("  {} XML documents, avg {avg_nodes:.1} concept nodes", xml_docs.len());

    println!("discovering majority schema...");
    let discovery = pipeline
        .discover_schema(&xml_docs)
        .expect("non-empty corpus");
    println!(
        "  {} frequent paths ({} candidate paths explored)",
        discovery.schema.len(),
        discovery.nodes_explored
    );
    println!();
    println!("== majority schema ==");
    print!("{}", discovery.schema.render());
    println!();
    println!("== derived DTD ({} elements) ==", discovery.dtd.len());
    print!("{}", discovery.dtd.to_dtd_string());

    // How many documents already conform, before any mapping?
    let conforming = xml_docs
        .iter()
        .filter(|d| webre::xml::validate::conforms(d, &discovery.dtd))
        .count();
    println!();
    println!(
        "{conforming}/{} documents conform to the DTD as-extracted \
         (the rest need the document mapper — see the schema_mapping example)",
        xml_docs.len()
    );
}
