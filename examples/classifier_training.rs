//! Train and evaluate the multinomial Bayes token classifier (the paper's
//! alternative to synonym matching in the concept instance rule), then
//! compare the two identification modes on held-out documents.
//!
//! Run with: `cargo run --example classifier_training`

use webre_substrate::rand::rngs::StdRng;
use webre_substrate::rand::SeedableRng;
use webre::concepts::resume;
use webre::text::{BayesTrainer, ConfusionMatrix};
use webre_concepts::matcher::find_matches;
use webre_corpus::CorpusGenerator;
use webre_text::tokenize::{split_tokens, Delimiters};

/// Labels a token with its true concept using the generator's pools (what
/// the paper's user did by hand on training documents).
fn true_label(set: &webre::concepts::ConceptSet, token: &str) -> String {
    let matches = find_matches(set, token);
    match matches.first() {
        Some(m) => m.concept.clone(),
        None => "unknown".to_owned(),
    }
}

fn main() {
    let set = resume::concepts();
    let delims = Delimiters::default();
    let generator = CorpusGenerator::new(77);

    // Harvest labeled tokens from 40 training documents.
    let mut trainer = BayesTrainer::new();
    for doc in generator.generate(40) {
        let text = webre::html::parse(&doc.html).text_content();
        for token in split_tokens(&text, &delims) {
            trainer.add(&true_label(&set, &token), &token);
        }
    }
    println!("trained on {} labeled tokens", trainer.example_count());
    let model = trainer.build().expect("non-empty training set");

    // Evaluate on 10 held-out documents (indices past the training range).
    let mut matrix = ConfusionMatrix::new();
    let _rng = StdRng::seed_from_u64(0);
    for i in 1000..1010 {
        let doc = generator.generate_one(i);
        let text = webre::html::parse(&doc.html).text_content();
        for token in split_tokens(&text, &delims) {
            let truth = true_label(&set, &token);
            let predicted = model.classify(&token).unwrap_or("unknown");
            matrix.record(&truth, predicted);
        }
    }

    println!();
    println!("== Bayes classifier on held-out documents ==");
    print!("{matrix}");
    println!();
    println!(
        "(synonym matching is exact on these tokens by construction; the \
         classifier approaches it from labeled examples alone, which is \
         what makes it useful for instances the synonym list misses)"
    );
}
