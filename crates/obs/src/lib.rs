//! Structured observability for the webre pipeline: hierarchical spans,
//! per-stage counters, power-of-two latency histograms and a
//! chrome://tracing-compatible export.
//!
//! # Design
//!
//! Instrumentation points never talk to a concrete backend. They hold a
//! [`Ctx`] — a copyable `(recorder, parent span)` pair — and call
//! [`Ctx::span`] / [`Ctx::count`] on it. The recorder behind the context
//! is chosen **once** at startup:
//!
//! * [`NoopRecorder`] (the default): `enabled()` is `false`, every call
//!   returns immediately, and the instrumented code paths stay
//!   byte-identical to the uninstrumented ones — a contract the
//!   `trace-noop` differential oracle in `webre-check` holds over fuzzed
//!   corpora.
//! * [`trace::TraceRecorder`]: records every span with timestamps from an
//!   injectable [`clock::Clock`], exportable as chrome://tracing JSON
//!   (`webre run --trace-out`), a deterministic span-tree (the golden
//!   trace test uses a [`clock::FakeClock`]), or a per-stage summary
//!   (`webre stats`).
//! * [`stats::StatsRecorder`]: lock-free per-stage aggregates (span
//!   counts, total time, power-of-two histograms) for the serving
//!   layer's extended `/metrics`.
//! * [`TeeRecorder`]: fans out to two recorders, so `webre serve
//!   --trace-out` can feed `/metrics` aggregates *and* a trace file.
//!
//! Time never comes from the instrumented crates themselves: the pure
//! pipeline crates (`convert`, `text`, `schema`, …) stay free of
//! `Instant`/`SystemTime` (the `no-wall-clock` lint rule enforces this,
//! and covers this crate too) — the clock is injected into the recorder
//! at construction.
//!
//! # Stage and counter catalogue
//!
//! Span names come from [`stage`] and counter names from [`counter`];
//! both are closed catalogues (`ALL` arrays) so exports can be validated
//! against them — the verify-script trace smoke gate cross-checks every
//! span name in a `--trace-out` file against [`stage::ALL`].

pub mod clock;
pub mod hist;
pub mod stats;
pub mod trace;

/// Span names: one per pipeline stage. Instrumentation must use these
/// constants (never ad-hoc strings) so traces stay machine-checkable.
pub mod stage {
    /// Whole-document conversion (parent of the four rule spans).
    pub const CONVERT: &str = "convert";
    /// The HTML-Tidy-like cleanup pass.
    pub const TIDY: &str = "tidy";
    /// Restructuring rule 1: delimiter tokenization.
    pub const TOKENIZATION: &str = "tokenization-rule";
    /// Restructuring rule 2: concept instance identification.
    pub const CONCEPT_INSTANCE: &str = "concept-instance-rule";
    /// Restructuring rule 3: grouping.
    pub const GROUPING: &str = "grouping-rule";
    /// Restructuring rule 4: consolidation.
    pub const CONSOLIDATION: &str = "consolidation-rule";
    /// Label-path extraction over a converted corpus.
    pub const EXTRACT_PATHS: &str = "extract-paths";
    /// Anti-monotone frequent-path mining.
    pub const MINE: &str = "mine-frequent-paths";
    /// DTD derivation (ordering + repetition rules).
    pub const DERIVE_DTD: &str = "derive-dtd";
    /// Mapping one document onto the derived DTD.
    pub const MAP: &str = "map-to-dtd";
    /// The admissible lower-bound filter tier of a planned mapping
    /// (profiles + histogram/structural bounds, no dynamic program).
    pub const MAP_FILTER: &str = "map-filter";
    /// The exact Zhang–Shasha tier of a planned mapping (edit-script DP).
    pub const MAP_EXACT: &str = "map-exact";
    /// One served HTTP request (root span in the serving layer).
    pub const REQUEST: &str = "request";

    /// The closed catalogue, in pipeline order.
    pub const ALL: &[&str] = &[
        CONVERT,
        TIDY,
        TOKENIZATION,
        CONCEPT_INSTANCE,
        GROUPING,
        CONSOLIDATION,
        EXTRACT_PATHS,
        MINE,
        DERIVE_DTD,
        MAP,
        MAP_FILTER,
        MAP_EXACT,
        REQUEST,
    ];

    /// Index of `name` in [`ALL`], if it is a catalogued stage.
    pub fn index_of(name: &str) -> Option<usize> {
        ALL.iter().position(|s| *s == name)
    }
}

/// Counter names: one per rule-firing statistic.
pub mod counter {
    /// Tokens produced by the tokenization rule.
    pub const TOKENS_SPLIT: &str = "tokens_split";
    /// Concept nodes created by the concept instance rule.
    pub const CONCEPTS_MATCHED: &str = "concepts_matched";
    /// GROUP nodes sunk by the grouping rule.
    pub const GROUPS_SUNK: &str = "groups_sunk";
    /// Structural (HTML/GROUP) nodes eliminated by consolidation.
    pub const NODES_CONSOLIDATED: &str = "nodes_consolidated";
    /// Candidate paths tested by the miner.
    pub const PATHS_EXPLORED: &str = "paths_explored";
    /// Candidate paths accepted as frequent.
    pub const PATHS_ACCEPTED: &str = "paths_accepted";
    /// Candidates cut by anti-monotone support pruning (not extended).
    pub const PATHS_PRUNED: &str = "paths_pruned";
    /// Planned mappings resolved by the conformant fast path (label-tree
    /// equality after transform; no dynamic program).
    pub const MAP_CONFORMANT: &str = "map_conformant";
    /// Planned mappings rejected because the admissible lower bound (or
    /// the exact cost, with the filter off) exceeded the budget.
    pub const MAP_REJECTED: &str = "map_rejected";
    /// Planned mappings that ran the exact Zhang–Shasha tier.
    pub const MAP_EXACT: &str = "map_exact";

    /// The closed catalogue, in pipeline order.
    pub const ALL: &[&str] = &[
        TOKENS_SPLIT,
        CONCEPTS_MATCHED,
        GROUPS_SUNK,
        NODES_CONSOLIDATED,
        PATHS_EXPLORED,
        PATHS_ACCEPTED,
        PATHS_PRUNED,
        MAP_CONFORMANT,
        MAP_REJECTED,
        MAP_EXACT,
    ];

    /// Index of `name` in [`ALL`], if it is a catalogued counter.
    pub fn index_of(name: &str) -> Option<usize> {
        ALL.iter().position(|s| *s == name)
    }
}

/// An opaque span handle. Meaning is recorder-private (the trace recorder
/// uses indices, the stats recorder packs stage + start time); `NONE`
/// marks "no span" and is what the no-op recorder always returns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span (no-op recorder, root contexts).
    pub const NONE: SpanId = SpanId(u64::MAX);

    /// Whether this is the absent span.
    pub fn is_none(self) -> bool {
        self == SpanId::NONE
    }
}

/// The recorder interface. Object-safe on purpose: the pipeline holds a
/// `&dyn Recorder` chosen once at startup, so disabling observability
/// costs one virtual `enabled()` check per instrumentation point.
pub trait Recorder: Send + Sync {
    /// `false` means every other method is a no-op; instrumentation
    /// points skip argument preparation entirely when this is `false`.
    fn enabled(&self) -> bool;
    /// Opens a span named `name` (a [`stage`] constant) under `parent`.
    fn span_start(&self, name: &'static str, parent: SpanId) -> SpanId;
    /// Closes a span returned by [`Recorder::span_start`].
    fn span_end(&self, id: SpanId);
    /// Adds `n` to the counter `name` (a [`counter`] constant),
    /// attributed to `span` where the recorder keeps per-span counters.
    fn count(&self, span: SpanId, name: &'static str, n: u64);
}

/// The disabled recorder: never records anything.
pub struct NoopRecorder;

/// The shared no-op instance behind [`Ctx::disabled`].
pub static NOOP: NoopRecorder = NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn span_start(&self, _name: &'static str, _parent: SpanId) -> SpanId {
        SpanId::NONE
    }

    fn span_end(&self, _id: SpanId) {}

    fn count(&self, _span: SpanId, _name: &'static str, _n: u64) {}
}

/// An instrumentation context: the recorder plus the current parent
/// span. `Copy`, two words — cheap to pass down every call that might
/// want to record something.
#[derive(Clone, Copy)]
pub struct Ctx<'a> {
    recorder: &'a dyn Recorder,
    parent: SpanId,
}

impl<'a> Ctx<'a> {
    /// A root context over `recorder`.
    pub fn new(recorder: &'a dyn Recorder) -> Ctx<'a> {
        Ctx {
            recorder,
            parent: SpanId::NONE,
        }
    }

    /// The context every un-instrumented caller uses: the static no-op
    /// recorder, zero-cost by construction.
    pub fn disabled() -> Ctx<'static> {
        Ctx::new(&NOOP)
    }

    /// Whether the recorder behind this context records anything.
    pub fn enabled(&self) -> bool {
        self.recorder.enabled()
    }

    /// Opens a child span; the returned [`Scope`] closes it on drop and
    /// exposes (via [`Scope::ctx`]) a context parented at the new span.
    pub fn span(&self, name: &'static str) -> Scope<'a> {
        if !self.recorder.enabled() {
            return Scope {
                ctx: *self,
                opened: false,
            };
        }
        let id = self.recorder.span_start(name, self.parent);
        Scope {
            ctx: Ctx {
                recorder: self.recorder,
                parent: id,
            },
            opened: true,
        }
    }

    /// Adds `n` to counter `name`, attributed to this context's span.
    pub fn count(&self, name: &'static str, n: u64) {
        if self.recorder.enabled() {
            self.recorder.count(self.parent, name, n);
        }
    }
}

/// RAII guard for an open span; dropping it ends the span.
pub struct Scope<'a> {
    ctx: Ctx<'a>,
    opened: bool,
}

impl<'a> Scope<'a> {
    /// A context whose parent is this scope's span — pass it to callees
    /// so their spans and counters nest under this one.
    pub fn ctx(&self) -> Ctx<'a> {
        self.ctx
    }
}

impl Drop for Scope<'_> {
    fn drop(&mut self) {
        if self.opened {
            self.ctx.recorder.span_end(self.ctx.parent);
        }
    }
}

/// Fans every call out to two recorders (aggregates + trace, for
/// `webre serve --trace-out`). Span ids are indices into a pair table;
/// the table is mutex-guarded, which is acceptable because the tee only
/// runs in explicit tracing mode.
pub struct TeeRecorder {
    a: std::sync::Arc<dyn Recorder>,
    b: std::sync::Arc<dyn Recorder>,
    pairs: std::sync::Mutex<Vec<(SpanId, SpanId)>>,
}

impl TeeRecorder {
    /// Tees `a` and `b`.
    pub fn new(a: std::sync::Arc<dyn Recorder>, b: std::sync::Arc<dyn Recorder>) -> Self {
        TeeRecorder {
            a,
            b,
            pairs: std::sync::Mutex::new(Vec::new()),
        }
    }

    fn pairs(&self) -> std::sync::MutexGuard<'_, Vec<(SpanId, SpanId)>> {
        self.pairs.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Recorder for TeeRecorder {
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }

    fn span_start(&self, name: &'static str, parent: SpanId) -> SpanId {
        let (pa, pb) = if parent.is_none() {
            (SpanId::NONE, SpanId::NONE)
        } else {
            self.pairs()
                .get(parent.0 as usize)
                .copied()
                .unwrap_or((SpanId::NONE, SpanId::NONE))
        };
        let ida = self.a.span_start(name, pa);
        let idb = self.b.span_start(name, pb);
        let mut pairs = self.pairs();
        pairs.push((ida, idb));
        SpanId(pairs.len() as u64 - 1)
    }

    fn span_end(&self, id: SpanId) {
        if id.is_none() {
            return;
        }
        let Some((ida, idb)) = self.pairs().get(id.0 as usize).copied() else {
            return;
        };
        self.a.span_end(ida);
        self.b.span_end(idb);
    }

    fn count(&self, span: SpanId, name: &'static str, n: u64) {
        let (sa, sb) = if span.is_none() {
            (SpanId::NONE, SpanId::NONE)
        } else {
            self.pairs()
                .get(span.0 as usize)
                .copied()
                .unwrap_or((SpanId::NONE, SpanId::NONE))
        };
        self.a.count(sa, name, n);
        self.b.count(sb, name, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;
    use crate::trace::TraceRecorder;

    #[test]
    fn catalogues_are_duplicate_free_and_indexable() {
        for list in [stage::ALL, counter::ALL] {
            let mut names = list.to_vec();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), list.len());
        }
        for (i, name) in stage::ALL.iter().enumerate() {
            assert_eq!(stage::index_of(name), Some(i));
        }
        for (i, name) in counter::ALL.iter().enumerate() {
            assert_eq!(counter::index_of(name), Some(i));
        }
        assert_eq!(stage::index_of("no-such-stage"), None);
        assert_eq!(counter::index_of("no_such_counter"), None);
    }

    #[test]
    fn disabled_ctx_records_nothing_and_costs_no_spans() {
        let ctx = Ctx::disabled();
        assert!(!ctx.enabled());
        let scope = ctx.span(stage::CONVERT);
        scope.ctx().count(counter::TOKENS_SPLIT, 3);
        drop(scope);
        // The no-op recorder has no state to assert against; the contract
        // is that nothing panics and ids stay NONE.
        assert!(NOOP.span_start(stage::MINE, SpanId::NONE).is_none());
    }

    #[test]
    fn scope_nesting_threads_parents() {
        let recorder = TraceRecorder::new(Box::new(FakeClock::new(1_000)));
        let ctx = Ctx::new(&recorder);
        {
            let outer = ctx.span(stage::CONVERT);
            let inner = outer.ctx().span(stage::TOKENIZATION);
            inner.ctx().count(counter::TOKENS_SPLIT, 2);
        }
        let spans = recorder.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, stage::CONVERT);
        assert_eq!(spans[1].name, stage::TOKENIZATION);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].counters, vec![(counter::TOKENS_SPLIT, 2)]);
    }

    #[test]
    fn tee_mirrors_spans_and_counters_into_both_recorders() {
        use std::sync::Arc;
        let a = Arc::new(TraceRecorder::new(Box::new(FakeClock::new(1_000))));
        let b = Arc::new(TraceRecorder::new(Box::new(FakeClock::new(5))));
        let tee = TeeRecorder::new(
            Arc::clone(&a) as Arc<dyn Recorder>,
            Arc::clone(&b) as Arc<dyn Recorder>,
        );
        let ctx = Ctx::new(&tee);
        {
            let outer = ctx.span(stage::MINE);
            outer.ctx().count(counter::PATHS_EXPLORED, 7);
            let _inner = outer.ctx().span(stage::DERIVE_DTD);
        }
        for rec in [&a, &b] {
            let spans = rec.spans();
            assert_eq!(spans.len(), 2);
            assert_eq!(spans[0].name, stage::MINE);
            assert_eq!(spans[0].counters, vec![(counter::PATHS_EXPLORED, 7)]);
            assert_eq!(spans[1].parent, Some(0));
            assert!(spans.iter().all(|s| s.end_ns.is_some()));
        }
    }
}
