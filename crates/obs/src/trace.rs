//! The tracing recorder: every span is kept with its parent link,
//! timestamps from the injected clock, and any counters attributed to
//! it. Exports:
//!
//! * [`TraceRecorder::to_chrome_json`] — the chrome://tracing "trace
//!   event" format (`{"traceEvents": [{"ph": "X", ...}]}`), loadable in
//!   `chrome://tracing` or Perfetto; written by `--trace-out`.
//! * [`TraceRecorder::span_tree_json`] — a nested, deterministic span
//!   tree (stable under a fake clock) used by the golden trace test.

use crate::clock::Clock;
use crate::{counter, Recorder, SpanId};
use std::sync::Mutex;
use webre_substrate::json::Json;

/// One recorded span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRec {
    /// Stage name (a `stage::*` constant).
    pub name: &'static str,
    /// Index of the parent span in the recorder's span list.
    pub parent: Option<usize>,
    /// Start timestamp (clock nanoseconds).
    pub start_ns: u64,
    /// End timestamp; `None` while the span is still open.
    pub end_ns: Option<u64>,
    /// Counters attributed to this span, in first-touch order.
    pub counters: Vec<(&'static str, u64)>,
}

/// Records every span and counter; see the module docs for exports.
pub struct TraceRecorder {
    clock: Box<dyn Clock>,
    inner: Mutex<Vec<SpanRec>>,
}

impl TraceRecorder {
    /// A recorder reading time from `clock`.
    pub fn new(clock: Box<dyn Clock>) -> Self {
        TraceRecorder {
            clock,
            inner: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<SpanRec>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A snapshot of all recorded spans, in start order.
    pub fn spans(&self) -> Vec<SpanRec> {
        self.lock().clone()
    }

    /// The index of the root ancestor of span `i`.
    fn root_of(spans: &[SpanRec], mut i: usize) -> usize {
        while let Some(p) = spans[i].parent {
            i = p;
        }
        i
    }

    /// chrome://tracing trace-event JSON. Each span becomes a complete
    /// (`"ph": "X"`) event; `tid` groups spans by root ancestor so
    /// concurrent span trees (e.g. served requests) land on separate
    /// tracks.
    pub fn to_chrome_json(&self) -> String {
        let spans = self.lock();
        let roots: Vec<usize> = spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parent.is_none())
            .map(|(i, _)| i)
            .collect();
        let events: Vec<Json> = spans
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let root = Self::root_of(&spans, i);
                let track = roots.iter().position(|r| *r == root).unwrap_or(0) + 1;
                let end = s.end_ns.unwrap_or(s.start_ns);
                let args = Json::obj(
                    s.counters
                        .iter()
                        .map(|(name, n)| (*name, Json::Num(*n as f64))),
                );
                Json::obj([
                    ("name", Json::Str(s.name.to_string())),
                    ("ph", Json::Str("X".to_string())),
                    ("ts", Json::Num(s.start_ns as f64 / 1_000.0)),
                    ("dur", Json::Num(end.saturating_sub(s.start_ns) as f64 / 1_000.0)),
                    ("pid", Json::Num(1.0)),
                    ("tid", Json::Num(track as f64)),
                    ("args", args),
                ])
            })
            .collect();
        Json::obj([("traceEvents", Json::Arr(events))]).to_string_pretty()
    }

    /// A nested span-tree JSON document: each node carries `name`,
    /// `start_us`, `dur_us`, `counters`, `children`. Deterministic when
    /// the recorder runs under a fake clock, which is what the golden
    /// trace test commits.
    pub fn span_tree_json(&self) -> String {
        let spans = self.lock();
        fn node(spans: &[SpanRec], i: usize) -> Json {
            let s = &spans[i];
            let end = s.end_ns.unwrap_or(s.start_ns);
            let children: Vec<Json> = spans
                .iter()
                .enumerate()
                .filter(|(_, c)| c.parent == Some(i))
                .map(|(j, _)| node(spans, j))
                .collect();
            Json::obj([
                ("name", Json::Str(s.name.to_string())),
                ("start_us", Json::Num(s.start_ns as f64 / 1_000.0)),
                ("dur_us", Json::Num(end.saturating_sub(s.start_ns) as f64 / 1_000.0)),
                (
                    "counters",
                    Json::obj(
                        s.counters
                            .iter()
                            .map(|(name, n)| (*name, Json::Num(*n as f64))),
                    ),
                ),
                ("children", Json::Arr(children)),
            ])
        }
        let roots: Vec<Json> = spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parent.is_none())
            .map(|(i, _)| node(&spans, i))
            .collect();
        Json::obj([("spans", Json::Arr(roots))]).to_string_pretty()
    }
}

impl Recorder for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&self, name: &'static str, parent: SpanId) -> SpanId {
        let start_ns = self.clock.now_ns();
        let mut spans = self.lock();
        spans.push(SpanRec {
            name,
            parent: if parent.is_none() {
                None
            } else {
                Some(parent.0 as usize)
            },
            start_ns,
            end_ns: None,
            counters: Vec::new(),
        });
        SpanId(spans.len() as u64 - 1)
    }

    fn span_end(&self, id: SpanId) {
        if id.is_none() {
            return;
        }
        let end_ns = self.clock.now_ns();
        let mut spans = self.lock();
        if let Some(span) = spans.get_mut(id.0 as usize) {
            span.end_ns = Some(end_ns);
        }
    }

    fn count(&self, span: SpanId, name: &'static str, n: u64) {
        debug_assert!(counter::index_of(name).is_some(), "uncatalogued counter {name}");
        let mut spans = self.lock();
        let Some(rec) = (if span.is_none() {
            None
        } else {
            spans.get_mut(span.0 as usize)
        }) else {
            return;
        };
        if let Some(entry) = rec.counters.iter_mut().find(|(k, _)| *k == name) {
            entry.1 += n;
        } else {
            rec.counters.push((name, n));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;
    use crate::{stage, Ctx};

    fn sample() -> TraceRecorder {
        let rec = TraceRecorder::new(Box::new(FakeClock::new(1_000)));
        {
            let ctx = Ctx::new(&rec);
            let convert = ctx.span(stage::CONVERT);
            {
                let tok = convert.ctx().span(stage::TOKENIZATION);
                tok.ctx().count(counter::TOKENS_SPLIT, 4);
                tok.ctx().count(counter::TOKENS_SPLIT, 2);
            }
            let _mine = ctx.span(stage::MINE);
        }
        rec
    }

    #[test]
    fn chrome_export_is_valid_json_with_one_event_per_span() {
        let rec = sample();
        let doc = Json::parse(&rec.to_chrome_json()).expect("chrome export parses");
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 3);
        for ev in events {
            assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
            assert_eq!(ev.get("pid").and_then(Json::as_f64), Some(1.0));
            let name = ev.get("name").and_then(Json::as_str).unwrap();
            assert!(stage::index_of(name).is_some(), "uncatalogued stage {name}");
        }
        // Both roots get distinct tracks; the child shares its parent's.
        let tids: Vec<f64> = events
            .iter()
            .map(|e| e.get("tid").and_then(Json::as_f64).unwrap())
            .collect();
        assert_eq!(tids, vec![1.0, 1.0, 2.0]);
    }

    #[test]
    fn counters_merge_per_span_and_survive_export() {
        let rec = sample();
        let spans = rec.spans();
        assert_eq!(spans[1].counters, vec![(counter::TOKENS_SPLIT, 6)]);
        let doc = Json::parse(&rec.to_chrome_json()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let tok = &events[1];
        assert_eq!(
            tok.get("args")
                .and_then(|a| a.get(counter::TOKENS_SPLIT))
                .and_then(Json::as_f64),
            Some(6.0)
        );
    }

    #[test]
    fn span_tree_nests_children_under_parents_deterministically() {
        let a = sample().span_tree_json();
        let b = sample().span_tree_json();
        assert_eq!(a, b, "fake-clock traces must be byte-identical");
        let doc = Json::parse(&a).unwrap();
        let roots = doc.get("spans").and_then(Json::as_arr).unwrap();
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].get("name").and_then(Json::as_str), Some(stage::CONVERT));
        let children = roots[0].get("children").and_then(Json::as_arr).unwrap();
        assert_eq!(children.len(), 1);
        assert_eq!(
            children[0].get("name").and_then(Json::as_str),
            Some(stage::TOKENIZATION)
        );
    }

    #[test]
    fn fake_clock_timestamps_are_exact() {
        let rec = sample();
        let spans = rec.spans();
        // Clock readings in order: convert start, tok start, tok end,
        // mine start, mine end, convert end — 1µs apart.
        assert_eq!(spans[0].start_ns, 0);
        assert_eq!(spans[1].start_ns, 1_000);
        assert_eq!(spans[1].end_ns, Some(2_000));
        assert_eq!(spans[2].start_ns, 3_000);
        assert_eq!(spans[2].end_ns, Some(4_000));
        assert_eq!(spans[0].end_ns, Some(5_000));
    }
}
