//! The aggregating recorder behind the serving layer's extended
//! `/metrics`: lock-free per-stage span counts, total time, and
//! power-of-two latency histograms, plus global counter totals.
//!
//! Span ids pack the stage index into the top byte and the start
//! timestamp into the low 56 bits, so `span_end` needs no lookup table
//! and the recorder takes no locks on the hot path. Spans are counted
//! at `span_end`, which gives the serve consistency test an exact
//! invariant: a `/metrics` request that is *in flight* appears in
//! neither its own `pipeline_spans_total{stage="request"}` line nor
//! `requests_total` (both are bumped after the response is built).

use crate::clock::Clock;
use crate::hist::{upper_bound, PowHistogram};
use crate::{counter, stage, Recorder, SpanId};
use std::sync::atomic::{AtomicU64, Ordering};

const START_MASK: u64 = (1 << 56) - 1;

#[derive(Default)]
struct StageAgg {
    spans: AtomicU64,
    total_us: AtomicU64,
    hist: PowHistogram,
}

/// Lock-free per-stage aggregates over the closed stage catalogue.
pub struct StatsRecorder {
    clock: Box<dyn Clock>,
    stages: Vec<StageAgg>,
    counters: Vec<AtomicU64>,
}

impl StatsRecorder {
    /// A recorder reading time from `clock`.
    pub fn new(clock: Box<dyn Clock>) -> Self {
        StatsRecorder {
            clock,
            stages: stage::ALL.iter().map(|_| StageAgg::default()).collect(),
            counters: counter::ALL.iter().map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Completed-span count for `name`, if it is a catalogued stage.
    pub fn spans_total(&self, name: &str) -> Option<u64> {
        stage::index_of(name).map(|i| self.stages[i].spans.load(Ordering::Relaxed))
    }

    /// Total for `name`, if it is a catalogued counter.
    pub fn counter_total(&self, name: &str) -> Option<u64> {
        counter::index_of(name).map(|i| self.counters[i].load(Ordering::Relaxed))
    }

    /// Prometheus-text lines for the extended `/metrics`. Stages and
    /// counters that never fired are elided; histogram buckets render
    /// cumulatively with empty prefixes skipped and `+Inf` always
    /// present, matching the per-endpoint latency series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, name) in stage::ALL.iter().enumerate() {
            let agg = &self.stages[i];
            let spans = agg.spans.load(Ordering::Relaxed);
            if spans == 0 {
                continue;
            }
            out.push_str(&format!("pipeline_spans_total{{stage=\"{name}\"}} {spans}\n"));
            out.push_str(&format!(
                "pipeline_span_us_sum{{stage=\"{name}\"}} {}\n",
                agg.total_us.load(Ordering::Relaxed)
            ));
            let counts = agg.hist.counts();
            let mut cumulative = 0u64;
            for (b, n) in counts.iter().enumerate() {
                if *n == 0 {
                    continue;
                }
                cumulative += n;
                if let Some(le) = upper_bound(b) {
                    out.push_str(&format!(
                        "pipeline_span_us_bucket{{stage=\"{name}\",le=\"{le}\"}} {cumulative}\n"
                    ));
                }
            }
            out.push_str(&format!(
                "pipeline_span_us_bucket{{stage=\"{name}\",le=\"+Inf\"}} {cumulative}\n"
            ));
        }
        for (i, name) in counter::ALL.iter().enumerate() {
            let n = self.counters[i].load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            out.push_str(&format!("pipeline_counter_total{{counter=\"{name}\"}} {n}\n"));
        }
        out
    }
}

impl Recorder for StatsRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&self, name: &'static str, _parent: SpanId) -> SpanId {
        let Some(idx) = stage::index_of(name) else {
            return SpanId::NONE;
        };
        let start = self.clock.now_ns() & START_MASK;
        SpanId(((idx as u64) << 56) | start)
    }

    fn span_end(&self, id: SpanId) {
        if id.is_none() {
            return;
        }
        let idx = (id.0 >> 56) as usize;
        let Some(agg) = self.stages.get(idx) else {
            return;
        };
        let start = id.0 & START_MASK;
        let elapsed_ns = (self.clock.now_ns() & START_MASK).saturating_sub(start);
        let us = elapsed_ns / 1_000;
        agg.spans.fetch_add(1, Ordering::Relaxed);
        agg.total_us.fetch_add(us, Ordering::Relaxed);
        agg.hist.record(us);
    }

    fn count(&self, _span: SpanId, name: &'static str, n: u64) {
        if let Some(idx) = counter::index_of(name) {
            self.counters[idx].fetch_add(n, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;
    use crate::Ctx;

    #[test]
    fn aggregates_span_counts_times_and_counters() {
        // Tick of 3µs per clock reading: each span lasts exactly 3µs.
        let rec = StatsRecorder::new(Box::new(FakeClock::new(3_000)));
        let ctx = Ctx::new(&rec);
        for _ in 0..4 {
            let s = ctx.span(stage::CONVERT);
            s.ctx().count(counter::TOKENS_SPLIT, 5);
        }
        assert_eq!(rec.spans_total(stage::CONVERT), Some(4));
        assert_eq!(rec.counter_total(counter::TOKENS_SPLIT), Some(20));
        let text = rec.render();
        assert!(text.contains("pipeline_spans_total{stage=\"convert\"} 4"));
        assert!(text.contains("pipeline_span_us_sum{stage=\"convert\"} 12"));
        assert!(text.contains("pipeline_span_us_bucket{stage=\"convert\",le=\"4\"} 4"));
        assert!(text.contains("pipeline_span_us_bucket{stage=\"convert\",le=\"+Inf\"} 4"));
        assert!(text.contains("pipeline_counter_total{counter=\"tokens_split\"} 20"));
    }

    #[test]
    fn silent_stages_and_counters_are_elided() {
        let rec = StatsRecorder::new(Box::new(FakeClock::new(1_000)));
        let ctx = Ctx::new(&rec);
        drop(ctx.span(stage::MINE));
        let text = rec.render();
        assert!(text.contains("stage=\"mine-frequent-paths\""));
        assert!(!text.contains("stage=\"convert\""));
        assert!(!text.contains("pipeline_counter_total"));
    }

    #[test]
    fn open_spans_are_not_counted_until_ended() {
        let rec = StatsRecorder::new(Box::new(FakeClock::new(1_000)));
        let ctx = Ctx::new(&rec);
        let open = ctx.span(stage::REQUEST);
        assert_eq!(rec.spans_total(stage::REQUEST), Some(0));
        drop(open);
        assert_eq!(rec.spans_total(stage::REQUEST), Some(1));
    }

    #[test]
    fn uncatalogued_stage_is_ignored() {
        let rec = StatsRecorder::new(Box::new(FakeClock::new(1_000)));
        let id = rec.span_start("not-a-stage", SpanId::NONE);
        assert!(id.is_none());
        rec.span_end(id);
        assert_eq!(rec.render(), "");
    }
}
