//! Power-of-two latency histogram.
//!
//! Extracted from the serving layer's `/metrics` implementation so the
//! per-stage pipeline aggregates and the per-endpoint request metrics
//! share one bucketing scheme: bucket `i` covers latencies in
//! `(2^(i-1), 2^i]` microseconds (bucket 0 is `[0, 1]`), with the last
//! bucket open-ended.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets; the last one is the overflow (`+Inf`) bucket.
pub const BUCKETS: usize = 31;

/// The bucket index for a latency of `us` microseconds.
pub fn bucket_index(us: u64) -> usize {
    (64 - us.saturating_sub(1).leading_zeros() as usize).min(BUCKETS - 1)
}

/// The inclusive upper bound of bucket `i` in microseconds, or `None`
/// for the open-ended last bucket (rendered as `+Inf`).
pub fn upper_bound(i: usize) -> Option<u64> {
    if i + 1 < BUCKETS {
        Some(1u64 << i)
    } else {
        None
    }
}

/// A lock-free histogram over power-of-two microsecond buckets.
#[derive(Default)]
pub struct PowHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl PowHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        PowHistogram::default()
    }

    /// Records one observation of `us` microseconds.
    pub fn record(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// The per-bucket (non-cumulative) counts.
    pub fn counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index((1 << 20) + 1), 21);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn every_bucket_upper_bound_admits_exactly_its_boundary() {
        for i in 0..BUCKETS - 1 {
            let bound = upper_bound(i).unwrap();
            assert_eq!(bucket_index(bound), i, "bound {bound} must land in bucket {i}");
            assert_eq!(bucket_index(bound + 1), i + 1);
        }
        assert_eq!(upper_bound(BUCKETS - 1), None);
    }

    #[test]
    fn record_accumulates() {
        let h = PowHistogram::new();
        h.record(1);
        h.record(1);
        h.record(100);
        let counts = h.counts();
        assert_eq!(counts[0], 2);
        assert_eq!(counts[bucket_index(100)], 1);
        assert_eq!(h.total(), 3);
    }
}
