//! Injectable time sources.
//!
//! Recorders never read the wall clock directly — they hold a
//! `Box<dyn Clock>` chosen at construction. Production code injects
//! [`MonotonicClock`]; tests and golden traces inject [`FakeClock`] so
//! span timestamps are fully deterministic. This is what keeps the
//! `no-wall-clock` lint rule green over the pure pipeline crates *and*
//! this crate: the only `Instant` in the observability layer lives on
//! the two explicitly-suppressed lines below.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic nanosecond counter.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) origin. Must be
    /// monotonically non-decreasing.
    fn now_ns(&self) -> u64;
}

/// Real time, measured from the clock's construction instant.
pub struct MonotonicClock {
    // webre::allow(no-wall-clock): the observability clock is the one sanctioned time source; everything else injects it
    origin: std::time::Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            // webre::allow(no-wall-clock): sole sanctioned Instant read; recorders receive time only through this clock
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        let d = self.origin.elapsed();
        d.as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::from(d.subsec_nanos()))
    }
}

/// Deterministic time: every `now_ns` call returns the previous value
/// plus a fixed tick. Thread-safe (atomic fetch-add), so concurrent
/// tests still get unique, ordered timestamps.
pub struct FakeClock {
    next: AtomicU64,
    tick: u64,
}

impl FakeClock {
    /// A clock starting at 0 that advances `tick_ns` per reading.
    pub fn new(tick_ns: u64) -> Self {
        FakeClock {
            next: AtomicU64::new(0),
            tick: tick_ns,
        }
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.next.fetch_add(self.tick, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fake_clock_is_deterministic() {
        let c = FakeClock::new(1_000);
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 1_000);
        assert_eq!(c.now_ns(), 2_000);
    }

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
