//! The conversion pipeline: configuration, statistics, and the
//! [`Converter`] that wires the four restructuring rules together.

use crate::node::{finalize, ingest_owned};
use crate::structure_rules::grouping_rule_obs;
use crate::text_rules::{concept_instance_rule_obs, tokenization_rule_obs};
use webre_concepts::{ConceptMatcher, ConceptSet, ConstraintSet};
use webre_obs::{stage, Ctx};
use webre_html::HtmlDocument;
use webre_text::tokenize::Delimiters;
use webre_text::BayesClassifier;
use webre_xml::XmlDocument;

/// How the concept instance rule identifies concepts in tokens
/// (Section 2.3.1 offers synonym matching and a Bayes classifier).
#[derive(Clone, Debug, Default)]
pub enum ClassifierMode {
    /// Synonym (concept instance) matching only.
    #[default]
    SynonymsOnly,
    /// Bayes classifier only; tokens classified as `unknown_label` (or
    /// below the margin) stay unidentified.
    BayesOnly {
        model: BayesClassifier,
        margin: f64,
        unknown_label: String,
    },
    /// Synonyms first; the classifier handles tokens synonyms miss.
    Both {
        model: BayesClassifier,
        margin: f64,
        unknown_label: String,
    },
}

impl ClassifierMode {
    /// Classifies a token via the Bayes model, if one is configured.
    /// Returns `None` for unidentified (including the unknown class).
    pub fn classify(&self, text: &str) -> Option<&str> {
        match self {
            ClassifierMode::SynonymsOnly => None,
            ClassifierMode::BayesOnly {
                model,
                margin,
                unknown_label,
            }
            | ClassifierMode::Both {
                model,
                margin,
                unknown_label,
            } => model
                .classify_with_margin(text, *margin)
                .filter(|l| l != unknown_label),
        }
    }
}

/// Configuration of the conversion pipeline.
#[derive(Clone, Debug)]
pub struct ConvertConfig {
    /// Tokenization delimiters (the paper uses `; , :`).
    pub delimiters: Delimiters,
    /// Concept used as the XML document root (e.g. `resume`).
    pub root_concept: String,
    /// Concept identification mode.
    pub classifier: ClassifierMode,
    /// Run the HTML-Tidy-like cleanup first (the paper reports it improves
    /// accuracy; Section 2.4).
    pub tidy: bool,
    /// Apply the grouping rule (disable for the rule-ablation experiment).
    pub grouping: bool,
    /// Apply the consolidation rule (disable for the rule-ablation
    /// experiment).
    pub consolidation: bool,
    /// Optional concept constraints; when present, negated sibling
    /// constraints guide multi-instance token decomposition (Section
    /// 2.3.1: "concept constraints describing typical sibling
    /// relationships can be employed in order to determine a proper
    /// decomposition").
    pub constraints: Option<ConstraintSet>,
}

impl Default for ConvertConfig {
    fn default() -> Self {
        ConvertConfig {
            delimiters: Delimiters::default(),
            root_concept: "resume".into(),
            classifier: ClassifierMode::SynonymsOnly,
            tidy: true,
            grouping: true,
            consolidation: true,
            constraints: None,
        }
    }
}

/// Counters reported by one conversion run.
///
/// The ratio of identified to unidentifiable tokens is the user feedback
/// signal the paper describes: a low ratio tells the user to add concept
/// instances or classifier training data.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConvertStats {
    /// Tokens produced by the tokenization rule.
    pub tokens_total: u64,
    /// Tokens related to at least one concept.
    pub tokens_identified: u64,
    /// Tokens identified by the Bayes classifier (subset of identified).
    pub tokens_via_classifier: u64,
    /// Tokens whose text was passed to the parent `val`.
    pub tokens_unidentified: u64,
    /// Tokens containing more than one concept instance (decomposed).
    pub tokens_decomposed: u64,
}

impl ConvertStats {
    /// Fraction of tokens identified, or `None` with no tokens.
    pub fn identification_ratio(&self) -> Option<f64> {
        (self.tokens_total > 0)
            .then(|| self.tokens_identified as f64 / self.tokens_total as f64)
    }

    /// Accumulates another document's counters into this one, so callers
    /// converting a stream of documents (the CLI batch commands, the
    /// serving subsystem's live corpus) can report corpus-level totals
    /// without holding per-document stats.
    pub fn merge(&mut self, other: &ConvertStats) {
        self.tokens_total += other.tokens_total;
        self.tokens_identified += other.tokens_identified;
        self.tokens_via_classifier += other.tokens_via_classifier;
        self.tokens_unidentified += other.tokens_unidentified;
        self.tokens_decomposed += other.tokens_decomposed;
    }
}

impl std::ops::AddAssign<&ConvertStats> for ConvertStats {
    fn add_assign(&mut self, other: &ConvertStats) {
        self.merge(other);
    }
}

/// Converts topic-specific HTML documents into concept-tagged XML.
///
/// Construction compiles the concept catalogue into an Aho–Corasick
/// [`ConceptMatcher`] once; every subsequent conversion reuses it, so the
/// per-document cost of concept matching no longer scales with catalogue
/// size.
#[derive(Clone, Debug)]
pub struct Converter {
    concepts: ConceptSet,
    config: ConvertConfig,
    matcher: ConceptMatcher,
}

impl Converter {
    /// Creates a converter over the given topic concepts with default
    /// configuration.
    pub fn new(concepts: ConceptSet) -> Self {
        Self::with_config(concepts, ConvertConfig::default())
    }

    /// Creates a converter with explicit configuration.
    pub fn with_config(concepts: ConceptSet, config: ConvertConfig) -> Self {
        let matcher = ConceptMatcher::new(&concepts);
        Converter {
            concepts,
            config,
            matcher,
        }
    }

    /// The concept set in use.
    pub fn concepts(&self) -> &ConceptSet {
        &self.concepts
    }

    /// The precompiled concept-matching automaton.
    pub fn matcher(&self) -> &ConceptMatcher {
        &self.matcher
    }

    /// The configuration in use.
    pub fn config(&self) -> &ConvertConfig {
        &self.config
    }

    /// Converts one parsed HTML document, returning the XML document and
    /// the conversion statistics.
    pub fn convert(&self, html: &HtmlDocument) -> (XmlDocument, ConvertStats) {
        self.convert_obs(html, Ctx::disabled())
    }

    /// [`Converter::convert`] with observability; see
    /// [`Converter::convert_owned_obs`] for the span structure.
    ///
    /// Borrows the input, so the document is cloned before the (mutating)
    /// tidy pass. Callers that can give up the document should prefer
    /// [`Converter::convert_owned_obs`] — the clone duplicated every
    /// element's attribute vector on each conversion, which is exactly the
    /// overhead the owned path removes.
    pub fn convert_obs(&self, html: &HtmlDocument, ctx: Ctx<'_>) -> (XmlDocument, ConvertStats) {
        self.convert_owned_obs(html.clone(), ctx)
    }

    /// Converts one parsed HTML document, consuming it: names and text
    /// move into the conversion arena instead of being copied.
    pub fn convert_owned(&self, html: HtmlDocument) -> (XmlDocument, ConvertStats) {
        self.convert_owned_obs(html, Ctx::disabled())
    }

    /// [`Converter::convert_owned`] with observability: the conversion
    /// runs under a `convert` span with one child span per pipeline stage
    /// (tidy plus the four restructuring rules), and the rules feed
    /// their firing counters. Output is byte-identical to the
    /// uninstrumented path — the `trace-noop` oracle in `webre-check`
    /// holds this over fuzzed corpora.
    pub fn convert_owned_obs(
        &self,
        mut html: HtmlDocument,
        ctx: Ctx<'_>,
    ) -> (XmlDocument, ConvertStats) {
        let scope = ctx.span(stage::CONVERT);
        let ctx = scope.ctx();
        if self.config.tidy {
            let _tidy = ctx.span(stage::TIDY);
            webre_html::tidy(&mut html);
        }
        let mut conv = ingest_owned(html);
        let mut stats = ConvertStats::default();
        {
            let rule = ctx.span(stage::TOKENIZATION);
            tokenization_rule_obs(&mut conv, &self.config.delimiters, rule.ctx());
        }
        {
            let rule = ctx.span(stage::CONCEPT_INSTANCE);
            concept_instance_rule_obs(
                &mut conv,
                &self.matcher,
                &self.config.classifier,
                self.config.constraints.as_ref(),
                &mut stats,
                rule.ctx(),
            );
        }
        if self.config.grouping {
            let rule = ctx.span(stage::GROUPING);
            grouping_rule_obs(&mut conv.tree, rule.ctx());
        }
        if self.config.consolidation {
            let rule = ctx.span(stage::CONSOLIDATION);
            crate::structure_rules::consolidation_rule_with_obs(
                &mut conv.tree,
                self.config.constraints.as_ref(),
                rule.ctx(),
            );
        }
        (finalize(&conv, &self.config.root_concept), stats)
    }

    /// Convenience: parse and convert HTML text. The parsed document is
    /// fed straight into the owned path — no clone.
    pub fn convert_str(&self, html: &str) -> (XmlDocument, ConvertStats) {
        self.convert_owned(webre_html::parse(html))
    }

    /// [`Converter::convert_str`] with observability; see
    /// [`Converter::convert_owned_obs`].
    pub fn convert_str_obs(&self, html: &str, ctx: Ctx<'_>) -> (XmlDocument, ConvertStats) {
        self.convert_owned_obs(webre_html::parse(html), ctx)
    }

    /// Converts a corpus of HTML documents sequentially.
    pub fn convert_corpus(&self, htmls: &[String]) -> Vec<XmlDocument> {
        htmls.iter().map(|h| self.convert_str(h).0).collect()
    }

    /// Converts a corpus in parallel across `threads` workers.
    ///
    /// Document conversion is embarrassingly parallel (each document is
    /// independent); results are returned in input order and are identical
    /// to [`Converter::convert_corpus`] — the `webre-check` differential
    /// oracle holds this equivalence over randomized tag-soup corpora.
    pub fn convert_corpus_parallel(&self, htmls: &[String], threads: usize) -> Vec<XmlDocument> {
        let threads = threads.max(1).min(htmls.len().max(1));
        if threads <= 1 || htmls.len() < 2 {
            return self.convert_corpus(htmls);
        }
        let mut results: Vec<Option<XmlDocument>> = Vec::new();
        results.resize_with(htmls.len(), || None);
        let chunk = htmls.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (inputs, outputs) in htmls.chunks(chunk).zip(results.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (html, slot) in inputs.iter().zip(outputs.iter_mut()) {
                        *slot = Some(self.convert_str(html).0);
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|d| d.expect("every slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_concepts::resume;
    use webre_xml::to_xml;

    fn converter() -> Converter {
        Converter::new(resume::concepts())
    }

    #[test]
    fn converts_heading_list_resume_fragment() {
        let html = "\
            <h2>Education</h2>\
            <ul>\
              <li>University of California at Davis, B.S., June 1996</li>\
              <li>Foothill College, A.A., June 1994</li>\
            </ul>";
        let (doc, stats) = converter().convert_str(html);
        let xml = to_xml(&doc);
        assert_eq!(doc.root_name(), "resume");
        // Education heads the section; each list item nests under its first
        // concept (the institution).
        assert!(xml.contains("<education"), "{xml}");
        assert!(xml.contains("institution"), "{xml}");
        assert!(xml.contains("degree"), "{xml}");
        assert!(xml.contains("date"), "{xml}");
        assert!(stats.identification_ratio().unwrap() > 0.8, "{stats:?}");
    }

    #[test]
    fn stats_track_unidentified_tokens() {
        let (_, stats) = converter().convert_str("<p>zorp blorp, qux flux</p>");
        assert_eq!(stats.tokens_total, 2);
        assert_eq!(stats.tokens_unidentified, 2);
        assert_eq!(stats.identification_ratio(), Some(0.0));
    }

    #[test]
    fn empty_document_yields_bare_root() {
        let (doc, stats) = converter().convert_str("");
        assert_eq!(to_xml(&doc), "<resume/>");
        assert_eq!(stats.tokens_total, 0);
        assert_eq!(stats.identification_ratio(), None);
    }

    #[test]
    fn page_title_merges_into_root() {
        let (doc, _) = converter().convert_str(
            "<html><head><title>Resume</title></head><body><h2>Objective</h2>\
             <p>A great job</p></body></html>",
        );
        assert_eq!(doc.root_name(), "resume");
        let xml = to_xml(&doc);
        // The unidentified paragraph and page-title text stay attached to
        // the surviving section concept via the val-flow rules rather than
        // being dropped.
        assert!(xml.starts_with("<resume>"), "{xml}");
        assert!(xml.contains(r#"<objective val="Objective A great job"#), "{xml}");
        assert!(doc.all_text().contains("Resume"), "title text kept: {xml}");
    }

    #[test]
    fn ablation_switches_change_output_shape() {
        let html = "<h2>Education</h2><ul><li>Stanford University, M.S., 1998</li></ul>";
        let full = converter().convert_str(html).0;
        let mut config = ConvertConfig {
            grouping: false,
            ..ConvertConfig::default()
        };
        let no_grouping =
            Converter::with_config(resume::concepts(), config.clone()).convert_str(html).0;
        config.grouping = true;
        config.consolidation = false;
        let no_consolidation =
            Converter::with_config(resume::concepts(), config).convert_str(html).0;
        let full_xml = to_xml(&full);
        let ng_xml = to_xml(&no_grouping);
        let nc_xml = to_xml(&no_consolidation);
        // Without grouping, education does not adopt the list contents.
        assert_ne!(full_xml, ng_xml);
        // Without consolidation the html scaffolding never goes away, so
        // the concepts end up flattened differently.
        assert_ne!(full_xml, nc_xml);
    }

    #[test]
    fn table_resume_converts() {
        let html = "\
            <table>\
              <tr><td>Experience</td></tr>\
              <tr><td>NehaNet Corp</td><td>Software Engineer</td><td>1999 - present</td></tr>\
            </table>";
        let (doc, _) = converter().convert_str(html);
        let xml = to_xml(&doc);
        assert!(xml.contains("experience"), "{xml}");
        assert!(xml.contains("employer") || xml.contains("position"), "{xml}");
    }

    #[test]
    fn stats_merge_sums_counters() {
        let c = converter();
        let (_, a) = c.convert_str("<p>zorp blorp, qux flux</p>");
        let (_, b) = c.convert_str("<h2>Education</h2><p>Stanford University</p>");
        let mut total = ConvertStats::default();
        total.merge(&a);
        total += &b;
        assert_eq!(total.tokens_total, a.tokens_total + b.tokens_total);
        assert_eq!(
            total.tokens_identified,
            a.tokens_identified + b.tokens_identified
        );
        assert_eq!(
            total.tokens_unidentified,
            a.tokens_unidentified + b.tokens_unidentified
        );
    }

    #[test]
    fn conversion_is_deterministic() {
        let html = "<h2>Skills</h2><p>C++, Java, Perl</p>";
        let a = to_xml(&converter().convert_str(html).0);
        let b = to_xml(&converter().convert_str(html).0);
        assert_eq!(a, b);
    }
}
