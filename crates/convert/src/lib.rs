//! Document conversion: the paper's restructuring rules (Section 2.3).
//!
//! The conversion pipeline transforms a topic-specific HTML document into an
//! XML document whose elements carry concept names:
//!
//! 1. **Tokenization rule** ([`text_rules`], top-down) — text nodes are
//!    decomposed into `TOKEN` nodes on punctuation delimiters;
//! 2. **Concept instance rule** ([`text_rules`], top-down) — tokens are
//!    related to concepts via synonym matching and/or a Bayes classifier;
//!    identified tokens become `<concept val="...">` elements, tokens with
//!    several instances are decomposed, unidentified text is passed to the
//!    parent's `val` so no information is lost;
//! 3. **Grouping rule** ([`structure_rules`], top-down) — the
//!    highest-priority group tag at each level captures its right siblings
//!    under temporary `GROUP` nodes ("sinking");
//! 4. **Consolidation rule** ([`structure_rules`], bottom-up) — remaining
//!    HTML markup and temporary nodes are eliminated: list-structured nodes
//!    and same-named children push up, everything else is replaced by its
//!    first concept child (Figure 1 of the paper).
//!
//! [`Converter`] wires the rules together (with per-rule switches for the
//! ablation experiments) and [`accuracy`] implements the logical-error
//! metric of Section 4.1.

pub mod accuracy;
pub mod convert;
pub mod node;
pub mod structure_rules;
pub mod text_rules;

pub use convert::{ClassifierMode, ConvertConfig, ConvertStats, Converter};
pub use node::ConvNode;
