//! The working node type of the conversion pipeline.
//!
//! The paper treats the input HTML document as an XML document in which
//! every element carries a `val` attribute of type CDATA (Section 2.3). The
//! conversion tree therefore gives every structural node a `val`
//! accumulator; text flows upward through it as rules delete nodes.

use webre_html::{HtmlDocument, HtmlNode};
use webre_tree::{NodeId, Tree};
use webre_xml::{XmlDocument, XmlNode};

/// One node of the in-flight conversion tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConvNode {
    /// The synthetic document root.
    Document { val: String },
    /// A surviving HTML element.
    Html { name: String, val: String },
    /// An unprocessed text run.
    Text(String),
    /// A `<TOKEN>` produced by the tokenization rule.
    Token(String),
    /// A temporary `GROUP` introduced by the grouping rule.
    Group { val: String },
    /// An identified concept element, destined for the XML output.
    Concept { name: String, val: String },
}

impl ConvNode {
    /// Appends text to this node's `val` accumulator (no-op for text and
    /// token nodes, which carry their payload directly).
    pub fn push_val(&mut self, text: &str) {
        let text = text.trim();
        if text.is_empty() {
            return;
        }
        match self {
            ConvNode::Document { val }
            | ConvNode::Html { val, .. }
            | ConvNode::Group { val }
            | ConvNode::Concept { val, .. } => {
                if val.is_empty() {
                    val.push_str(text);
                } else {
                    val.push(' ');
                    val.push_str(text);
                }
            }
            ConvNode::Text(_) | ConvNode::Token(_) => {}
        }
    }

    /// The accumulated `val`, if this node kind has one.
    pub fn val(&self) -> Option<&str> {
        match self {
            ConvNode::Document { val }
            | ConvNode::Html { val, .. }
            | ConvNode::Group { val }
            | ConvNode::Concept { val, .. } => Some(val),
            ConvNode::Text(_) | ConvNode::Token(_) => None,
        }
    }

    /// Whether this is a concept node, and its name.
    pub fn concept_name(&self) -> Option<&str> {
        match self {
            ConvNode::Concept { name, .. } => Some(name),
            _ => None,
        }
    }

    /// The HTML element name, if this is a surviving HTML node.
    pub fn html_name(&self) -> Option<&str> {
        match self {
            ConvNode::Html { name, .. } => Some(name),
            _ => None,
        }
    }
}

/// Ingests a (tidied) HTML document into a conversion tree. Comments and
/// doctypes are dropped; elements and text map one-to-one.
pub fn ingest(html: &HtmlDocument) -> Tree<ConvNode> {
    let mut tree = Tree::with_capacity(
        ConvNode::Document { val: String::new() },
        html.tree.arena_len(),
    );
    let root = tree.root();
    let mut stack: Vec<(NodeId, NodeId)> = vec![(html.tree.root(), root)];
    // Simple explicit DFS keeping (source, copied-parent) pairs.
    while let Some((src, dst_parent)) = stack.pop() {
        for child in html
            .tree
            .children_vec(src)
            .into_iter()
            .rev()
            .collect::<Vec<_>>()
        {
            match html.tree.value(child) {
                HtmlNode::Element { name, .. } => {
                    let node = tree.orphan(ConvNode::Html {
                        name: name.clone(),
                        val: String::new(),
                    });
                    tree.prepend(dst_parent, node);
                    stack.push((child, node));
                }
                HtmlNode::Text(t) => {
                    let node = tree.orphan(ConvNode::Text(t.clone()));
                    tree.prepend(dst_parent, node);
                }
                HtmlNode::Comment(_) | HtmlNode::Doctype(_) | HtmlNode::Document => {}
            }
        }
    }
    tree
}

/// Finalizes a fully consolidated conversion tree into an [`XmlDocument`]
/// rooted at `root_concept`.
///
/// Any remaining document-level `val` text becomes the root's `val`. If a
/// direct child carries the root concept's own name (e.g. a "Resume" page
/// title), it is merged into the root rather than nested.
pub fn finalize(tree: &Tree<ConvNode>, root_concept: &str) -> XmlDocument {
    let root_name = webre_xml::name::sanitize(root_concept);
    let mut doc = XmlDocument::new(root_name.clone());
    let doc_root = doc.root();
    if let Some(val) = tree.value(tree.root()).val() {
        if !val.is_empty() {
            doc.tree.value_mut(doc_root).push_val(val);
        }
    }
    for child in tree.children(tree.root()) {
        copy_concepts(tree, child, &mut doc, doc_root);
    }
    // Merge a child that duplicates the root concept.
    for child in doc.tree.children_vec(doc_root) {
        if doc.tree.value(child).name() == Some(root_name.as_str()) {
            if let Some(v) = doc.tree.value(child).val().map(str::to_owned) {
                doc.tree.value_mut(doc_root).push_val(&v);
            }
            doc.tree.replace_with_children(child);
        }
    }
    doc
}

fn copy_concepts(
    tree: &Tree<ConvNode>,
    src: NodeId,
    doc: &mut XmlDocument,
    dst_parent: NodeId,
) {
    match tree.value(src) {
        ConvNode::Concept { name, val } => {
            let name = webre_xml::name::sanitize(name);
            let node = if val.is_empty() {
                XmlNode::element(name)
            } else {
                XmlNode::element_with_val(name, val.clone())
            };
            let copied = doc.tree.append_child(dst_parent, node);
            for child in tree.children(src) {
                copy_concepts(tree, child, doc, copied);
            }
        }
        // Non-concept nodes should be gone by now; if the structure rules
        // were disabled (ablation), flatten them transparently.
        _ => {
            if let Some(val) = tree.value(src).val() {
                if !val.is_empty() {
                    doc.tree.value_mut(dst_parent).push_val(val);
                }
            }
            if let ConvNode::Text(t) | ConvNode::Token(t) = tree.value(src) {
                doc.tree.value_mut(dst_parent).push_val(t);
            }
            for child in tree.children(src) {
                copy_concepts(tree, child, doc, dst_parent);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_html::parse;

    #[test]
    fn ingest_preserves_structure_and_order() {
        let html = parse("<div><p>a</p><p>b</p></div>");
        let tree = ingest(&html);
        let labels: Vec<String> = tree
            .descendants(tree.root())
            .map(|n| match tree.value(n) {
                ConvNode::Document { .. } => "#doc".into(),
                ConvNode::Html { name, .. } => name.clone(),
                ConvNode::Text(t) => format!("#{t}"),
                other => format!("{other:?}"),
            })
            .collect();
        assert_eq!(labels, ["#doc", "div", "p", "#a", "p", "#b"]);
    }

    #[test]
    fn ingest_drops_comments() {
        let html = parse("<!-- c --><p>x</p>");
        let tree = ingest(&html);
        assert_eq!(tree.subtree_size(tree.root()), 3);
    }

    #[test]
    fn push_val_accumulates() {
        let mut n = ConvNode::Html {
            name: "p".into(),
            val: String::new(),
        };
        n.push_val("one");
        n.push_val(" two ");
        n.push_val("");
        assert_eq!(n.val(), Some("one two"));
    }

    #[test]
    fn finalize_builds_rooted_document() {
        let mut tree = Tree::new(ConvNode::Document { val: String::new() });
        let root = tree.root();
        let edu = tree.append_child(
            root,
            ConvNode::Concept {
                name: "education".into(),
                val: "Education".into(),
            },
        );
        tree.append_child(
            edu,
            ConvNode::Concept {
                name: "degree".into(),
                val: "B.S.".into(),
            },
        );
        let doc = finalize(&tree, "resume");
        assert_eq!(doc.root_name(), "resume");
        assert_eq!(
            webre_xml::to_xml(&doc),
            r#"<resume><education val="Education"><degree val="B.S."/></education></resume>"#
        );
    }

    #[test]
    fn finalize_merges_duplicate_root_concept() {
        let mut tree = Tree::new(ConvNode::Document { val: String::new() });
        let root = tree.root();
        let dup = tree.append_child(
            root,
            ConvNode::Concept {
                name: "resume".into(),
                val: "My Resume".into(),
            },
        );
        tree.append_child(
            dup,
            ConvNode::Concept {
                name: "contact".into(),
                val: "x".into(),
            },
        );
        let doc = finalize(&tree, "resume");
        assert_eq!(doc.root_name(), "resume");
        assert_eq!(doc.tree.value(doc.root()).val(), Some("My Resume"));
        let child = doc.tree.first_child(doc.root()).unwrap();
        assert_eq!(doc.tree.value(child).name(), Some("contact"));
    }
}
