//! The working node type of the conversion pipeline.
//!
//! The paper treats the input HTML document as an XML document in which
//! every element carries a `val` attribute of type CDATA (Section 2.3). The
//! conversion tree therefore gives every structural node a `val`
//! accumulator; text flows upward through it as rules delete nodes.
//!
//! Text is arena-backed: [`ConvTree`] owns every text buffer the document
//! contributed, and `Text`/`Token` nodes carry a [`Span`] into those
//! buffers instead of an owned `String`. Tokenization then splits a text
//! run into tokens without allocating per token (each token is a
//! sub-span of its text run's buffer), and [`ingest_owned`] moves the
//! HTML document's strings straight into the arena so the cold conversion
//! path never copies element names, text runs — or, transitively, the
//! attribute vectors a whole-document clone would have duplicated.

use webre_html::{HtmlDocument, HtmlNode};
use webre_tree::{NodeId, Tree};
use webre_xml::{XmlDocument, XmlNode};

/// A byte range inside one of a [`ConvTree`]'s text buffers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Index into [`ConvTree`]'s buffer list.
    buf: u32,
    /// Byte offset of the range start within the buffer.
    start: u32,
    /// Byte offset one past the range end.
    end: u32,
}

impl Span {
    /// The spanned text inside `texts`.
    fn slice<'a>(&self, texts: &'a [String]) -> &'a str {
        &texts[self.buf as usize][self.start as usize..self.end as usize]
    }

    /// A sub-span of this span; `start..end` are byte offsets relative to
    /// this span's start.
    fn sub(self, start: usize, end: usize) -> Span {
        Span {
            buf: self.buf,
            start: self.start + start as u32,
            end: self.start + end as u32,
        }
    }
}

/// One node of the in-flight conversion tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConvNode {
    /// The synthetic document root.
    Document { val: String },
    /// A surviving HTML element.
    Html { name: String, val: String },
    /// An unprocessed text run (a span into the owning [`ConvTree`]).
    Text(Span),
    /// A `<TOKEN>` produced by the tokenization rule (also a span).
    Token(Span),
    /// A temporary `GROUP` introduced by the grouping rule.
    Group { val: String },
    /// An identified concept element, destined for the XML output.
    Concept { name: String, val: String },
}

impl ConvNode {
    /// Appends text to this node's `val` accumulator (no-op for text and
    /// token nodes, which carry their payload as spans).
    pub fn push_val(&mut self, text: &str) {
        let text = text.trim();
        if text.is_empty() {
            return;
        }
        match self {
            ConvNode::Document { val }
            | ConvNode::Html { val, .. }
            | ConvNode::Group { val }
            | ConvNode::Concept { val, .. } => {
                if val.is_empty() {
                    val.push_str(text);
                } else {
                    val.push(' ');
                    val.push_str(text);
                }
            }
            ConvNode::Text(_) | ConvNode::Token(_) => {}
        }
    }

    /// The accumulated `val`, if this node kind has one.
    pub fn val(&self) -> Option<&str> {
        match self {
            ConvNode::Document { val }
            | ConvNode::Html { val, .. }
            | ConvNode::Group { val }
            | ConvNode::Concept { val, .. } => Some(val),
            ConvNode::Text(_) | ConvNode::Token(_) => None,
        }
    }

    /// Whether this is a concept node, and its name.
    pub fn concept_name(&self) -> Option<&str> {
        match self {
            ConvNode::Concept { name, .. } => Some(name),
            _ => None,
        }
    }

    /// The HTML element name, if this is a surviving HTML node.
    pub fn html_name(&self) -> Option<&str> {
        match self {
            ConvNode::Html { name, .. } => Some(name),
            _ => None,
        }
    }
}

/// The in-flight conversion tree plus the text arena its `Text`/`Token`
/// spans point into.
///
/// The two fields are deliberately independent: rules destructure the pair
/// to read token text (immutably, out of `texts`) while restructuring
/// `tree` (mutably) — the split borrow that lets the text rules work on
/// borrowed slices instead of cloning every token.
#[derive(Clone, Debug)]
pub struct ConvTree {
    /// The node tree.
    pub tree: Tree<ConvNode>,
    /// Every text buffer the document contributed, in ingest order.
    /// Spans index into this; buffers are never mutated after creation.
    pub(crate) texts: Vec<String>,
}

impl Default for ConvTree {
    fn default() -> Self {
        Self::new()
    }
}

impl ConvTree {
    /// An empty conversion tree: just the document root.
    pub fn new() -> Self {
        ConvTree {
            tree: Tree::new(ConvNode::Document { val: String::new() }),
            texts: Vec::new(),
        }
    }

    /// An empty conversion tree with arena capacity for `nodes` nodes.
    pub fn with_node_capacity(nodes: usize) -> Self {
        ConvTree {
            tree: Tree::with_capacity(ConvNode::Document { val: String::new() }, nodes),
            texts: Vec::new(),
        }
    }

    /// Moves `text` into the arena, returning the span covering all of it.
    pub fn intern(&mut self, text: String) -> Span {
        let buf = self.texts.len() as u32;
        let end = text.len() as u32;
        self.texts.push(text);
        Span { buf, start: 0, end }
    }

    /// Appends a text node holding `text` under `parent` (test/builder
    /// convenience — ingest interns directly).
    pub fn append_text(&mut self, parent: NodeId, text: String) -> NodeId {
        let span = self.intern(text);
        self.tree.append_child(parent, ConvNode::Text(span))
    }

    /// The text a span points at.
    pub fn text(&self, span: Span) -> &str {
        span.slice(&self.texts)
    }

    /// The text of `id` if it is a text or token node.
    pub fn node_text(&self, id: NodeId) -> Option<&str> {
        match self.tree.value(id) {
            ConvNode::Text(span) | ConvNode::Token(span) => Some(self.text(*span)),
            _ => None,
        }
    }

    /// Number of text buffers in the arena.
    pub fn buffer_count(&self) -> usize {
        self.texts.len()
    }
}

/// Splits a text-run span into token sub-spans; shared by the tokenization
/// rule. Lives here so [`Span`]'s fields can stay private.
pub(crate) fn token_subspans(
    span: Span,
    texts: &[String],
    delimiters: &webre_text::tokenize::Delimiters,
) -> Vec<Span> {
    webre_text::tokenize::split_token_spans(span.slice(texts), delimiters)
        .into_iter()
        .map(|(s, e)| span.sub(s, e))
        .collect()
}

/// Resolves a span against a borrowed arena (the text rules' split-borrow
/// accessor).
pub(crate) fn span_text<'a>(span: Span, texts: &'a [String]) -> &'a str {
    span.slice(texts)
}

/// Ingests a (tidied) HTML document into a conversion tree, borrowing the
/// input: element names and text runs are copied. Comments and doctypes
/// are dropped; elements and text map one-to-one.
pub fn ingest(html: &HtmlDocument) -> ConvTree {
    let mut conv = ConvTree::with_node_capacity(html.tree.arena_len());
    let root = conv.tree.root();
    let mut stack: Vec<(NodeId, NodeId)> = vec![(html.tree.root(), root)];
    // Simple explicit DFS keeping (source, copied-parent) pairs.
    while let Some((src, dst_parent)) = stack.pop() {
        for child in html
            .tree
            .children_vec(src)
            .into_iter()
            .rev()
            .collect::<Vec<_>>()
        {
            match html.tree.value(child) {
                HtmlNode::Element { name, .. } => {
                    let node = conv.tree.orphan(ConvNode::Html {
                        name: name.clone(),
                        val: String::new(),
                    });
                    conv.tree.prepend(dst_parent, node);
                    stack.push((child, node));
                }
                HtmlNode::Text(t) => {
                    let span = conv.intern(t.clone());
                    let node = conv.tree.orphan(ConvNode::Text(span));
                    conv.tree.prepend(dst_parent, node);
                }
                HtmlNode::Comment(_) | HtmlNode::Doctype(_) | HtmlNode::Document => {}
            }
        }
    }
    conv
}

/// [`ingest`] consuming the document: element names and text runs are
/// *moved* into the conversion tree, not copied. This is the cold-path
/// entry — combined with [`crate::convert::Converter::convert_owned`] it
/// removes the whole-document clone (and its per-element attribute-vector
/// duplication) from every conversion.
pub fn ingest_owned(html: HtmlDocument) -> ConvTree {
    let mut html = html;
    let mut conv = ConvTree::with_node_capacity(html.tree.arena_len());
    let root = conv.tree.root();
    let mut stack: Vec<(NodeId, NodeId)> = vec![(html.tree.root(), root)];
    while let Some((src, dst_parent)) = stack.pop() {
        for child in html
            .tree
            .children_vec(src)
            .into_iter()
            .rev()
            .collect::<Vec<_>>()
        {
            match html.tree.value_mut(child) {
                HtmlNode::Element { name, .. } => {
                    let node = conv.tree.orphan(ConvNode::Html {
                        name: std::mem::take(name),
                        val: String::new(),
                    });
                    conv.tree.prepend(dst_parent, node);
                    stack.push((child, node));
                }
                HtmlNode::Text(t) => {
                    let span = conv.intern(std::mem::take(t));
                    let node = conv.tree.orphan(ConvNode::Text(span));
                    conv.tree.prepend(dst_parent, node);
                }
                HtmlNode::Comment(_) | HtmlNode::Doctype(_) | HtmlNode::Document => {}
            }
        }
    }
    conv
}

/// Finalizes a fully consolidated conversion tree into an [`XmlDocument`]
/// rooted at `root_concept`.
///
/// Any remaining document-level `val` text becomes the root's `val`. If a
/// direct child carries the root concept's own name (e.g. a "Resume" page
/// title), it is merged into the root rather than nested.
pub fn finalize(conv: &ConvTree, root_concept: &str) -> XmlDocument {
    let tree = &conv.tree;
    let root_name = webre_xml::name::sanitize(root_concept);
    let mut doc = XmlDocument::new(root_name.clone());
    let doc_root = doc.root();
    if let Some(val) = tree.value(tree.root()).val() {
        if !val.is_empty() {
            doc.tree.value_mut(doc_root).push_val(val);
        }
    }
    for child in tree.children(tree.root()) {
        copy_concepts(conv, child, &mut doc, doc_root);
    }
    // Merge a child that duplicates the root concept.
    for child in doc.tree.children_vec(doc_root) {
        if doc.tree.value(child).name() == Some(root_name.as_str()) {
            if let Some(v) = doc.tree.value(child).val().map(str::to_owned) {
                doc.tree.value_mut(doc_root).push_val(&v);
            }
            doc.tree.replace_with_children(child);
        }
    }
    doc
}

fn copy_concepts(conv: &ConvTree, src: NodeId, doc: &mut XmlDocument, dst_parent: NodeId) {
    let tree = &conv.tree;
    match tree.value(src) {
        ConvNode::Concept { name, val } => {
            let name = webre_xml::name::sanitize(name);
            let node = if val.is_empty() {
                XmlNode::element(name)
            } else {
                XmlNode::element_with_val(name, val.clone())
            };
            let copied = doc.tree.append_child(dst_parent, node);
            for child in tree.children(src) {
                copy_concepts(conv, child, doc, copied);
            }
        }
        // Non-concept nodes should be gone by now; if the structure rules
        // were disabled (ablation), flatten them transparently.
        _ => {
            if let Some(val) = tree.value(src).val() {
                if !val.is_empty() {
                    doc.tree.value_mut(dst_parent).push_val(val);
                }
            }
            if let ConvNode::Text(span) | ConvNode::Token(span) = tree.value(src) {
                doc.tree.value_mut(dst_parent).push_val(conv.text(*span));
            }
            for child in tree.children(src) {
                copy_concepts(conv, child, doc, dst_parent);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_html::parse;

    #[test]
    fn ingest_preserves_structure_and_order() {
        let html = parse("<div><p>a</p><p>b</p></div>");
        let conv = ingest(&html);
        let tree = &conv.tree;
        let labels: Vec<String> = tree
            .descendants(tree.root())
            .map(|n| match tree.value(n) {
                ConvNode::Document { .. } => "#doc".into(),
                ConvNode::Html { name, .. } => name.clone(),
                ConvNode::Text(span) => format!("#{}", conv.text(*span)),
                other => format!("{other:?}"),
            })
            .collect();
        assert_eq!(labels, ["#doc", "div", "p", "#a", "p", "#b"]);
    }

    #[test]
    fn ingest_owned_matches_borrowing_ingest() {
        let src = "<div class=\"x\" id=\"y\"><p>a</p><!-- gone --><p>b c</p></div>";
        let borrowed = ingest(&parse(src));
        let owned = ingest_owned(parse(src));
        let label = |conv: &ConvTree, n| match conv.tree.value(n) {
            ConvNode::Html { name, .. } => name.clone(),
            ConvNode::Text(span) => format!("#{}", conv.text(*span)),
            other => format!("{other:?}"),
        };
        let a: Vec<String> = borrowed
            .tree
            .descendants(borrowed.tree.root())
            .map(|n| label(&borrowed, n))
            .collect();
        let b: Vec<String> = owned
            .tree
            .descendants(owned.tree.root())
            .map(|n| label(&owned, n))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn ingest_drops_comments() {
        let html = parse("<!-- c --><p>x</p>");
        let conv = ingest(&html);
        assert_eq!(conv.tree.subtree_size(conv.tree.root()), 3);
    }

    #[test]
    fn push_val_accumulates() {
        let mut n = ConvNode::Html {
            name: "p".into(),
            val: String::new(),
        };
        n.push_val("one");
        n.push_val(" two ");
        n.push_val("");
        assert_eq!(n.val(), Some("one two"));
    }

    #[test]
    fn spans_resolve_and_subdivide() {
        let mut conv = ConvTree::new();
        let root = conv.tree.root();
        let id = conv.append_text(root, "hello world".into());
        assert_eq!(conv.node_text(id), Some("hello world"));
        let ConvNode::Text(span) = *conv.tree.value(id) else {
            panic!("text node expected");
        };
        assert_eq!(conv.text(span.sub(6, 11)), "world");
        assert_eq!(conv.buffer_count(), 1);
    }

    #[test]
    fn finalize_builds_rooted_document() {
        let mut conv = ConvTree::new();
        let root = conv.tree.root();
        let edu = conv.tree.append_child(
            root,
            ConvNode::Concept {
                name: "education".into(),
                val: "Education".into(),
            },
        );
        conv.tree.append_child(
            edu,
            ConvNode::Concept {
                name: "degree".into(),
                val: "B.S.".into(),
            },
        );
        let doc = finalize(&conv, "resume");
        assert_eq!(doc.root_name(), "resume");
        assert_eq!(
            webre_xml::to_xml(&doc),
            r#"<resume><education val="Education"><degree val="B.S."/></education></resume>"#
        );
    }

    #[test]
    fn finalize_merges_duplicate_root_concept() {
        let mut conv = ConvTree::new();
        let root = conv.tree.root();
        let dup = conv.tree.append_child(
            root,
            ConvNode::Concept {
                name: "resume".into(),
                val: "My Resume".into(),
            },
        );
        conv.tree.append_child(
            dup,
            ConvNode::Concept {
                name: "contact".into(),
                val: "x".into(),
            },
        );
        let doc = finalize(&conv, "resume");
        assert_eq!(doc.root_name(), "resume");
        assert_eq!(doc.tree.value(doc.root()).val(), Some("My Resume"));
        let child = doc.tree.first_child(doc.root()).unwrap();
        assert_eq!(doc.tree.value(child).name(), Some("contact"));
    }
}
