//! The structure rules: grouping and consolidation (Section 2.3.2).

use crate::node::ConvNode;
use webre_concepts::{Constraint, ConstraintSet};
use webre_html::taxonomy::{group_tag_weight, is_list_tag};
use webre_obs::{counter, Ctx};
use webre_tree::{NodeId, Tree};

/// Applies the grouping rule top-down.
///
/// At each level, the group tag with the highest priority among the
/// element children is selected; for every child `Nᵢ` with that tag, all
/// siblings between `Nᵢ` and the next same-tag sibling (or the end of the
/// child list) sink under a fresh `GROUP` node that becomes a child of
/// `Nᵢ`. Because groups sink, group tags of lower priority are handled at
/// the next lower level on the following top-down step.
pub fn grouping_rule(tree: &mut Tree<ConvNode>) {
    grouping_rule_obs(tree, Ctx::disabled());
}

/// [`grouping_rule`] with observability: every `GROUP` node sunk feeds
/// the `groups_sunk` counter. The tree transformation is identical.
pub fn grouping_rule_obs(tree: &mut Tree<ConvNode>, ctx: Ctx<'_>) {
    // Worklist DFS: children may gain GROUP nodes while we walk, so we
    // re-fetch child lists after processing each node.
    let mut groups_sunk = 0u64;
    let mut work = vec![tree.root()];
    while let Some(node) = work.pop() {
        groups_sunk += group_children(tree, node);
        work.extend(tree.children(node));
    }
    if groups_sunk > 0 {
        ctx.count(counter::GROUPS_SUNK, groups_sunk);
    }
}

/// Runs one grouping step over the direct children of `parent`, returning
/// the number of `GROUP` nodes created.
fn group_children(tree: &mut Tree<ConvNode>, parent: NodeId) -> u64 {
    // Find the highest-priority group tag among element children.
    let best: Option<(u32, String)> = tree
        .children(parent)
        .filter_map(|c| tree.value(c).html_name())
        .filter_map(|name| group_tag_weight(name).map(|w| (w, name.to_owned())))
        .max();
    let Some((_, tag)) = best else { return 0 };
    let mut created = 0u64;

    let children = tree.children_vec(parent);
    let marker_positions: Vec<usize> = children
        .iter()
        .enumerate()
        .filter(|(_, c)| tree.value(**c).html_name() == Some(tag.as_str()))
        .map(|(i, _)| i)
        .collect();
    for (mi, &pos) in marker_positions.iter().enumerate() {
        let span_end = marker_positions
            .get(mi + 1)
            .copied()
            .unwrap_or(children.len());
        let span = &children[pos + 1..span_end];
        if span.is_empty() {
            continue;
        }
        let group = tree.orphan(ConvNode::Group { val: String::new() });
        created += 1;
        tree.append(children[pos], group);
        for &sib in span {
            tree.detach(sib);
            tree.append(group, sib);
        }
    }
    created
}

/// Applies the consolidation rule bottom-up, eliminating all remaining
/// HTML markup and temporary `GROUP` nodes.
///
/// For a non-concept node `N`:
/// * no children → `N` is deleted (its accumulated `val` moves to the
///   parent so no text is lost);
/// * `N` is a list tag, a `GROUP` whose children share one concept name,
///   or all children carry the same concept name → the children push up,
///   replacing `N` (their sibling relationship is maintained);
/// * otherwise → `N` is replaced by its first concept child, and the
///   remaining children become that child's children (Figure 1).
pub fn consolidation_rule(tree: &mut Tree<ConvNode>) {
    consolidation_rule_with(tree, None);
}

/// [`consolidation_rule`] with concept constraints: per the paper, "the
/// rule can also utilize existing concept constraints in order to
/// determine whether a node (concept) can become a parent or sibling of
/// another node" — the promoted child is the first concept child that the
/// constraints admit as a parent of its siblings-to-be.
pub fn consolidation_rule_with(tree: &mut Tree<ConvNode>, constraints: Option<&ConstraintSet>) {
    consolidation_rule_with_obs(tree, constraints, Ctx::disabled());
}

/// [`consolidation_rule_with`] with observability: every structural
/// (HTML/`GROUP`) node the rule eliminates feeds the
/// `nodes_consolidated` counter. The tree transformation is identical.
pub fn consolidation_rule_with_obs(
    tree: &mut Tree<ConvNode>,
    constraints: Option<&ConstraintSet>,
    ctx: Ctx<'_>,
) {
    let mut consolidated = 0u64;
    let order: Vec<NodeId> = tree.post_order(tree.root()).collect();
    for id in order {
        if id == tree.root() || !tree.is_attached(id) {
            continue;
        }
        let is_structural = matches!(
            tree.value(id),
            ConvNode::Html { .. } | ConvNode::Group { .. }
        );
        if !is_structural {
            continue;
        }
        consolidated += 1;
        let parent = tree.parent(id).expect("attached non-root");
        if tree.is_leaf(id) {
            if let Some(val) = tree.value(id).val().map(str::to_owned) {
                tree.value_mut(parent).push_val(&val);
            }
            tree.detach(id);
            continue;
        }
        let children = tree.children_vec(id);
        if should_push_up(tree, id, &children) {
            // The node's accumulated text describes its content: hand it to
            // the first pushed-up child rather than the parent, so e.g. a
            // heading's stray text stays with its section concept.
            if let Some(val) = tree.value(id).val().map(str::to_owned) {
                tree.value_mut(children[0]).push_val(&val);
            }
            tree.replace_with_children(id);
        } else {
            promote_first_concept(tree, id, &children, constraints);
        }
    }
    if consolidated > 0 {
        ctx.count(counter::NODES_CONSOLIDATED, consolidated);
    }
}

/// Whether the constraints forbid `parent` becoming an ancestor of
/// `child` (a negated `parent(parent, child)` constraint).
fn parent_forbidden(constraints: &ConstraintSet, parent: &str, child: &str) -> bool {
    constraints.iter().any(|c| {
        matches!(c, Constraint::Parent { ancestor, descendant, negated: true }
            if ancestor == parent && descendant == child)
    })
}

/// Decides the push-up case of the consolidation rule.
fn should_push_up(tree: &Tree<ConvNode>, id: NodeId, children: &[NodeId]) -> bool {
    if let Some(name) = tree.value(id).html_name() {
        if is_list_tag(name) {
            return true;
        }
    }
    // All children carry the same concept name.
    let mut names = children.iter().map(|c| tree.value(*c).concept_name());
    match names.next().flatten() {
        Some(first) => names.all(|n| n == Some(first)),
        None => false,
    }
}

/// Replaces `id` by its first admissible concept child; remaining children
/// are appended to that child, preserving order.
///
/// Without constraints "admissible" is simply "first concept child". With
/// constraints, a child is skipped when a negated `parent` constraint
/// forbids it from parenting one of the other concept children; if no
/// child qualifies, the first concept child wins after all (constraints
/// are hints, not hard failures).
fn promote_first_concept(
    tree: &mut Tree<ConvNode>,
    id: NodeId,
    children: &[NodeId],
    constraints: Option<&ConstraintSet>,
) {
    let concept_children: Vec<NodeId> = children
        .iter()
        .copied()
        .filter(|c| tree.value(*c).concept_name().is_some())
        .collect();
    let admissible = constraints.and_then(|cs| {
        concept_children.iter().copied().find(|cand| {
            let cand_name = tree.value(*cand).concept_name().expect("concept");
            concept_children.iter().all(|other| {
                other == cand
                    || !parent_forbidden(
                        cs,
                        cand_name,
                        tree.value(*other).concept_name().expect("concept"),
                    )
            })
        })
    });
    // Bottom-up processing guarantees children are concept nodes by now.
    let Some(&first) = admissible.as_ref().or(concept_children.first()) else {
        // Defensive: no concept child (possible if text rules identified
        // nothing). Fall back to pushing children up.
        let parent = tree.parent(id).expect("attached non-root");
        if let Some(val) = tree.value(id).val().map(str::to_owned) {
            tree.value_mut(parent).push_val(&val);
        }
        tree.replace_with_children(id);
        return;
    };
    if let Some(val) = tree.value(id).val().map(str::to_owned) {
        tree.value_mut(first).push_val(&val);
    }
    for &child in children {
        if child != first {
            tree.detach(child);
            tree.append(first, child);
        }
    }
    tree.replace_with(id, first);
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_tree::render_with;

    fn label(n: &ConvNode) -> String {
        match n {
            ConvNode::Document { .. } => "#doc".into(),
            ConvNode::Html { name, .. } => name.clone(),
            ConvNode::Text(_) => "#text".into(),
            ConvNode::Token(_) => "#token".into(),
            ConvNode::Group { .. } => "GROUP".into(),
            ConvNode::Concept { name, .. } => name.to_uppercase(),
        }
    }

    fn render(tree: &Tree<ConvNode>) -> String {
        render_with(tree, tree.root(), label)
    }

    fn doc_root() -> Tree<ConvNode> {
        Tree::new(ConvNode::Document { val: String::new() })
    }

    fn html(tree: &mut Tree<ConvNode>, parent: NodeId, name: &str) -> NodeId {
        tree.append_child(
            parent,
            ConvNode::Html {
                name: name.into(),
                val: String::new(),
            },
        )
    }

    fn concept(tree: &mut Tree<ConvNode>, parent: NodeId, name: &str) -> NodeId {
        tree.append_child(
            parent,
            ConvNode::Concept {
                name: name.into(),
                val: String::new(),
            },
        )
    }

    #[test]
    fn grouping_sinks_right_siblings() {
        // h2 A B h2 C  →  h2(GROUP(A,B)) h2(GROUP(C))
        let mut tree = doc_root();
        let root = tree.root();
        let h2a = html(&mut tree, root, "h2");
        concept(&mut tree, root, "a");
        concept(&mut tree, root, "b");
        let h2b = html(&mut tree, root, "h2");
        concept(&mut tree, root, "c");
        grouping_rule(&mut tree);
        assert_eq!(tree.children(root).count(), 2);
        let g1 = tree.first_child(h2a).unwrap();
        assert!(matches!(tree.value(g1), ConvNode::Group { .. }));
        assert_eq!(tree.children(g1).count(), 2);
        let g2 = tree.first_child(h2b).unwrap();
        assert_eq!(tree.children(g2).count(), 1);
        tree.check_integrity().unwrap();
    }

    #[test]
    fn grouping_prefers_higher_weight_tag() {
        // p X h2 Y: h2 outranks p, so h2 captures Y; the p keeps X at this
        // level only after recursion into p (no group tag inside).
        let mut tree = doc_root();
        let root = tree.root();
        html(&mut tree, root, "p");
        concept(&mut tree, root, "x");
        let h2 = html(&mut tree, root, "h2");
        concept(&mut tree, root, "y");
        grouping_rule(&mut tree);
        // h2 captured only y; p and x remain top-level siblings.
        let top: Vec<String> = tree.children(root).map(|c| label(tree.value(c))).collect();
        assert_eq!(top, ["p", "X", "h2"], "{}", render(&tree));
        let g = tree.first_child(h2).unwrap();
        assert_eq!(tree.children(g).count(), 1);
    }

    #[test]
    fn grouping_recurses_into_sunk_groups() {
        // h2 p A p B  →  h2(GROUP(p(GROUP(A)), p(GROUP(B))))
        let mut tree = doc_root();
        let root = tree.root();
        html(&mut tree, root, "h2");
        html(&mut tree, root, "p");
        concept(&mut tree, root, "a");
        html(&mut tree, root, "p");
        concept(&mut tree, root, "b");
        grouping_rule(&mut tree);
        let rendered = render(&tree);
        assert_eq!(
            rendered,
            "#doc\n  h2\n    GROUP\n      p\n        GROUP\n          A\n      p\n        GROUP\n          B\n"
        );
    }

    #[test]
    fn grouping_without_group_tags_is_noop() {
        let mut tree = doc_root();
        let root = tree.root();
        let table = html(&mut tree, root, "table");
        concept(&mut tree, table, "a");
        let before = render(&tree);
        grouping_rule(&mut tree);
        assert_eq!(render(&tree), before);
    }

    #[test]
    fn consolidation_paper_figure_1() {
        // Build the upper tree of Figure 1:
        // h2(EDUCATION, ul(GROUP(DATE,INST,DEGREE), GROUP(DATE,INST,DEGREE)))
        let mut tree = doc_root();
        let root = tree.root();
        let h2 = html(&mut tree, root, "h2");
        tree.append_child(
            h2,
            ConvNode::Concept {
                name: "education".into(),
                val: "Education".into(),
            },
        );
        let ul = html(&mut tree, h2, "ul");
        for _ in 0..2 {
            let g = tree.append_child(ul, ConvNode::Group { val: String::new() });
            concept(&mut tree, g, "date");
            concept(&mut tree, g, "institution");
            concept(&mut tree, g, "degree");
        }
        consolidation_rule(&mut tree);
        // Expected lower tree: EDUCATION(DATE(INST,DEGREE), DATE(INST,DEGREE))
        assert_eq!(
            render(&tree),
            "#doc\n  EDUCATION\n    DATE\n      INSTITUTION\n      DEGREE\n    DATE\n      INSTITUTION\n      DEGREE\n"
        );
        tree.check_integrity().unwrap();
    }

    #[test]
    fn consolidation_deletes_empty_markup() {
        let mut tree = doc_root();
        let root = tree.root();
        let div = html(&mut tree, root, "div");
        html(&mut tree, div, "span");
        consolidation_rule(&mut tree);
        assert!(tree.is_leaf(root));
    }

    #[test]
    fn consolidation_preserves_val_of_deleted_leaves() {
        let mut tree = doc_root();
        let root = tree.root();
        let c = concept(&mut tree, root, "education");
        let p = tree.append_child(
            c,
            ConvNode::Html {
                name: "p".into(),
                val: "stray text".into(),
            },
        );
        let _ = p;
        consolidation_rule(&mut tree);
        assert_eq!(tree.value(c).val(), Some("stray text"));
    }

    #[test]
    fn list_tag_pushes_up_mixed_children() {
        // ul(DATE, DEGREE): a list tag pushes up even non-uniform children.
        let mut tree = doc_root();
        let root = tree.root();
        let c = concept(&mut tree, root, "education");
        let ul = html(&mut tree, c, "ul");
        concept(&mut tree, ul, "date");
        concept(&mut tree, ul, "degree");
        consolidation_rule(&mut tree);
        assert_eq!(
            render(&tree),
            "#doc\n  EDUCATION\n    DATE\n    DEGREE\n"
        );
    }

    #[test]
    fn same_named_children_push_up_through_non_list_tag() {
        let mut tree = doc_root();
        let root = tree.root();
        let c = concept(&mut tree, root, "skills");
        let div = html(&mut tree, c, "div");
        concept(&mut tree, div, "position");
        concept(&mut tree, div, "position");
        consolidation_rule(&mut tree);
        assert_eq!(
            render(&tree),
            "#doc\n  SKILLS\n    POSITION\n    POSITION\n"
        );
    }

    #[test]
    fn non_uniform_children_promote_first_concept() {
        let mut tree = doc_root();
        let root = tree.root();
        let div = html(&mut tree, root, "div");
        concept(&mut tree, div, "date");
        concept(&mut tree, div, "institution");
        consolidation_rule(&mut tree);
        assert_eq!(render(&tree), "#doc\n  DATE\n    INSTITUTION\n");
    }

    #[test]
    fn constraints_steer_promotion() {
        use webre_concepts::{Constraint, ConstraintSet};
        // div(DATE, EDUCATION): unconstrained promotion picks DATE (first);
        // a negated parent(date, education) constraint steers it to
        // EDUCATION instead — the paper's homonym scenario.
        let build = || {
            let mut tree = doc_root();
            let root = tree.root();
            let div = html(&mut tree, root, "div");
            concept(&mut tree, div, "date");
            concept(&mut tree, div, "education");
            tree
        };
        let mut plain = build();
        consolidation_rule(&mut plain);
        assert_eq!(render(&plain), "#doc\n  DATE\n    EDUCATION\n");

        let constraints: ConstraintSet =
            [Constraint::parent("date", "education").negate()]
                .into_iter()
                .collect();
        let mut guided = build();
        consolidation_rule_with(&mut guided, Some(&constraints));
        assert_eq!(render(&guided), "#doc\n  EDUCATION\n    DATE\n");
    }

    #[test]
    fn constraints_fall_back_when_nothing_admissible() {
        use webre_concepts::{Constraint, ConstraintSet};
        let constraints: ConstraintSet = [
            Constraint::parent("date", "education").negate(),
            Constraint::parent("education", "date").negate(),
        ]
        .into_iter()
        .collect();
        let mut tree = doc_root();
        let root = tree.root();
        let div = html(&mut tree, root, "div");
        concept(&mut tree, div, "date");
        concept(&mut tree, div, "education");
        consolidation_rule_with(&mut tree, Some(&constraints));
        // Nothing admissible: first concept child wins (hint, not failure).
        assert_eq!(render(&tree), "#doc\n  DATE\n    EDUCATION\n");
    }

    #[test]
    fn grouping_then_consolidation_end_to_end() {
        // h2(EDUCATION-text) ul(li(date-ish)) pattern after text rules.
        let mut tree = doc_root();
        let root = tree.root();
        let h2 = html(&mut tree, root, "h2");
        tree.append_child(
            h2,
            ConvNode::Concept {
                name: "education".into(),
                val: "Education".into(),
            },
        );
        let ul = html(&mut tree, root, "ul");
        for _ in 0..2 {
            let li = html(&mut tree, ul, "li");
            concept(&mut tree, li, "date");
            concept(&mut tree, li, "degree");
        }
        grouping_rule(&mut tree);
        consolidation_rule(&mut tree);
        assert_eq!(
            render(&tree),
            "#doc\n  EDUCATION\n    DATE\n      DEGREE\n    DATE\n      DEGREE\n"
        );
        tree.check_integrity().unwrap();
    }
}
