//! The logical-error accuracy metric of Section 4.1.
//!
//! The paper evaluates extraction accuracy "by counting the number of wrong
//! parent-child and sibling relationships in the extracted tree. We reorder
//! the nodes in the extracted tree in order to convert it to the correct
//! tree. In doing so, we may move a node and its siblings together to make
//! up for one parent-child relationship that has been incorrectly
//! identified. This is counted as one logical error." The paper did this by
//! hand over 50 documents; this module mechanizes it:
//!
//! 1. collect the multiset of `(parent label, child label)` edges of the
//!    ground-truth tree;
//! 2. sweep the extracted tree in document order, consuming matching edge
//!    budget; a child whose edge has no budget left is *misplaced*;
//! 3. a maximal run of consecutive misplaced siblings counts as **one**
//!    logical error (the "move a node and its siblings together" provision);
//! 4. ground-truth edges never consumed are *missing*; each maximal group
//!    of same-(parent,child)-label missing edges counts as one error.
//!
//! Accuracy for a document is `1 - errors / concept nodes`, matching the
//! paper's "average percentage of error nodes ... with respect to the total
//! number of concept nodes".

use std::collections::HashMap;
use webre_xml::{XmlDocument, XmlNode};

/// Edge multiset of an XML tree: (parent label, child label) → count.
fn edge_multiset(doc: &XmlDocument) -> HashMap<(String, String), i64> {
    let mut edges = HashMap::new();
    for id in doc.tree.descendants(doc.root()) {
        if !matches!(doc.tree.value(id), XmlNode::Element { .. }) {
            continue;
        }
        let parent_label = doc.label(id).to_owned();
        for child in doc.tree.children(id) {
            let child_label = doc.label(child).to_owned();
            *edges.entry((parent_label.clone(), child_label)).or_insert(0) += 1;
        }
    }
    edges
}

/// The outcome of comparing an extracted tree against its ground truth.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccuracyReport {
    /// Logical errors (see module docs).
    pub errors: u64,
    /// Concept (element) nodes in the extracted tree.
    pub concept_nodes: u64,
    /// Misplaced-run errors (extracted edges not in the truth).
    pub misplaced_runs: u64,
    /// Missing-edge-group errors (truth edges never produced).
    pub missing_groups: u64,
}

impl AccuracyReport {
    /// Error-node percentage: errors / concept nodes, in `[0, 1]`.
    pub fn error_rate(&self) -> f64 {
        if self.concept_nodes == 0 {
            return if self.errors == 0 { 0.0 } else { 1.0 };
        }
        (self.errors as f64 / self.concept_nodes as f64).min(1.0)
    }

    /// Extraction accuracy: `1 - error_rate`.
    pub fn accuracy(&self) -> f64 {
        1.0 - self.error_rate()
    }
}

/// Compares an extracted tree against the ground truth and counts logical
/// errors.
pub fn logical_errors(extracted: &XmlDocument, truth: &XmlDocument) -> AccuracyReport {
    let mut budget = edge_multiset(truth);
    let mut report = AccuracyReport::default();

    // Sweep the extracted tree, consuming edge budget and counting runs of
    // consecutive misplaced children as single errors.
    for id in extracted.tree.descendants(extracted.root()) {
        if !matches!(extracted.tree.value(id), XmlNode::Element { .. }) {
            continue;
        }
        report.concept_nodes += 1;
        let parent_label = extracted.label(id).to_owned();
        let mut in_bad_run = false;
        for child in extracted.tree.children(id) {
            if !matches!(extracted.tree.value(child), XmlNode::Element { .. }) {
                continue;
            }
            let key = (parent_label.clone(), extracted.label(child).to_owned());
            let slot = budget.entry(key).or_insert(0);
            if *slot > 0 {
                *slot -= 1;
                in_bad_run = false;
            } else {
                if !in_bad_run {
                    report.misplaced_runs += 1;
                }
                in_bad_run = true;
            }
        }
    }

    // Whatever budget remains was never produced: group by edge label.
    report.missing_groups = budget.values().filter(|count| **count > 0).count() as u64;
    report.errors = report.misplaced_runs + report.missing_groups;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_xml::parse_xml;

    fn doc(xml: &str) -> XmlDocument {
        parse_xml(xml).unwrap()
    }

    #[test]
    fn identical_trees_have_zero_errors() {
        let a = doc("<resume><education><degree/><date/></education></resume>");
        let r = logical_errors(&a, &a);
        assert_eq!(r.errors, 0);
        assert_eq!(r.concept_nodes, 4);
        assert_eq!(r.accuracy(), 1.0);
    }

    #[test]
    fn sibling_order_does_not_matter() {
        // The metric is about parent-child relationships; reordered
        // siblings consume the same edge budget.
        let a = doc("<r><x/><y/></r>");
        let b = doc("<r><y/><x/></r>");
        assert_eq!(logical_errors(&a, &b).errors, 0);
    }

    #[test]
    fn one_misplaced_node_is_one_error_pair() {
        // degree hangs off the root instead of education: one misplaced
        // run plus one missing edge group.
        let truth = doc("<r><education><degree/></education></r>");
        let got = doc("<r><education/><degree/></r>");
        let r = logical_errors(&got, &truth);
        assert_eq!(r.misplaced_runs, 1);
        assert_eq!(r.missing_groups, 1);
        assert_eq!(r.errors, 2);
    }

    #[test]
    fn consecutive_misplaced_siblings_count_once() {
        // Three nodes moved together: one run.
        let truth = doc("<r><edu><a/><b/><c/></edu></r>");
        let got = doc("<r><edu/><a/><b/><c/></r>");
        let r = logical_errors(&got, &truth);
        assert_eq!(r.misplaced_runs, 1);
        // a, b, c edges under edu all missing → grouped by label = 3.
        assert_eq!(r.missing_groups, 3);
    }

    #[test]
    fn interrupted_runs_count_separately() {
        let truth = doc("<r><x/><edu><a/><b/></edu></r>");
        let got = doc("<r><a/><x/><b/><edu/></r>");
        let r = logical_errors(&got, &truth);
        assert_eq!(r.misplaced_runs, 2, "{r:?}");
    }

    #[test]
    fn extra_duplicate_edge_is_misplaced() {
        let truth = doc("<r><a/></r>");
        let got = doc("<r><a/><a/></r>");
        let r = logical_errors(&got, &truth);
        assert_eq!(r.misplaced_runs, 1);
        assert_eq!(r.missing_groups, 0);
    }

    #[test]
    fn error_rate_clamps_to_one() {
        let truth = doc("<r><q><w><z/></w></q></r>");
        let got = doc("<r><a/></r>");
        let r = logical_errors(&got, &truth);
        assert!(r.error_rate() <= 1.0);
        assert!(r.accuracy() >= 0.0);
    }

    #[test]
    fn text_nodes_are_ignored() {
        let truth = doc("<r><a/></r>");
        let got = doc("<r>text<a/>more</r>");
        assert_eq!(logical_errors(&got, &truth).errors, 0);
    }
}
