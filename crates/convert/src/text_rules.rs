//! The text rules: tokenization and concept instance identification
//! (Section 2.3.1).
//!
//! Both rules work on the [`ConvTree`] arena: token text is read through
//! spans borrowed from the tree's text buffers (a split borrow — `texts`
//! immutably, `tree` mutably), so neither rule clones token strings while
//! restructuring. Concept identification goes through the precompiled
//! [`ConceptMatcher`] automaton, one pass per token regardless of
//! catalogue size; the `matcher-vs-naive` oracle in `webre-check` pins its
//! equivalence to the naive reference scanner.

use crate::convert::{ClassifierMode, ConvertStats};
use crate::node::{span_text, token_subspans, ConvNode, ConvTree};
use webre_concepts::{ConceptMatcher, ConstraintSet};
use webre_obs::{counter, Ctx};
use webre_text::tokenize::Delimiters;
use webre_tree::NodeId;

/// Applies the tokenization rule to the whole tree, top-down: every text
/// node is replaced by `n ≥ 1` token nodes split on the delimiter set.
///
/// Text nodes containing no token content (delimiters/whitespace only)
/// simply disappear. Tokens are sub-spans of their text run's buffer — no
/// text is copied.
pub fn tokenization_rule(conv: &mut ConvTree, delimiters: &Delimiters) {
    tokenization_rule_obs(conv, delimiters, Ctx::disabled());
}

/// [`tokenization_rule`] with observability: produced tokens feed the
/// `tokens_split` counter. The tree transformation is identical.
pub fn tokenization_rule_obs(conv: &mut ConvTree, delimiters: &Delimiters, ctx: Ctx<'_>) {
    let ConvTree { tree, texts } = conv;
    let ids: Vec<NodeId> = tree.descendants(tree.root()).collect();
    for id in ids {
        let ConvNode::Text(span) = *tree.value(id) else {
            continue;
        };
        let tokens = token_subspans(span, texts, delimiters);
        if !tokens.is_empty() {
            ctx.count(counter::TOKENS_SPLIT, tokens.len() as u64);
        }
        let mut anchor = id;
        for tok in tokens {
            let node = tree.orphan(ConvNode::Token(tok));
            tree.insert_after(anchor, node);
            anchor = node;
        }
        tree.detach(id);
    }
}

/// Applies the concept instance rule to every token node, top-down.
///
/// * one concept identified → the token becomes `<C val="token text"/>`;
/// * several concepts identified → the token is decomposed at the instance
///   positions; text before the first instance goes to the parent's `val`;
/// * nothing identified (synonyms and, if configured, the Bayes classifier
///   both fail) → the token is deleted and its text passed to the parent's
///   `val`, so no information is lost.
pub fn concept_instance_rule(
    conv: &mut ConvTree,
    matcher: &ConceptMatcher,
    classifier: &ClassifierMode,
    constraints: Option<&ConstraintSet>,
    stats: &mut ConvertStats,
) {
    concept_instance_rule_obs(conv, matcher, classifier, constraints, stats, Ctx::disabled());
}

/// [`concept_instance_rule`] with observability: every concept node the
/// rule creates feeds the `concepts_matched` counter. The tree
/// transformation and statistics are identical.
pub fn concept_instance_rule_obs(
    conv: &mut ConvTree,
    matcher: &ConceptMatcher,
    classifier: &ClassifierMode,
    constraints: Option<&ConstraintSet>,
    stats: &mut ConvertStats,
    ctx: Ctx<'_>,
) {
    let ConvTree { tree, texts } = conv;
    let mut concepts_matched = 0u64;
    let ids: Vec<NodeId> = tree.descendants(tree.root()).collect();
    for id in ids {
        let ConvNode::Token(span) = *tree.value(id) else {
            continue;
        };
        let text = span_text(span, texts);
        stats.tokens_total += 1;
        let mut matches = match classifier {
            ClassifierMode::BayesOnly { .. } => Vec::new(),
            _ => matcher.find_matches(text),
        };
        // Constraint-guided decomposition: a match whose concept is
        // forbidden as a sibling of an earlier accepted match is dropped
        // (its text then flows into the preceding concept's segment).
        if let Some(cs) = constraints {
            let mut accepted: Vec<String> = Vec::new();
            matches.retain(|m| {
                let ok = accepted.iter().all(|a| cs.admits_siblings(a, &m.concept));
                if ok {
                    accepted.push(m.concept.clone());
                }
                ok
            });
        }
        let distinct: Vec<&str> = {
            let mut seen: Vec<&str> = Vec::new();
            for m in &matches {
                if !seen.contains(&m.concept.as_str()) {
                    seen.push(&m.concept);
                }
            }
            seen
        };
        match distinct.len() {
            0 => {
                // Synonyms failed; give the classifier a chance.
                if let Some(label) = classifier.classify(text) {
                    stats.tokens_identified += 1;
                    stats.tokens_via_classifier += 1;
                    concepts_matched += 1;
                    *tree.value_mut(id) = ConvNode::Concept {
                        name: label.to_owned(),
                        val: text.to_owned(),
                    };
                } else {
                    stats.tokens_unidentified += 1;
                    let parent = tree.parent(id).expect("token is never the root");
                    tree.value_mut(parent).push_val(text);
                    tree.detach(id);
                }
            }
            1 => {
                stats.tokens_identified += 1;
                concepts_matched += 1;
                *tree.value_mut(id) = ConvNode::Concept {
                    name: matches[0].concept.clone(),
                    val: text.to_owned(),
                };
            }
            _ => {
                // Decompose: each identified instance takes the text from
                // its own start up to the next instance's start; the text
                // before the first instance goes to the parent.
                stats.tokens_identified += 1;
                stats.tokens_decomposed += 1;
                concepts_matched += matches.len() as u64;
                let parent = tree.parent(id).expect("token is never the root");
                let first_start = matches[0].start;
                if first_start > 0 {
                    let prefix = text[..first_start].trim();
                    if !prefix.is_empty() {
                        tree.value_mut(parent).push_val(prefix);
                    }
                }
                let mut anchor = id;
                for (i, m) in matches.iter().enumerate() {
                    let end = matches.get(i + 1).map_or(text.len(), |n| n.start);
                    let segment = text[m.start..end].trim();
                    let node = tree.orphan(ConvNode::Concept {
                        name: m.concept.clone(),
                        val: segment.to_owned(),
                    });
                    tree.insert_after(anchor, node);
                    anchor = node;
                }
                tree.detach(id);
            }
        }
    }
    if concepts_matched > 0 {
        ctx.count(counter::CONCEPTS_MATCHED, concepts_matched);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ingest;
    use webre_concepts::{resume, ConceptSet};
    use webre_html::parse;

    fn resume_matcher() -> ConceptMatcher {
        ConceptMatcher::new(&resume::concepts())
    }

    fn tokens_of(conv: &ConvTree) -> Vec<String> {
        conv.tree
            .descendants(conv.tree.root())
            .filter_map(|n| match conv.tree.value(n) {
                ConvNode::Token(span) => Some(conv.text(*span).to_owned()),
                _ => None,
            })
            .collect()
    }

    fn concepts_of(conv: &ConvTree) -> Vec<(String, String)> {
        conv.tree
            .descendants(conv.tree.root())
            .filter_map(|n| match conv.tree.value(n) {
                ConvNode::Concept { name, val } => Some((name.clone(), val.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn tokenization_splits_topic_sentence() {
        let html = parse("<li>UC Davis, B.S., June 1996</li>");
        let mut conv = ingest(&html);
        tokenization_rule(&mut conv, &Delimiters::default());
        assert_eq!(tokens_of(&conv), ["UC Davis", "B.S.", "June 1996"]);
    }

    #[test]
    fn tokenization_drops_empty_text() {
        let html = parse("<p>;;;</p>");
        let mut conv = ingest(&html);
        tokenization_rule(&mut conv, &Delimiters::default());
        assert!(tokens_of(&conv).is_empty());
    }

    #[test]
    fn tokenization_allocates_no_token_strings() {
        // The whole point of the span representation: tokenizing adds
        // nodes but never new text buffers.
        let html = parse("<li>UC Davis, B.S., June 1996</li><p>Skills: C++; Perl</p>");
        let mut conv = ingest(&html);
        let buffers_before = conv.buffer_count();
        tokenization_rule(&mut conv, &Delimiters::default());
        assert_eq!(conv.buffer_count(), buffers_before);
        assert_eq!(tokens_of(&conv).len(), 6);
    }

    #[test]
    fn instance_rule_paper_example() {
        // The paper's running example (Section 2.3.1, case 1).
        let html = parse(
            "<p>University of California at Davis, B.S.(Computer Science), June 1996, GPA 3.8/4.0</p>",
        );
        let mut conv = ingest(&html);
        tokenization_rule(&mut conv, &Delimiters::default());
        let mut stats = ConvertStats::default();
        concept_instance_rule(
            &mut conv,
            &resume_matcher(),
            &ClassifierMode::SynonymsOnly,
            None,
            &mut stats,
        );
        let found = concepts_of(&conv);
        assert_eq!(found.len(), 4, "{found:?}");
        assert_eq!(found[0].0, "institution");
        assert_eq!(found[0].1, "University of California at Davis");
        assert_eq!(found[1].0, "degree");
        assert_eq!(found[2].0, "date");
        assert_eq!(found[3].0, "gpa");
        assert_eq!(stats.tokens_total, 4);
        assert_eq!(stats.tokens_identified, 4);
    }

    #[test]
    fn unidentified_token_passes_text_to_parent() {
        let html = parse("<p>completely unrecognizable zorp</p>");
        let mut conv = ingest(&html);
        tokenization_rule(&mut conv, &Delimiters::default());
        let mut stats = ConvertStats::default();
        concept_instance_rule(
            &mut conv,
            &resume_matcher(),
            &ClassifierMode::SynonymsOnly,
            None,
            &mut stats,
        );
        assert!(concepts_of(&conv).is_empty());
        assert_eq!(stats.tokens_unidentified, 1);
        // The <p> keeps the text in its val.
        let p = conv.tree.first_child(conv.tree.root()).unwrap();
        assert_eq!(
            conv.tree.value(p).val(),
            Some("completely unrecognizable zorp")
        );
    }

    #[test]
    fn multi_instance_token_is_decomposed() {
        // No delimiters at all: one token holding two concepts plus a
        // leading unidentified fragment.
        let html = parse("<p>worked hard B.S. Computer Science June 1996</p>");
        let mut conv = ingest(&html);
        tokenization_rule(&mut conv, &Delimiters::default());
        let mut stats = ConvertStats::default();
        concept_instance_rule(
            &mut conv,
            &resume_matcher(),
            &ClassifierMode::SynonymsOnly,
            None,
            &mut stats,
        );
        let found = concepts_of(&conv);
        assert_eq!(found.len(), 2, "{found:?}");
        assert_eq!(found[0].0, "degree");
        assert_eq!(found[0].1, "B.S. Computer Science");
        assert_eq!(found[1].0, "date");
        assert_eq!(found[1].1, "June 1996");
        let p = conv.tree.first_child(conv.tree.root()).unwrap();
        assert_eq!(conv.tree.value(p).val(), Some("worked hard"));
        assert_eq!(stats.tokens_decomposed, 1);
    }

    #[test]
    fn negated_sibling_constraint_guides_decomposition() {
        use webre_concepts::Constraint;
        let html = parse("<p>worked hard B.S. Computer Science June 1996</p>");
        // Without constraints this token decomposes into degree + date
        // (see multi_instance_token_is_decomposed). A negated sibling
        // constraint between degree and date keeps the whole token with
        // the first (degree) match.
        let constraints: webre_concepts::ConstraintSet =
            [Constraint::sibling("degree", "date").negate()]
                .into_iter()
                .collect();
        let mut conv = ingest(&html);
        tokenization_rule(&mut conv, &Delimiters::default());
        let mut stats = ConvertStats::default();
        concept_instance_rule(
            &mut conv,
            &resume_matcher(),
            &ClassifierMode::SynonymsOnly,
            Some(&constraints),
            &mut stats,
        );
        let found = concepts_of(&conv);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].0, "degree");
        assert!(found[0].1.contains("June 1996"), "{found:?}");
        assert_eq!(stats.tokens_decomposed, 0);
    }

    #[test]
    fn bayes_classifier_rescues_unmatched_tokens() {
        use webre_text::BayesTrainer;
        let mut t = BayesTrainer::new();
        t.add("position", "software engineer intern");
        t.add("position", "senior developer");
        t.add("unknown", "lorem ipsum");
        let model = t.build().unwrap();
        let mode = ClassifierMode::Both {
            model,
            margin: 0.0,
            unknown_label: "unknown".into(),
        };
        let html = parse("<p>staff engineer</p>");
        let mut conv = ingest(&html);
        tokenization_rule(&mut conv, &Delimiters::default());
        let mut stats = ConvertStats::default();
        // Use an empty concept set so synonyms cannot match.
        let empty = ConceptMatcher::new(&ConceptSet::new());
        concept_instance_rule(&mut conv, &empty, &mode, None, &mut stats);
        let found = concepts_of(&conv);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, "position");
        assert_eq!(stats.tokens_via_classifier, 1);
    }

    #[test]
    fn bayes_unknown_label_means_unidentified() {
        use webre_text::BayesTrainer;
        let mut t = BayesTrainer::new();
        t.add("position", "software engineer");
        t.add("unknown", "random filler words");
        let model = t.build().unwrap();
        let mode = ClassifierMode::Both {
            model,
            margin: 0.0,
            unknown_label: "unknown".into(),
        };
        let html = parse("<p>random filler words</p>");
        let mut conv = ingest(&html);
        tokenization_rule(&mut conv, &Delimiters::default());
        let mut stats = ConvertStats::default();
        let empty = ConceptMatcher::new(&ConceptSet::new());
        concept_instance_rule(&mut conv, &empty, &mode, None, &mut stats);
        assert!(concepts_of(&conv).is_empty());
        assert_eq!(stats.tokens_unidentified, 1);
    }
}
