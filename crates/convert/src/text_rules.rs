//! The text rules: tokenization and concept instance identification
//! (Section 2.3.1).

use crate::convert::{ClassifierMode, ConvertStats};
use crate::node::ConvNode;
use webre_concepts::matcher::find_matches;
use webre_concepts::{ConceptSet, ConstraintSet};
use webre_obs::{counter, Ctx};
use webre_text::tokenize::{split_tokens_obs, Delimiters};
use webre_tree::{NodeId, Tree};

/// Applies the tokenization rule to the whole tree, top-down: every text
/// node is replaced by `n ≥ 1` token nodes split on the delimiter set.
///
/// Text nodes containing no token content (delimiters/whitespace only)
/// simply disappear.
pub fn tokenization_rule(tree: &mut Tree<ConvNode>, delimiters: &Delimiters) {
    tokenization_rule_obs(tree, delimiters, Ctx::disabled());
}

/// [`tokenization_rule`] with observability: produced tokens feed the
/// `tokens_split` counter. The tree transformation is identical.
pub fn tokenization_rule_obs(tree: &mut Tree<ConvNode>, delimiters: &Delimiters, ctx: Ctx<'_>) {
    let ids: Vec<NodeId> = tree.descendants(tree.root()).collect();
    for id in ids {
        let ConvNode::Text(text) = tree.value(id) else {
            continue;
        };
        let tokens = split_tokens_obs(text, delimiters, ctx);
        let mut anchor = id;
        for tok in tokens {
            let node = tree.orphan(ConvNode::Token(tok));
            tree.insert_after(anchor, node);
            anchor = node;
        }
        tree.detach(id);
    }
}

/// Applies the concept instance rule to every token node, top-down.
///
/// * one concept identified → the token becomes `<C val="token text"/>`;
/// * several concepts identified → the token is decomposed at the instance
///   positions; text before the first instance goes to the parent's `val`;
/// * nothing identified (synonyms and, if configured, the Bayes classifier
///   both fail) → the token is deleted and its text passed to the parent's
///   `val`, so no information is lost.
pub fn concept_instance_rule(
    tree: &mut Tree<ConvNode>,
    concepts: &ConceptSet,
    classifier: &ClassifierMode,
    constraints: Option<&ConstraintSet>,
    stats: &mut ConvertStats,
) {
    concept_instance_rule_obs(tree, concepts, classifier, constraints, stats, Ctx::disabled());
}

/// [`concept_instance_rule`] with observability: every concept node the
/// rule creates feeds the `concepts_matched` counter. The tree
/// transformation and statistics are identical.
pub fn concept_instance_rule_obs(
    tree: &mut Tree<ConvNode>,
    concepts: &ConceptSet,
    classifier: &ClassifierMode,
    constraints: Option<&ConstraintSet>,
    stats: &mut ConvertStats,
    ctx: Ctx<'_>,
) {
    let mut concepts_matched = 0u64;
    let ids: Vec<NodeId> = tree.descendants(tree.root()).collect();
    for id in ids {
        let ConvNode::Token(text) = tree.value(id) else {
            continue;
        };
        let text = text.clone();
        stats.tokens_total += 1;
        let mut matches = match classifier {
            ClassifierMode::BayesOnly { .. } => Vec::new(),
            _ => find_matches(concepts, &text),
        };
        // Constraint-guided decomposition: a match whose concept is
        // forbidden as a sibling of an earlier accepted match is dropped
        // (its text then flows into the preceding concept's segment).
        if let Some(cs) = constraints {
            let mut accepted: Vec<String> = Vec::new();
            matches.retain(|m| {
                let ok = accepted.iter().all(|a| cs.admits_siblings(a, &m.concept));
                if ok {
                    accepted.push(m.concept.clone());
                }
                ok
            });
        }
        let distinct: Vec<&str> = {
            let mut seen: Vec<&str> = Vec::new();
            for m in &matches {
                if !seen.contains(&m.concept.as_str()) {
                    seen.push(&m.concept);
                }
            }
            seen
        };
        match distinct.len() {
            0 => {
                // Synonyms failed; give the classifier a chance.
                if let Some(label) = classifier.classify(&text) {
                    stats.tokens_identified += 1;
                    stats.tokens_via_classifier += 1;
                    concepts_matched += 1;
                    *tree.value_mut(id) = ConvNode::Concept {
                        name: label.to_owned(),
                        val: text,
                    };
                } else {
                    stats.tokens_unidentified += 1;
                    let parent = tree.parent(id).expect("token is never the root");
                    tree.value_mut(parent).push_val(&text);
                    tree.detach(id);
                }
            }
            1 => {
                stats.tokens_identified += 1;
                concepts_matched += 1;
                *tree.value_mut(id) = ConvNode::Concept {
                    name: matches[0].concept.clone(),
                    val: text,
                };
            }
            _ => {
                // Decompose: each identified instance takes the text from
                // its own start up to the next instance's start; the text
                // before the first instance goes to the parent.
                stats.tokens_identified += 1;
                stats.tokens_decomposed += 1;
                concepts_matched += matches.len() as u64;
                let parent = tree.parent(id).expect("token is never the root");
                let first_start = matches[0].start;
                if first_start > 0 {
                    let prefix = text[..first_start].trim();
                    if !prefix.is_empty() {
                        tree.value_mut(parent).push_val(prefix);
                    }
                }
                let mut anchor = id;
                for (i, m) in matches.iter().enumerate() {
                    let end = matches.get(i + 1).map_or(text.len(), |n| n.start);
                    let segment = text[m.start..end].trim();
                    let node = tree.orphan(ConvNode::Concept {
                        name: m.concept.clone(),
                        val: segment.to_owned(),
                    });
                    tree.insert_after(anchor, node);
                    anchor = node;
                }
                tree.detach(id);
            }
        }
    }
    if concepts_matched > 0 {
        ctx.count(counter::CONCEPTS_MATCHED, concepts_matched);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ingest;
    use webre_concepts::resume;
    use webre_html::parse;

    fn tokens_of(tree: &Tree<ConvNode>) -> Vec<String> {
        tree.descendants(tree.root())
            .filter_map(|n| match tree.value(n) {
                ConvNode::Token(t) => Some(t.clone()),
                _ => None,
            })
            .collect()
    }

    fn concepts_of(tree: &Tree<ConvNode>) -> Vec<(String, String)> {
        tree.descendants(tree.root())
            .filter_map(|n| match tree.value(n) {
                ConvNode::Concept { name, val } => Some((name.clone(), val.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn tokenization_splits_topic_sentence() {
        let html = parse("<li>UC Davis, B.S., June 1996</li>");
        let mut tree = ingest(&html);
        tokenization_rule(&mut tree, &Delimiters::default());
        assert_eq!(tokens_of(&tree), ["UC Davis", "B.S.", "June 1996"]);
    }

    #[test]
    fn tokenization_drops_empty_text() {
        let html = parse("<p>;;;</p>");
        let mut tree = ingest(&html);
        tokenization_rule(&mut tree, &Delimiters::default());
        assert!(tokens_of(&tree).is_empty());
    }

    #[test]
    fn instance_rule_paper_example() {
        // The paper's running example (Section 2.3.1, case 1).
        let html = parse(
            "<p>University of California at Davis, B.S.(Computer Science), June 1996, GPA 3.8/4.0</p>",
        );
        let mut tree = ingest(&html);
        tokenization_rule(&mut tree, &Delimiters::default());
        let mut stats = ConvertStats::default();
        concept_instance_rule(
            &mut tree,
            &resume::concepts(),
            &ClassifierMode::SynonymsOnly,
            None,
            &mut stats,
        );
        let found = concepts_of(&tree);
        assert_eq!(found.len(), 4, "{found:?}");
        assert_eq!(found[0].0, "institution");
        assert_eq!(found[0].1, "University of California at Davis");
        assert_eq!(found[1].0, "degree");
        assert_eq!(found[2].0, "date");
        assert_eq!(found[3].0, "gpa");
        assert_eq!(stats.tokens_total, 4);
        assert_eq!(stats.tokens_identified, 4);
    }

    #[test]
    fn unidentified_token_passes_text_to_parent() {
        let html = parse("<p>completely unrecognizable zorp</p>");
        let mut tree = ingest(&html);
        tokenization_rule(&mut tree, &Delimiters::default());
        let mut stats = ConvertStats::default();
        concept_instance_rule(
            &mut tree,
            &resume::concepts(),
            &ClassifierMode::SynonymsOnly,
            None,
            &mut stats,
        );
        assert!(concepts_of(&tree).is_empty());
        assert_eq!(stats.tokens_unidentified, 1);
        // The <p> keeps the text in its val.
        let p = tree.first_child(tree.root()).unwrap();
        assert_eq!(
            tree.value(p).val(),
            Some("completely unrecognizable zorp")
        );
    }

    #[test]
    fn multi_instance_token_is_decomposed() {
        // No delimiters at all: one token holding two concepts plus a
        // leading unidentified fragment.
        let html = parse("<p>worked hard B.S. Computer Science June 1996</p>");
        let mut tree = ingest(&html);
        tokenization_rule(&mut tree, &Delimiters::default());
        let mut stats = ConvertStats::default();
        concept_instance_rule(
            &mut tree,
            &resume::concepts(),
            &ClassifierMode::SynonymsOnly,
            None,
            &mut stats,
        );
        let found = concepts_of(&tree);
        assert_eq!(found.len(), 2, "{found:?}");
        assert_eq!(found[0].0, "degree");
        assert_eq!(found[0].1, "B.S. Computer Science");
        assert_eq!(found[1].0, "date");
        assert_eq!(found[1].1, "June 1996");
        let p = tree.first_child(tree.root()).unwrap();
        assert_eq!(tree.value(p).val(), Some("worked hard"));
        assert_eq!(stats.tokens_decomposed, 1);
    }

    #[test]
    fn negated_sibling_constraint_guides_decomposition() {
        use webre_concepts::Constraint;
        let html = parse("<p>worked hard B.S. Computer Science June 1996</p>");
        // Without constraints this token decomposes into degree + date
        // (see multi_instance_token_is_decomposed). A negated sibling
        // constraint between degree and date keeps the whole token with
        // the first (degree) match.
        let constraints: webre_concepts::ConstraintSet =
            [Constraint::sibling("degree", "date").negate()]
                .into_iter()
                .collect();
        let mut tree = ingest(&html);
        tokenization_rule(&mut tree, &Delimiters::default());
        let mut stats = ConvertStats::default();
        concept_instance_rule(
            &mut tree,
            &resume::concepts(),
            &ClassifierMode::SynonymsOnly,
            Some(&constraints),
            &mut stats,
        );
        let found = concepts_of(&tree);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].0, "degree");
        assert!(found[0].1.contains("June 1996"), "{found:?}");
        assert_eq!(stats.tokens_decomposed, 0);
    }

    #[test]
    fn bayes_classifier_rescues_unmatched_tokens() {
        use webre_text::BayesTrainer;
        let mut t = BayesTrainer::new();
        t.add("position", "software engineer intern");
        t.add("position", "senior developer");
        t.add("unknown", "lorem ipsum");
        let model = t.build().unwrap();
        let mode = ClassifierMode::Both {
            model,
            margin: 0.0,
            unknown_label: "unknown".into(),
        };
        let html = parse("<p>staff engineer</p>");
        let mut tree = ingest(&html);
        tokenization_rule(&mut tree, &Delimiters::default());
        let mut stats = ConvertStats::default();
        // Use an empty concept set so synonyms cannot match.
        concept_instance_rule(&mut tree, &ConceptSet::new(), &mode, None, &mut stats);
        let found = concepts_of(&tree);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, "position");
        assert_eq!(stats.tokens_via_classifier, 1);
    }

    #[test]
    fn bayes_unknown_label_means_unidentified() {
        use webre_text::BayesTrainer;
        let mut t = BayesTrainer::new();
        t.add("position", "software engineer");
        t.add("unknown", "random filler words");
        let model = t.build().unwrap();
        let mode = ClassifierMode::Both {
            model,
            margin: 0.0,
            unknown_label: "unknown".into(),
        };
        let html = parse("<p>random filler words</p>");
        let mut tree = ingest(&html);
        tokenization_rule(&mut tree, &Delimiters::default());
        let mut stats = ConvertStats::default();
        concept_instance_rule(&mut tree, &ConceptSet::new(), &mode, None, &mut stats);
        assert!(concepts_of(&tree).is_empty());
        assert_eq!(stats.tokens_unidentified, 1);
    }
}
