//! Allocation-count regression tests for the conversion fast path.
//!
//! A counting `#[global_allocator]` (thread-local counters, so parallel
//! test threads do not pollute each other) pins two properties per golden
//! fixture:
//!
//! 1. the owned conversion path allocates strictly less than the
//!    borrow-and-clone path — the clone duplicated every attribute
//!    vector of every element per conversion, which is exactly the
//!    latent bug `convert_owned` fixed; and
//! 2. absolute allocation counts stay under a pinned ceiling, so a
//!    reintroduced per-token `String` or per-node clone shows up as a
//!    test failure rather than a silent throughput regression.
//!
//! Node counts (HTML in, XML out) are pinned exactly; allocation counts
//! are pinned as ceilings because the allocator call pattern may shift
//! slightly across rustc/std versions.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use webre_concepts::resume;
use webre_convert::convert::Converter;
use webre_html::parse;

struct CountingAlloc;

thread_local! {
    static ALLOC_CALLS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOC_CALLS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOC_CALLS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Number of heap allocations (alloc + realloc) made by `f` on this
/// thread.
fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOC_CALLS.with(Cell::get);
    f();
    ALLOC_CALLS.with(Cell::get) - before
}

struct Fixture {
    name: &'static str,
    html: &'static str,
    /// Exact node count of the parsed HTML tree (including the root).
    html_nodes: usize,
    /// Exact element count of the converted XML document.
    xml_elements: usize,
    /// Ceiling on heap allocations for one owned-path conversion of an
    /// already-parsed document (measured ~60% of this; headroom covers
    /// allocator-pattern drift, not algorithmic regressions).
    max_allocs: u64,
}

const FIXTURES: &[Fixture] = &[
    Fixture {
        name: "resume_clean",
        html: include_str!("../../../tests/fixtures/resume_clean.html"),
        html_nodes: 63,
        xml_elements: 22,
        max_allocs: 1200,
    },
    Fixture {
        name: "resume_nested",
        html: include_str!("../../../tests/fixtures/resume_nested.html"),
        html_nodes: 147,
        xml_elements: 28,
        max_allocs: 2100,
    },
    Fixture {
        name: "resume_soup",
        html: include_str!("../../../tests/fixtures/resume_soup.html"),
        html_nodes: 60,
        xml_elements: 21,
        max_allocs: 1200,
    },
    Fixture {
        name: "resume_table",
        html: include_str!("../../../tests/fixtures/resume_table.html"),
        html_nodes: 97,
        xml_elements: 21,
        max_allocs: 1450,
    },
];

#[test]
fn node_counts_are_pinned() {
    let converter = Converter::new(resume::concepts());
    for fixture in FIXTURES {
        let html = parse(fixture.html);
        let nodes = html.tree.descendants(html.tree.root()).count();
        assert_eq!(
            nodes, fixture.html_nodes,
            "{}: parsed HTML node count changed",
            fixture.name
        );
        let (xml, _) = converter.convert_owned(html);
        assert_eq!(
            xml.element_count(),
            fixture.xml_elements,
            "{}: converted XML element count changed",
            fixture.name
        );
    }
}

#[test]
fn owned_path_allocates_less_than_clone_path() {
    let converter = Converter::new(resume::concepts());
    for fixture in FIXTURES {
        let html = parse(fixture.html);
        // Warm up so lazily initialized state is excluded from both sides.
        let _ = converter.convert(&html);

        // Borrowing path: clones the whole document (attribute vectors
        // included) before converting.
        let clone_allocs = count_allocs(|| {
            let _ = converter.convert(&html);
        });
        // Owned path: the clone happens outside the measured region, so
        // this measures conversion alone — what `convert_str` pays.
        let owned_doc = html.clone();
        let owned_allocs = count_allocs(|| {
            let _ = converter.convert_owned(owned_doc);
        });

        assert!(
            owned_allocs < clone_allocs,
            "{}: owned path ({owned_allocs} allocs) should beat clone path ({clone_allocs})",
            fixture.name
        );
        assert!(
            owned_allocs > 0,
            "{}: counter not wired up",
            fixture.name
        );
        assert!(
            owned_allocs <= fixture.max_allocs,
            "{}: owned conversion now makes {owned_allocs} allocations \
             (ceiling {}); a per-token or per-node copy has probably crept \
             back into the pipeline",
            fixture.name,
            fixture.max_allocs
        );
    }
}
