//! Property tests for the restructuring rules: the invariants that make
//! the conversion sound regardless of input shape.

use proptest::prelude::*;
use webre_convert::convert::{ClassifierMode, ConvertStats};
use webre_convert::node::ConvNode;
use webre_convert::structure_rules::{consolidation_rule, grouping_rule};
use webre_convert::text_rules::{concept_instance_rule, tokenization_rule};
use webre_concepts::resume;
use webre_text::tokenize::Delimiters;
use webre_tree::Tree;

/// Random conversion trees: HTML elements with text sprinkled in.
fn conv_tree_strategy() -> impl Strategy<Value = Tree<ConvNode>> {
    let tags = prop_oneof![
        Just("div"),
        Just("p"),
        Just("h2"),
        Just("ul"),
        Just("li"),
        Just("b"),
        Just("table"),
        Just("tr"),
        Just("td"),
        Just("span"),
    ];
    let texts = prop_oneof![
        Just("Stanford University, B.S., June 1996"),
        Just("Education"),
        Just("random unidentifiable prose"),
        Just("Experience"),
        Just("GPA 3.8/4.0; Verity Inc"),
        Just(""),
    ];
    proptest::collection::vec((0usize..12, tags, texts, prop::bool::ANY), 0..24).prop_map(
        |nodes| {
            let mut tree = Tree::new(ConvNode::Document { val: String::new() });
            let mut ids = vec![tree.root()];
            for (parent, tag, text, is_text) in nodes {
                let p = ids[parent % ids.len()];
                // Text may not have children: only attach elements under
                // elements/document; text becomes a leaf.
                if is_text {
                    tree.append_child(p, ConvNode::Text(text.to_owned()));
                } else {
                    ids.push(tree.append_child(
                        p,
                        ConvNode::Html {
                            name: tag.to_owned(),
                            val: String::new(),
                        },
                    ));
                }
            }
            tree
        },
    )
}

fn run_pipeline(tree: &mut Tree<ConvNode>) -> ConvertStats {
    let mut stats = ConvertStats::default();
    tokenization_rule(tree, &Delimiters::default());
    concept_instance_rule(
        tree,
        &resume::concepts(),
        &ClassifierMode::SynonymsOnly,
        None,
        &mut stats,
    );
    grouping_rule(tree);
    consolidation_rule(tree);
    stats
}

fn concept_count(tree: &Tree<ConvNode>) -> usize {
    tree.descendants(tree.root())
        .filter(|n| tree.value(*n).concept_name().is_some())
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After the full rule pipeline only concept nodes remain attached
    /// (plus the document root): every HTML/GROUP/TOKEN/TEXT node is gone.
    #[test]
    fn consolidation_eliminates_all_markup(mut tree in conv_tree_strategy()) {
        run_pipeline(&mut tree);
        for id in tree.descendants(tree.root()) {
            if id == tree.root() {
                continue;
            }
            prop_assert!(
                tree.value(id).concept_name().is_some(),
                "survivor: {:?}",
                tree.value(id)
            );
        }
        prop_assert!(tree.check_integrity().is_ok());
    }

    /// The structure rules never create or destroy concept nodes: the
    /// number of concepts after consolidation equals the number identified
    /// by the text rules.
    #[test]
    fn structure_rules_preserve_concepts(mut tree in conv_tree_strategy()) {
        let mut stats = ConvertStats::default();
        tokenization_rule(&mut tree, &Delimiters::default());
        concept_instance_rule(
            &mut tree,
            &resume::concepts(),
            &ClassifierMode::SynonymsOnly,
            None,
            &mut stats,
        );
        let before = concept_count(&tree);
        grouping_rule(&mut tree);
        prop_assert_eq!(concept_count(&tree), before, "grouping changed concepts");
        consolidation_rule(&mut tree);
        prop_assert_eq!(concept_count(&tree), before, "consolidation changed concepts");
    }

    /// Grouping only ever adds GROUP nodes: the multiset of non-group
    /// nodes is unchanged.
    #[test]
    fn grouping_only_adds_groups(mut tree in conv_tree_strategy()) {
        let before: usize = tree.subtree_size(tree.root());
        let groups_before = tree
            .descendants(tree.root())
            .filter(|n| matches!(tree.value(*n), ConvNode::Group { .. }))
            .count();
        grouping_rule(&mut tree);
        let after_non_group = tree
            .descendants(tree.root())
            .filter(|n| !matches!(tree.value(*n), ConvNode::Group { .. }))
            .count();
        prop_assert_eq!(after_non_group, before - groups_before);
        prop_assert!(tree.check_integrity().is_ok());
    }

    /// No text is lost: every character of identified/unidentified token
    /// content survives somewhere in the vals of the final tree.
    #[test]
    fn text_is_never_lost(mut tree in conv_tree_strategy()) {
        // Gather all non-whitespace text before.
        let mut before = String::new();
        for id in tree.descendants(tree.root()) {
            if let ConvNode::Text(t) = tree.value(id) {
                before.extend(t.chars().filter(|c| !c.is_whitespace() && !matches!(c, ';' | ',' | ':')));
            }
        }
        run_pipeline(&mut tree);
        let mut after = String::new();
        for id in tree.descendants(tree.root()) {
            if let Some(v) = tree.value(id).val() {
                after.extend(v.chars().filter(|c| !c.is_whitespace() && !matches!(c, ';' | ',' | ':')));
            }
        }
        // Every character class count must survive (order may differ since
        // vals merge); compare as sorted character multisets.
        let mut b: Vec<char> = before.chars().collect();
        let mut a: Vec<char> = after.chars().collect();
        b.sort_unstable();
        a.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Statistics are internally consistent.
    #[test]
    fn stats_add_up(mut tree in conv_tree_strategy()) {
        let stats = run_pipeline(&mut tree);
        prop_assert_eq!(
            stats.tokens_identified + stats.tokens_unidentified,
            stats.tokens_total
        );
        prop_assert!(stats.tokens_via_classifier <= stats.tokens_identified);
        prop_assert!(stats.tokens_decomposed <= stats.tokens_identified);
    }
}
