//! Property tests for the restructuring rules: the invariants that make
//! the conversion sound regardless of input shape.

use webre_concepts::{resume, ConceptMatcher};
use webre_convert::convert::{ClassifierMode, ConvertStats};
use webre_convert::node::{ConvNode, ConvTree};
use webre_convert::structure_rules::{consolidation_rule, grouping_rule};
use webre_convert::text_rules::{concept_instance_rule, tokenization_rule};
use webre_substrate::prop::{self, Gen};
use webre_substrate::{prop_assert, prop_assert_eq};
use webre_text::tokenize::Delimiters;

const CASES: u32 = 128;

const TAGS: &[&str] = &[
    "div", "p", "h2", "ul", "li", "b", "table", "tr", "td", "span",
];

const TEXTS: &[&str] = &[
    "Stanford University, B.S., June 1996",
    "Education",
    "random unidentifiable prose",
    "Experience",
    "GPA 3.8/4.0; Verity Inc",
    "",
];

/// Random conversion trees: HTML elements with text sprinkled in.
fn gen_conv_tree(g: &mut Gen) -> ConvTree {
    let nodes = g.vec(0, 23, |g| {
        (g.int(0usize..12), *g.pick(TAGS), *g.pick(TEXTS), g.bool(0.5))
    });
    let mut conv = ConvTree::new();
    let mut ids = vec![conv.tree.root()];
    for (parent, tag, text, is_text) in nodes {
        let p = ids[parent % ids.len()];
        // Text may not have children: only attach elements under
        // elements/document; text becomes a leaf.
        if is_text {
            conv.append_text(p, text.to_owned());
        } else {
            ids.push(conv.tree.append_child(
                p,
                ConvNode::Html {
                    name: tag.to_owned(),
                    val: String::new(),
                },
            ));
        }
    }
    conv
}

fn resume_matcher() -> ConceptMatcher {
    ConceptMatcher::new(&resume::concepts())
}

fn run_pipeline(conv: &mut ConvTree) -> ConvertStats {
    let mut stats = ConvertStats::default();
    tokenization_rule(conv, &Delimiters::default());
    concept_instance_rule(
        conv,
        &resume_matcher(),
        &ClassifierMode::SynonymsOnly,
        None,
        &mut stats,
    );
    grouping_rule(&mut conv.tree);
    consolidation_rule(&mut conv.tree);
    stats
}

fn concept_count(conv: &ConvTree) -> usize {
    conv.tree
        .descendants(conv.tree.root())
        .filter(|n| conv.tree.value(*n).concept_name().is_some())
        .count()
}

/// After the full rule pipeline only concept nodes remain attached
/// (plus the document root): every HTML/GROUP/TOKEN/TEXT node is gone.
#[test]
fn consolidation_eliminates_all_markup() {
    prop::check_cases("consolidation_eliminates_all_markup", CASES, |g| {
        let mut conv = gen_conv_tree(g);
        run_pipeline(&mut conv);
        let tree = &conv.tree;
        for id in tree.descendants(tree.root()) {
            if id == tree.root() {
                continue;
            }
            prop_assert!(
                tree.value(id).concept_name().is_some(),
                "survivor: {:?}",
                tree.value(id)
            );
        }
        prop_assert!(tree.check_integrity().is_ok());
        Ok(())
    });
}

/// The structure rules never create or destroy concept nodes: the
/// number of concepts after consolidation equals the number identified
/// by the text rules.
#[test]
fn structure_rules_preserve_concepts() {
    prop::check_cases("structure_rules_preserve_concepts", CASES, |g| {
        let mut conv = gen_conv_tree(g);
        let mut stats = ConvertStats::default();
        tokenization_rule(&mut conv, &Delimiters::default());
        concept_instance_rule(
            &mut conv,
            &resume_matcher(),
            &ClassifierMode::SynonymsOnly,
            None,
            &mut stats,
        );
        let before = concept_count(&conv);
        grouping_rule(&mut conv.tree);
        prop_assert_eq!(concept_count(&conv), before, "grouping changed concepts");
        consolidation_rule(&mut conv.tree);
        prop_assert_eq!(
            concept_count(&conv),
            before,
            "consolidation changed concepts"
        );
        Ok(())
    });
}

/// Grouping only ever adds GROUP nodes: the multiset of non-group
/// nodes is unchanged.
#[test]
fn grouping_only_adds_groups() {
    prop::check_cases("grouping_only_adds_groups", CASES, |g| {
        let mut conv = gen_conv_tree(g);
        let tree = &mut conv.tree;
        let before: usize = tree.subtree_size(tree.root());
        let groups_before = tree
            .descendants(tree.root())
            .filter(|n| matches!(tree.value(*n), ConvNode::Group { .. }))
            .count();
        grouping_rule(tree);
        let after_non_group = tree
            .descendants(tree.root())
            .filter(|n| !matches!(tree.value(*n), ConvNode::Group { .. }))
            .count();
        prop_assert_eq!(after_non_group, before - groups_before);
        prop_assert!(tree.check_integrity().is_ok());
        Ok(())
    });
}

/// No text is lost: every character of identified/unidentified token
/// content survives somewhere in the vals of the final tree.
#[test]
fn text_is_never_lost() {
    prop::check_cases("text_is_never_lost", CASES, |g| {
        let mut conv = gen_conv_tree(g);
        // Gather all non-whitespace text before.
        let mut before = String::new();
        for id in conv.tree.descendants(conv.tree.root()) {
            if let Some(t) = conv.node_text(id) {
                before.extend(
                    t.chars()
                        .filter(|c| !c.is_whitespace() && !matches!(c, ';' | ',' | ':')),
                );
            }
        }
        run_pipeline(&mut conv);
        let mut after = String::new();
        for id in conv.tree.descendants(conv.tree.root()) {
            if let Some(v) = conv.tree.value(id).val() {
                after.extend(
                    v.chars()
                        .filter(|c| !c.is_whitespace() && !matches!(c, ';' | ',' | ':')),
                );
            }
        }
        // Every character class count must survive (order may differ since
        // vals merge); compare as sorted character multisets.
        let mut b: Vec<char> = before.chars().collect();
        let mut a: Vec<char> = after.chars().collect();
        b.sort_unstable();
        a.sort_unstable();
        prop_assert_eq!(a, b);
        Ok(())
    });
}

/// Statistics are internally consistent.
#[test]
fn stats_add_up() {
    prop::check_cases("stats_add_up", CASES, |g| {
        let mut conv = gen_conv_tree(g);
        let stats = run_pipeline(&mut conv);
        prop_assert_eq!(
            stats.tokens_identified + stats.tokens_unidentified,
            stats.tokens_total
        );
        prop_assert!(stats.tokens_via_classifier <= stats.tokens_identified);
        prop_assert!(stats.tokens_decomposed <= stats.tokens_identified);
        Ok(())
    });
}
