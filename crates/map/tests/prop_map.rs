//! Property tests for tree-edit distance and edit scripts.

use webre_map::edit_script::{edit_script, EditOp};
use webre_map::{edit_distance, EditCosts};
use webre_substrate::prop::{self, Gen};
use webre_substrate::{prop_assert, prop_assert_eq};
use webre_tree::Tree;

const CASES: u32 = 128;

/// Random label tree over a tiny alphabet.
fn gen_tree(g: &mut Gen) -> Tree<String> {
    let nodes = g.vec(0, 15, |g| (g.int(0usize..8), g.chars_in("abcd", 1, 1)));
    let mut tree = Tree::new("r".to_owned());
    let mut ids = vec![tree.root()];
    for (parent, label) in nodes {
        let p = ids[parent % ids.len()];
        ids.push(tree.append_child(p, label));
    }
    tree
}

#[test]
fn distance_is_a_metric_ish() {
    prop::check_cases("distance_is_a_metric_ish", CASES, |g| {
        let a = gen_tree(g);
        let b = gen_tree(g);
        let costs = EditCosts::default();
        let d_ab = edit_distance(&a, &b, &costs);
        let d_ba = edit_distance(&b, &a, &costs);
        prop_assert_eq!(d_ab, d_ba, "symmetry violated");
        prop_assert_eq!(edit_distance(&a, &a, &costs), 0);
        // Upper bound: delete all of a, insert all of b.
        let bound = a.subtree_size(a.root()) as u32 + b.subtree_size(b.root()) as u32;
        prop_assert!(d_ab <= bound);
        // Lower bound: size difference.
        let diff = (a.subtree_size(a.root()) as i64 - b.subtree_size(b.root()) as i64)
            .unsigned_abs() as u32;
        prop_assert!(d_ab >= diff);
        Ok(())
    });
}

#[test]
fn triangle_inequality() {
    prop::check_cases("triangle_inequality", CASES, |g| {
        let a = gen_tree(g);
        let b = gen_tree(g);
        let c = gen_tree(g);
        let costs = EditCosts::default();
        let ab = edit_distance(&a, &b, &costs);
        let bc = edit_distance(&b, &c, &costs);
        let ac = edit_distance(&a, &c, &costs);
        prop_assert!(ac <= ab + bc, "triangle violated: {ac} > {ab} + {bc}");
        Ok(())
    });
}

#[test]
fn script_cost_equals_distance() {
    prop::check_cases("script_cost_equals_distance", CASES, |g| {
        let a = gen_tree(g);
        let b = gen_tree(g);
        let costs = EditCosts::default();
        let (cost, ops) = edit_script(&a, &b, &costs);
        prop_assert_eq!(cost, edit_distance(&a, &b, &costs));
        // Each source node appears exactly once as Match/Relabel/Delete,
        // each target node exactly once as Match/Relabel/Insert.
        let n = a.subtree_size(a.root());
        let m = b.subtree_size(b.root());
        let mut from_seen = vec![0u32; n];
        let mut to_seen = vec![0u32; m];
        for op in &ops {
            match *op {
                EditOp::Match { from, to } | EditOp::Relabel { from, to } => {
                    from_seen[from] += 1;
                    to_seen[to] += 1;
                }
                EditOp::Delete { from } => from_seen[from] += 1,
                EditOp::Insert { to } => to_seen[to] += 1,
            }
        }
        prop_assert!(from_seen.iter().all(|c| *c == 1));
        prop_assert!(to_seen.iter().all(|c| *c == 1));
        Ok(())
    });
}

#[test]
fn matches_preserve_postorder_order() {
    prop::check_cases("matches_preserve_postorder_order", CASES, |g| {
        let a = gen_tree(g);
        let b = gen_tree(g);
        // A valid Zhang–Shasha mapping is order-preserving on post-order
        // indices for nodes on the same root path structure; at minimum the
        // pair lists must be strictly increasing when sorted by source.
        let costs = EditCosts::default();
        let (_, ops) = edit_script(&a, &b, &costs);
        let mut pairs: Vec<(usize, usize)> = ops
            .iter()
            .filter_map(|op| match *op {
                EditOp::Match { from, to } | EditOp::Relabel { from, to } => Some((from, to)),
                _ => None,
            })
            .collect();
        pairs.sort_unstable();
        for w in pairs.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
            prop_assert!(w[0].1 != w[1].1, "target node mapped twice");
        }
        Ok(())
    });
}
