//! Edit-script extraction for the Zhang–Shasha distance.
//!
//! Beyond the scalar distance, the Document Mapping Component wants to
//! *explain* a mapping: which nodes were relabeled, deleted, inserted and
//! which matched. This module recomputes the forest-distance tables for
//! the relevant keyroot pairs and backtracks through them, producing an
//! optimal [`EditOp`] sequence whose total cost equals
//! [`crate::zhang_shasha::edit_distance`].
//!
//! Node references are post-order indices into the respective tree (the
//! same numbering [`post_order_labels`] yields), which keeps the script
//! self-contained and cheap to store.

use crate::zhang_shasha::EditCosts;
use webre_tree::Tree;

/// One operation of an edit script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EditOp {
    /// Node `from` (in the source tree) corresponds to `to` (target) with
    /// equal labels: no cost.
    Match { from: usize, to: usize },
    /// Node `from` is relabeled to `to`'s label.
    Relabel { from: usize, to: usize },
    /// Node `from` of the source is deleted.
    Delete { from: usize },
    /// Node `to` of the target is inserted.
    Insert { to: usize },
}

/// Labels of a tree in post-order (the numbering edit scripts refer to).
pub fn post_order_labels(tree: &Tree<String>) -> Vec<String> {
    tree.post_order(tree.root())
        .map(|id| tree.value(id).clone())
        .collect()
}

struct Flat {
    labels: Vec<String>,
    lml: Vec<usize>,
    keyroots: Vec<usize>,
}

fn flatten(tree: &Tree<String>) -> Flat {
    let ids: Vec<_> = tree.post_order(tree.root()).collect();
    let mut index = std::collections::HashMap::new();
    for (i, id) in ids.iter().enumerate() {
        index.insert(*id, i);
    }
    let mut labels = Vec::with_capacity(ids.len());
    let mut lml = Vec::with_capacity(ids.len());
    for id in &ids {
        labels.push(tree.value(*id).clone());
        let mut leaf = *id;
        while let Some(first) = tree.first_child(leaf) {
            leaf = first;
        }
        lml.push(index[&leaf]);
    }
    let n = labels.len();
    let keyroots = (0..n)
        .filter(|&i| !(i + 1..n).any(|j| lml[j] == lml[i]))
        .collect();
    Flat {
        labels,
        lml,
        keyroots,
    }
}

/// Computes an optimal edit script together with its total cost.
pub fn edit_script(a: &Tree<String>, b: &Tree<String>, costs: &EditCosts) -> (u32, Vec<EditOp>) {
    let t1 = flatten(a);
    let t2 = flatten(b);
    let n = t1.labels.len();
    let m = t2.labels.len();
    let mut treedist = vec![vec![0u32; m]; n];
    // Mapping pairs discovered per tree pair; recomputed with backtracking.
    for &i in &t1.keyroots {
        for &j in &t2.keyroots {
            forest_dist(&t1, &t2, i, j, costs, &mut treedist, None);
        }
    }
    // Backtrack on the whole-tree problem, descending into sub-problems.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    backtrack(&t1, &t2, n - 1, m - 1, costs, &treedist, &mut pairs);

    let mut ops = Vec::new();
    let mut matched_a = vec![false; n];
    let mut matched_b = vec![false; m];
    for &(x, y) in &pairs {
        matched_a[x] = true;
        matched_b[y] = true;
        if t1.labels[x] == t2.labels[y] {
            ops.push(EditOp::Match { from: x, to: y });
        } else {
            ops.push(EditOp::Relabel { from: x, to: y });
        }
    }
    for (x, seen) in matched_a.iter().enumerate() {
        if !seen {
            ops.push(EditOp::Delete { from: x });
        }
    }
    for (y, seen) in matched_b.iter().enumerate() {
        if !seen {
            ops.push(EditOp::Insert { to: y });
        }
    }
    let cost = ops
        .iter()
        .map(|op| match op {
            EditOp::Match { .. } => 0,
            EditOp::Relabel { .. } => costs.relabel,
            EditOp::Delete { .. } => costs.delete,
            EditOp::Insert { .. } => costs.insert,
        })
        .sum();
    (cost, ops)
}

/// Forest distance for keyroot pair `(i, j)`; optionally returns the final
/// `fd` table for backtracking.
#[allow(clippy::too_many_arguments)]
fn forest_dist(
    t1: &Flat,
    t2: &Flat,
    i: usize,
    j: usize,
    costs: &EditCosts,
    treedist: &mut [Vec<u32>],
    mut table_out: Option<&mut Vec<Vec<u32>>>,
) {
    let li = t1.lml[i];
    let lj = t2.lml[j];
    let rows = i - li + 2;
    let cols = j - lj + 2;
    let mut fd = vec![vec![0u32; cols]; rows];
    for x in 1..rows {
        fd[x][0] = fd[x - 1][0] + costs.delete;
    }
    for y in 1..cols {
        fd[0][y] = fd[0][y - 1] + costs.insert;
    }
    for x in 1..rows {
        for y in 1..cols {
            let node1 = li + x - 1;
            let node2 = lj + y - 1;
            if t1.lml[node1] == li && t2.lml[node2] == lj {
                let relabel = if t1.labels[node1] == t2.labels[node2] {
                    0
                } else {
                    costs.relabel
                };
                fd[x][y] = (fd[x - 1][y] + costs.delete)
                    .min(fd[x][y - 1] + costs.insert)
                    .min(fd[x - 1][y - 1] + relabel);
                treedist[node1][node2] = fd[x][y];
            } else {
                let xi = t1.lml[node1] - li;
                let yj = t2.lml[node2] - lj;
                fd[x][y] = (fd[x - 1][y] + costs.delete)
                    .min(fd[x][y - 1] + costs.insert)
                    .min(fd[xi][yj] + treedist[node1][node2]);
            }
        }
    }
    if let Some(out) = table_out.take() {
        *out = fd;
    }
}

/// Backtracks the tree problem rooted at post-order nodes `(i, j)`,
/// collecting matched/relabeled node pairs.
fn backtrack(
    t1: &Flat,
    t2: &Flat,
    i: usize,
    j: usize,
    costs: &EditCosts,
    treedist: &[Vec<u32>],
    pairs: &mut Vec<(usize, usize)>,
) {
    // Recompute the fd table for this tree pair.
    let mut fd: Vec<Vec<u32>> = Vec::new();
    let mut treedist_scratch = treedist.to_vec();
    forest_dist(t1, t2, i, j, costs, &mut treedist_scratch, Some(&mut fd));

    let li = t1.lml[i];
    let lj = t2.lml[j];
    let mut x = i - li + 1;
    let mut y = j - lj + 1;
    while x > 0 || y > 0 {
        if x > 0 && fd[x][y] == fd[x - 1][y] + costs.delete {
            x -= 1; // node li+x deleted
            continue;
        }
        if y > 0 && fd[x][y] == fd[x][y - 1] + costs.insert {
            y -= 1; // node lj+y inserted
            continue;
        }
        let node1 = li + x - 1;
        let node2 = lj + y - 1;
        if t1.lml[node1] == li && t2.lml[node2] == lj {
            // Trees: the diagonal step pairs the two roots.
            pairs.push((node1, node2));
            x -= 1;
            y -= 1;
        } else {
            // Sub-tree substitution: recurse, then jump over both subtrees.
            backtrack(t1, t2, node1, node2, costs, treedist, pairs);
            x = t1.lml[node1] - li;
            y = t2.lml[node2] - lj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zhang_shasha::edit_distance;

    fn tree(spec: &str) -> Tree<String> {
        // Same tiny "a(b,c(d))" builder as the distance tests.
        fn parse(
            chars: &mut std::iter::Peekable<std::str::Chars>,
            tree: &mut Tree<String>,
            parent: Option<webre_tree::NodeId>,
        ) {
            loop {
                let mut label = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() {
                        label.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let node = match parent {
                    Some(p) => tree.append_child(p, label),
                    None => {
                        *tree.value_mut(tree.root()) = label;
                        tree.root()
                    }
                };
                match chars.peek() {
                    Some('(') => {
                        chars.next();
                        parse(chars, tree, Some(node));
                        match chars.peek() {
                            Some(',') => {
                                chars.next();
                            }
                            Some(')') => {
                                chars.next();
                                return;
                            }
                            _ => return,
                        }
                    }
                    Some(',') => {
                        chars.next();
                    }
                    Some(')') => {
                        chars.next();
                        return;
                    }
                    _ => return,
                }
            }
        }
        let mut t = Tree::new(String::new());
        parse(&mut spec.chars().peekable(), &mut t, None);
        t
    }

    fn check(a: &str, b: &str) -> (u32, Vec<EditOp>) {
        let (ta, tb) = (tree(a), tree(b));
        let costs = EditCosts::default();
        let (cost, ops) = edit_script(&ta, &tb, &costs);
        assert_eq!(
            cost,
            edit_distance(&ta, &tb, &costs),
            "script cost diverges from distance for {a} vs {b}"
        );
        // Every source node is deleted or matched exactly once; target
        // nodes inserted or matched exactly once.
        let n = post_order_labels(&ta).len();
        let m = post_order_labels(&tb).len();
        let mut from_seen = vec![0u32; n];
        let mut to_seen = vec![0u32; m];
        for op in &ops {
            match *op {
                EditOp::Match { from, to } | EditOp::Relabel { from, to } => {
                    from_seen[from] += 1;
                    to_seen[to] += 1;
                }
                EditOp::Delete { from } => from_seen[from] += 1,
                EditOp::Insert { to } => to_seen[to] += 1,
            }
        }
        assert!(from_seen.iter().all(|c| *c == 1), "{ops:?}");
        assert!(to_seen.iter().all(|c| *c == 1), "{ops:?}");
        (cost, ops)
    }

    #[test]
    fn identical_trees_all_match() {
        let (cost, ops) = check("a(b,c)", "a(b,c)");
        assert_eq!(cost, 0);
        assert!(ops.iter().all(|o| matches!(o, EditOp::Match { .. })));
        assert_eq!(ops.len(), 3);
    }

    #[test]
    fn single_relabel_script() {
        let (cost, ops) = check("a(b)", "a(x)");
        assert_eq!(cost, 1);
        assert_eq!(
            ops.iter()
                .filter(|o| matches!(o, EditOp::Relabel { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn delete_and_insert_scripts() {
        let (cost, ops) = check("a(b,c)", "a(b)");
        assert_eq!(cost, 1);
        assert!(ops.iter().any(|o| matches!(o, EditOp::Delete { .. })));

        let (cost, ops) = check("a", "a(b(c))");
        assert_eq!(cost, 2);
        assert_eq!(
            ops.iter()
                .filter(|o| matches!(o, EditOp::Insert { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn classic_example_script() {
        let (cost, _) = check("f(d(a,c(b)),e)", "f(c(d(a,b)),e)");
        assert_eq!(cost, 2);
    }

    #[test]
    fn larger_random_shapes_stay_consistent() {
        let specs = [
            "a(b(c,d),e(f,g),h)",
            "a(e(f,g),b(c,d))",
            "x(y(z))",
            "a(b,b,b,b)",
            "a(b(c(d(e))))",
        ];
        for x in &specs {
            for y in &specs {
                check(x, y);
            }
        }
    }

    #[test]
    fn post_order_labels_ordering() {
        let t = tree("a(b(c),d)");
        assert_eq!(post_order_labels(&t), ["c", "b", "d", "a"]);
    }
}
