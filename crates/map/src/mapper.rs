//! Schema-guided document mapping.
//!
//! Transforms an XML document so that it conforms to a majority DTD, using
//! the smallest edits the schema admits:
//!
//! 1. **Relocate/demote** (top-down): a child whose label is not admitted
//!    under its parent in the schema is either wrapped into an admissible
//!    intermediate schema element (when its label occurs deeper along one
//!    of the parent's schema children) or *demoted*: the element is
//!    dissolved, its `val` merges into the parent, and its children are
//!    re-examined in the parent's context;
//! 2. **Reorder**: children are sorted into the DTD content-model order;
//! 3. **Complete**: required elements (plain names and `+` groups in the
//!    content model) that are missing are inserted as empty elements.
//!
//! The outcome records the number of each edit plus the Zhang–Shasha
//! distance between the original and mapped documents, which is the cost
//! the paper's Document Mapping Component reports.

use crate::zhang_shasha::{edit_distance_docs, EditCosts};
use webre_schema::MajoritySchema;
use webre_tree::NodeId;
use webre_xml::validate::conforms;
use webre_xml::{ContentExpr, Dtd, XmlDocument, XmlNode};

/// Statistics and result of one mapping run.
#[derive(Clone, Debug)]
pub struct MapOutcome {
    /// The mapped document.
    pub document: XmlDocument,
    /// Elements demoted (dissolved into their parent).
    pub demoted: u32,
    /// Intermediate schema elements inserted above misplaced children.
    pub wrapped: u32,
    /// Missing required elements inserted.
    pub inserted: u32,
    /// Surplus same-label siblings merged into their first occurrence.
    pub merged: u32,
    /// Parents whose children were reordered.
    pub reordered: u32,
    /// Tree-edit distance between input and output structures.
    pub edit_distance: u32,
    /// Whether the result conforms to the DTD.
    pub conforms: bool,
}

/// Maps `doc` onto the majority schema/DTD.
pub fn map_to_dtd(doc: &XmlDocument, schema: &MajoritySchema, dtd: &Dtd) -> MapOutcome {
    let (out, stats, conforms) = transform(doc, schema, dtd);
    let edit_distance = edit_distance_docs(doc, &out, &EditCosts::default());
    MapOutcome {
        document: out,
        demoted: stats.demoted,
        wrapped: stats.wrapped,
        inserted: stats.inserted,
        merged: stats.merged,
        reordered: stats.reordered,
        edit_distance,
        conforms,
    }
}

/// The structural transform alone — everything [`map_to_dtd`] does except
/// the quadratic edit-distance computation. The tiered planner uses this
/// so its filter tiers can skip the dynamic program entirely.
pub(crate) fn transform(
    doc: &XmlDocument,
    schema: &MajoritySchema,
    dtd: &Dtd,
) -> (XmlDocument, Stats, bool) {
    let mut out = doc.clone();
    let mut stats = Stats::default();

    // The root must carry the schema root label.
    if out.root_name() != schema.root_label() {
        let root = out.root();
        if let XmlNode::Element { name, .. } = out.tree.value_mut(root) {
            *name = schema.root_label().to_owned();
        }
        stats.demoted += 1; // counted as a relabel-style edit
    }

    let out_root = out.root();
    restructure(&mut out, out_root, schema, schema.tree.root(), &mut stats);
    reorder_and_complete(&mut out, out_root, schema, schema.tree.root(), dtd, &mut stats);

    let conforms = conforms(&out, dtd);
    (out, stats, conforms)
}

#[derive(Default)]
pub(crate) struct Stats {
    pub(crate) demoted: u32,
    pub(crate) wrapped: u32,
    pub(crate) inserted: u32,
    pub(crate) merged: u32,
    pub(crate) reordered: u32,
}

/// Pass 1: make every element's label admissible under its parent's schema
/// node, demoting or wrapping as needed.
///
/// Fixing one child can splice new children into the list (demotion) or
/// replace a child (wrapping), so the pass restarts the scan after every
/// edit and only recurses once the child list is stable. Each edit strictly
/// reduces the number of inadmissible elements in the subtree (demotion
/// removes one; wrapping converts one into an admissible chain), so the
/// loop terminates.
fn restructure(
    doc: &mut XmlDocument,
    node: NodeId,
    schema: &MajoritySchema,
    snode: webre_tree::NodeId,
    stats: &mut Stats,
) {
    'rescan: loop {
        for c in doc.tree.children_vec(node) {
            let Some(label) = doc.tree.value(c).name().map(str::to_owned) else {
                continue; // text node
            };
            let admitted = schema
                .tree
                .children(snode)
                .any(|s| schema.tree.value(s).label == label);
            if admitted {
                continue;
            }
            if let Some(wrappers) = wrap_path(schema, snode, &label) {
                // The label lives deeper in the schema: nest it inside the
                // intermediate elements (node > w₁ > … > wₙ > c).
                let mut parent = doc.tree.orphan(XmlNode::element(wrappers[0].clone()));
                doc.tree.insert_before(c, parent);
                for w in &wrappers[1..] {
                    parent = doc.tree.append_child(parent, XmlNode::element(w.clone()));
                }
                doc.tree.detach(c);
                doc.tree.append(parent, c);
                stats.wrapped += wrappers.len() as u32;
            } else {
                // Demote: dissolve the element into its parent; its val is
                // kept and its children are re-examined here.
                if let Some(v) = doc.tree.value(c).val().map(str::to_owned) {
                    doc.tree.value_mut(node).push_val(&v);
                }
                doc.tree.replace_with_children(c);
                stats.demoted += 1;
            }
            continue 'rescan;
        }
        break;
    }
    for c in doc.tree.children_vec(node) {
        if let Some(label) = doc.tree.value(c).name() {
            if let Some(schild) = schema
                .tree
                .children(snode)
                .find(|s| schema.tree.value(*s).label == label)
            {
                restructure(doc, c, schema, schild, stats);
            }
        }
    }
}

/// If `label` occurs in the schema strictly below one of `snode`'s
/// children, returns the chain of intermediate labels to wrap with
/// (shortest chain, BFS).
fn wrap_path(
    schema: &MajoritySchema,
    snode: webre_tree::NodeId,
    label: &str,
) -> Option<Vec<String>> {
    // BFS over schema descendants of snode, tracking the path of labels.
    let mut queue: Vec<(webre_tree::NodeId, Vec<String>)> = schema
        .tree
        .children(snode)
        .map(|c| (c, vec![schema.tree.value(c).label.clone()]))
        .collect();
    let mut qi = 0;
    while qi < queue.len() {
        let (id, path) = queue[qi].clone();
        qi += 1;
        if schema.tree.value(id).label == label {
            // Drop the final label itself: the element already exists.
            let mut wrappers = path;
            wrappers.pop();
            return (!wrappers.is_empty()).then_some(wrappers);
        }
        for c in schema.tree.children(id) {
            let mut p = path.clone();
            p.push(schema.tree.value(c).label.clone());
            queue.push((c, p));
        }
    }
    None
}

/// Pass 2: order children per the DTD content model and insert missing
/// required elements, recursively.
fn reorder_and_complete(
    doc: &mut XmlDocument,
    node: NodeId,
    schema: &MajoritySchema,
    snode: webre_tree::NodeId,
    dtd: &Dtd,
    stats: &mut Stats,
) {
    let label = doc.label(node).to_owned();
    let Some(model) = dtd.content_of(&label) else {
        return;
    };
    let order: Vec<String> = model.names().iter().map(|s| (*s).to_owned()).collect();
    let required = required_names(model);

    // Merge surplus occurrences: if the model bounds a label to k
    // occurrences and the document has more, fold the extras into the
    // first occurrence (vals concatenate, children concatenate) so no
    // information is lost.
    for name in &order {
        let allowed = max_occurs(model, name);
        let Some(allowed) = allowed else { continue };
        let occurrences: Vec<NodeId> = doc
            .tree
            .children(node)
            .filter(|c| doc.label(*c) == name.as_str())
            .collect();
        if occurrences.len() as u32 <= allowed {
            continue;
        }
        let keep = occurrences[0];
        for &extra in &occurrences[allowed as usize..] {
            if let Some(v) = doc.tree.value(extra).val().map(str::to_owned) {
                doc.tree.value_mut(keep).push_val(&v);
            }
            doc.tree.reparent_children(extra, keep);
            doc.tree.detach(extra);
            stats.merged += 1;
        }
    }

    // Insert missing required children (empty elements).
    for name in &required {
        let present = doc
            .tree
            .children(node)
            .any(|c| doc.label(c) == name.as_str());
        if !present {
            doc.tree.append_child(node, XmlNode::element(name.clone()));
            stats.inserted += 1;
        }
    }

    // Reorder: stable-sort children into content-model order (text first,
    // matching the leading #PCDATA the derived DTDs use).
    let children = doc.tree.children_vec(node);
    let rank = |c: NodeId, doc: &XmlDocument| -> usize {
        match doc.tree.value(c) {
            XmlNode::Text(_) => 0,
            XmlNode::Element { name, .. } => order
                .iter()
                .position(|o| o == name)
                .map(|p| p + 1)
                .unwrap_or(order.len() + 1),
        }
    };
    let mut sorted = children.clone();
    sorted.sort_by_key(|c| rank(*c, doc));
    if sorted != children {
        stats.reordered += 1;
        for c in &sorted {
            doc.tree.detach(*c);
        }
        for c in &sorted {
            doc.tree.append(node, *c);
        }
    }

    for c in doc.tree.children_vec(node) {
        if let Some(l) = doc.tree.value(c).name().map(str::to_owned) {
            if let Some(schild) = schema
                .tree
                .children(snode)
                .find(|s| schema.tree.value(*s).label == l)
            {
                reorder_and_complete(doc, c, schema, schild, dtd, stats);
            }
        }
    }
}

/// Maximum admitted occurrences of `name` in the model, or `None` when
/// unbounded (`name` under `*`/`+`). Counts plain and optional mentions.
fn max_occurs(model: &ContentExpr, name: &str) -> Option<u32> {
    fn walk(expr: &ContentExpr, name: &str, bounded: &mut u32, unbounded: &mut bool) {
        match expr {
            ContentExpr::Name(n) => {
                if n == name {
                    *bounded += 1;
                }
            }
            ContentExpr::Seq(items) | ContentExpr::Choice(items) => {
                for i in items {
                    walk(i, name, bounded, unbounded);
                }
            }
            ContentExpr::Opt(inner) => walk(inner, name, bounded, unbounded),
            ContentExpr::Star(inner) | ContentExpr::Plus(inner) => {
                if inner.names().contains(&name) {
                    *unbounded = true;
                } else {
                    walk(inner, name, bounded, unbounded);
                }
            }
            ContentExpr::Empty | ContentExpr::PcData => {}
        }
    }
    let mut bounded = 0;
    let mut unbounded = false;
    walk(model, name, &mut bounded, &mut unbounded);
    if unbounded {
        None
    } else {
        Some(bounded.max(1))
    }
}

/// Names required by a content model: plain `Name` and `Plus` members of
/// the top-level sequence (choices/options/stars are not required).
fn required_names(model: &ContentExpr) -> Vec<String> {
    fn collect(expr: &ContentExpr, out: &mut Vec<String>) {
        match expr {
            ContentExpr::Name(n) => out.push(n.clone()),
            ContentExpr::Plus(inner) => collect(inner, out),
            ContentExpr::Seq(items) => {
                for i in items {
                    collect(i, out);
                }
            }
            ContentExpr::Empty
            | ContentExpr::PcData
            | ContentExpr::Choice(_)
            | ContentExpr::Opt(_)
            | ContentExpr::Star(_) => {}
        }
    }
    let mut out = Vec::new();
    collect(model, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_schema::{derive_dtd, extract_paths, DtdConfig, FrequentPathMiner};
    use webre_xml::{parse_xml, to_xml};

    /// Mines a schema + DTD from a small conforming corpus.
    fn schema_and_dtd(xmls: &[&str]) -> (MajoritySchema, Dtd) {
        let corpus: Vec<_> = xmls
            .iter()
            .map(|x| extract_paths(&parse_xml(x).unwrap()))
            .collect();
        let schema = FrequentPathMiner {
            sup_threshold: 0.5,
            ratio_threshold: 0.0,
            ..Default::default()
        }
        .mine(&corpus)
        .unwrap()
        .schema;
        let dtd = derive_dtd(&schema, &corpus, &DtdConfig::default());
        (schema, dtd)
    }

    fn standard() -> (MajoritySchema, Dtd) {
        schema_and_dtd(&[
            "<resume><contact/><education><institution/><degree/></education></resume>",
            "<resume><contact/><education><institution/><degree/></education></resume>",
        ])
    }

    #[test]
    fn conforming_document_is_untouched() {
        let (schema, dtd) = standard();
        let doc = parse_xml(
            "<resume><contact/><education><institution/><degree/></education></resume>",
        )
        .unwrap();
        let outcome = map_to_dtd(&doc, &schema, &dtd);
        assert!(outcome.conforms);
        assert_eq!(outcome.edit_distance, 0);
        assert_eq!(to_xml(&outcome.document), to_xml(&doc));
    }

    #[test]
    fn misplaced_child_is_wrapped_into_schema_position() {
        let (schema, dtd) = standard();
        // degree directly under resume: must move under education.
        let doc = parse_xml("<resume><contact/><degree/></resume>").unwrap();
        let outcome = map_to_dtd(&doc, &schema, &dtd);
        assert!(outcome.conforms, "{}", to_xml(&outcome.document));
        assert!(outcome.wrapped >= 1);
        let xml = to_xml(&outcome.document);
        assert!(xml.contains("<education><institution/><degree/></education>")
            || xml.contains("<education><degree/><institution/></education>")
            || xml.contains("<education>"), "{xml}");
    }

    #[test]
    fn unknown_element_is_demoted_and_val_kept() {
        let (schema, dtd) = standard();
        let doc = parse_xml(
            r#"<resume><contact/><bogus val="keep me"><education><institution/><degree/></education></bogus></resume>"#,
        )
        .unwrap();
        let outcome = map_to_dtd(&doc, &schema, &dtd);
        assert!(outcome.conforms, "{}", to_xml(&outcome.document));
        assert!(outcome.demoted >= 1);
        assert_eq!(
            outcome.document.tree.value(outcome.document.root()).val(),
            Some("keep me")
        );
    }

    #[test]
    fn missing_required_elements_are_inserted() {
        let (schema, dtd) = standard();
        let doc = parse_xml("<resume><contact/></resume>").unwrap();
        let outcome = map_to_dtd(&doc, &schema, &dtd);
        assert!(outcome.conforms, "{}", to_xml(&outcome.document));
        assert!(outcome.inserted >= 1);
        assert!(to_xml(&outcome.document).contains("<education>"));
    }

    #[test]
    fn out_of_order_children_are_reordered() {
        let (schema, dtd) = standard();
        let doc = parse_xml(
            "<resume><education><degree/><institution/></education><contact/></resume>",
        )
        .unwrap();
        let outcome = map_to_dtd(&doc, &schema, &dtd);
        assert!(outcome.conforms, "{}", to_xml(&outcome.document));
        assert!(outcome.reordered >= 1);
        let xml = to_xml(&outcome.document);
        let contact = xml.find("<contact").unwrap();
        let education = xml.find("<education").unwrap();
        assert!(contact < education, "{xml}");
    }

    #[test]
    fn wrong_root_is_relabeled() {
        let (schema, dtd) = standard();
        let doc = parse_xml("<cv><contact/><education><institution/><degree/></education></cv>")
            .unwrap();
        let outcome = map_to_dtd(&doc, &schema, &dtd);
        assert!(outcome.conforms);
        assert_eq!(outcome.document.root_name(), "resume");
    }

    #[test]
    fn edit_distance_reflects_work_done() {
        let (schema, dtd) = standard();
        let doc = parse_xml("<resume><degree/><contact/></resume>").unwrap();
        let outcome = map_to_dtd(&doc, &schema, &dtd);
        assert!(outcome.conforms);
        assert!(outcome.edit_distance > 0);
    }

    #[test]
    fn repetitive_elements_survive_mapping() {
        let (schema, dtd) = schema_and_dtd(&[
            "<resume><education/><education/><education/></resume>",
            "<resume><education/><education/><education/></resume>",
        ]);
        let doc =
            parse_xml("<resume><education/><education/><education/><education/></resume>")
                .unwrap();
        let outcome = map_to_dtd(&doc, &schema, &dtd);
        assert!(outcome.conforms, "{}", dtd.to_dtd_string());
        assert_eq!(outcome.edit_distance, 0);
    }
}
