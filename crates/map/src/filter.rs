//! Admissible lower bounds on the Zhang–Shasha edit distance.
//!
//! The tiered mapping planner ([`crate::planner`]) wants to skip the
//! quadratic edit-distance dynamic program whenever a cheap bound already
//! decides the outcome: a bound of zero on structurally identical trees
//! (the conformant fast path) or a bound above the reject budget (the
//! hopeless fast path). For that the bound must be **admissible** — it may
//! never exceed the true distance — or the planner would reject documents
//! the exact tier could still map within budget.
//!
//! pq-grams (Augsten et al.) were considered and rejected: the pq-gram
//! distance lower-bounds the *fanout-weighted* tree-edit distance, not the
//! plain Zhang–Shasha distance this crate reports, so using it here would
//! be unsound. Instead the filter combines three elementary invariants of
//! a single edit operation, each yielding a linear-time bound:
//!
//! 1. **Label histogram**: an optimal script matches `t` node pairs, of
//!    which at most `common = Σ_label min(countA, countB)` can be
//!    zero-cost matches; the remaining `t − common` pairs pay a relabel
//!    and the unmatched `n − t` / `m − t` nodes pay deletes / inserts.
//!    Minimizing over `t` gives a bound that is exact on bag-disjoint
//!    trees.
//! 2. **Leaf count**: only a leaf delete can lower the leaf count and
//!    only a leaf insert can raise it, each by at most one — so a leaf
//!    deficit of `k` forces `k` deletes (or inserts, directionally).
//! 3. **Depth**: one edit changes the tree height by at most one, and
//!    only deletes shrink it / inserts grow it.
//!
//! The returned bound is the maximum of the three (a maximum of
//! admissible bounds is admissible). The property tests at the bottom
//! hold `lower_bound ≤ edit_distance` over randomized tree pairs and
//! `lower_bound == 0` on identical trees.

use crate::zhang_shasha::{label_tree, EditCosts};
use std::collections::BTreeMap;
use webre_tree::Tree;
use webre_xml::XmlDocument;

/// Linear-time structural summary of a label tree, sufficient to evaluate
/// every bound in this module without touching the tree again.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeProfile {
    /// Total node count.
    pub size: usize,
    /// Label multiset (ordered so rendering/debugging is deterministic).
    pub labels: BTreeMap<String, usize>,
    /// Leaf count.
    pub leaves: usize,
    /// Height in nodes (a single-node tree has depth 1).
    pub depth: usize,
}

impl TreeProfile {
    /// Profiles a label tree in one traversal.
    pub fn of_tree(tree: &Tree<String>) -> TreeProfile {
        let mut size = 0usize;
        let mut leaves = 0usize;
        let mut depth = 0usize;
        let mut labels: BTreeMap<String, usize> = BTreeMap::new();
        // Depth-first with explicit depth tracking.
        let mut stack = vec![(tree.root(), 1usize)];
        while let Some((id, d)) = stack.pop() {
            size += 1;
            depth = depth.max(d);
            *labels.entry(tree.value(id).clone()).or_insert(0) += 1;
            let mut child_count = 0usize;
            for c in tree.children(id) {
                child_count += 1;
                stack.push((c, d + 1));
            }
            if child_count == 0 {
                leaves += 1;
            }
        }
        TreeProfile {
            size,
            labels,
            leaves,
            depth,
        }
    }

    /// Profiles an XML document's label tree (element names, `#PCDATA`
    /// text leaves — the same view [`crate::zhang_shasha::edit_distance_docs`]
    /// compares).
    pub fn of_doc(doc: &XmlDocument) -> TreeProfile {
        TreeProfile::of_tree(&label_tree(doc))
    }

    /// Shared label mass: `Σ_label min(countA, countB)`, an upper bound on
    /// the number of zero-cost matches any mapping can contain.
    fn common_labels(&self, other: &TreeProfile) -> usize {
        self.labels
            .iter()
            .map(|(label, &count)| count.min(other.labels.get(label).copied().unwrap_or(0)))
            .sum()
    }
}

/// An admissible lower bound on
/// [`crate::zhang_shasha::edit_distance`]`(a, b, costs)`: never exceeds
/// the true distance, and equals zero when the trees are identical.
pub fn lower_bound(a: &TreeProfile, b: &TreeProfile, costs: &EditCosts) -> u32 {
    let histogram = histogram_bound(a, b, costs);
    let leaves = directional_bound(a.leaves, b.leaves, costs);
    let depth = directional_bound(a.depth, b.depth, costs);
    histogram.max(leaves).max(depth)
}

/// Convenience: the bound for two documents, profiling both.
pub fn lower_bound_docs(a: &XmlDocument, b: &XmlDocument, costs: &EditCosts) -> u32 {
    lower_bound(&TreeProfile::of_doc(a), &TreeProfile::of_doc(b), costs)
}

/// The label-histogram bound: minimize
/// `(n−t)·delete + (m−t)·insert + max(0, t−common)·relabel` over the
/// matched-pair count `t ∈ [0, min(n,m)]`. The expression is piecewise
/// linear in `t` with breakpoint at `common`, so the minimum sits at
/// `t = min(common, min(n,m))` or `t = min(n,m)`.
fn histogram_bound(a: &TreeProfile, b: &TreeProfile, costs: &EditCosts) -> u32 {
    let n = a.size as u64;
    let m = b.size as u64;
    let common = a.common_labels(b) as u64;
    let t_max = n.min(m);
    let candidates = [common.min(t_max), t_max];
    candidates
        .iter()
        .map(|&t| {
            (n - t) * u64::from(costs.delete)
                + (m - t) * u64::from(costs.insert)
                + t.saturating_sub(common) * u64::from(costs.relabel)
        })
        .min()
        .unwrap_or(0)
        .min(u64::from(u32::MAX)) as u32
}

/// Directional structural bound: a deficit of `k` in a monotone quantity
/// (leaves, depth) that only deletes can lower and only inserts can raise
/// forces `k` operations of that kind.
fn directional_bound(a: usize, b: usize, costs: &EditCosts) -> u32 {
    let (deficit, per_op) = if a >= b {
        (a - b, costs.delete)
    } else {
        (b - a, costs.insert)
    };
    ((deficit as u64 * u64::from(per_op)).min(u64::from(u32::MAX))) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zhang_shasha::edit_distance;
    use webre_substrate::rand::rngs::StdRng;
    use webre_substrate::rand::{Rng, SeedableRng};

    /// A random label tree with up to `max_nodes` nodes drawn from a small
    /// alphabet (small so label collisions — the hard case for the
    /// histogram bound — are frequent).
    fn random_tree(rng: &mut StdRng, max_nodes: usize) -> Tree<String> {
        let labels = ["a", "b", "c", "d", "#PCDATA"];
        let n = rng.gen_range(1..=max_nodes.max(1));
        let mut tree = Tree::new(labels[rng.gen_range(0..labels.len())].to_owned());
        let mut nodes = vec![tree.root()];
        for _ in 1..n {
            let parent = nodes[rng.gen_range(0..nodes.len())];
            let label = labels[rng.gen_range(0..labels.len())].to_owned();
            nodes.push(tree.append_child(parent, label));
        }
        tree
    }

    fn random_costs(rng: &mut StdRng) -> EditCosts {
        EditCosts {
            insert: rng.gen_range(1..=5),
            delete: rng.gen_range(1..=5),
            relabel: rng.gen_range(1..=5),
        }
    }

    #[test]
    fn bound_is_admissible_on_randomized_pairs() {
        let mut rng = StdRng::seed_from_u64(0x1002);
        for case in 0..400 {
            let a = random_tree(&mut rng, 14);
            let b = random_tree(&mut rng, 14);
            let costs = if case % 3 == 0 {
                random_costs(&mut rng)
            } else {
                EditCosts::default()
            };
            let exact = edit_distance(&a, &b, &costs);
            let bound = lower_bound(&TreeProfile::of_tree(&a), &TreeProfile::of_tree(&b), &costs);
            assert!(
                bound <= exact,
                "inadmissible bound {bound} > exact {exact} (case {case}, costs {costs:?})"
            );
        }
    }

    #[test]
    fn bound_is_zero_on_identical_trees() {
        let mut rng = StdRng::seed_from_u64(0x1003);
        for _ in 0..100 {
            let a = random_tree(&mut rng, 20);
            let p = TreeProfile::of_tree(&a);
            assert_eq!(lower_bound(&p, &p, &EditCosts::default()), 0);
            assert_eq!(lower_bound(&p, &p, &random_costs(&mut rng)), 0);
        }
    }

    #[test]
    fn bound_is_exact_on_disjoint_label_bags() {
        // a(a,a) vs b(b): no shared labels, so the histogram bound equals
        // the true distance (relabel min(n,m), then delete the surplus).
        let mut a = Tree::new("a".to_owned());
        let r = a.root();
        a.append_child(r, "a".to_owned());
        a.append_child(r, "a".to_owned());
        let mut b = Tree::new("b".to_owned());
        b.append_child(b.root(), "b".to_owned());
        let costs = EditCosts::default();
        let exact = edit_distance(&a, &b, &costs);
        let bound = lower_bound(&TreeProfile::of_tree(&a), &TreeProfile::of_tree(&b), &costs);
        assert_eq!(bound, exact);
        assert_eq!(bound, 3); // 2 relabels + 1 delete
    }

    #[test]
    fn size_deficit_respects_directional_costs() {
        // a → a(b,c): two forced inserts at insert cost.
        let a = Tree::new("a".to_owned());
        let mut b = Tree::new("a".to_owned());
        b.append_child(b.root(), "b".to_owned());
        b.append_child(b.root(), "c".to_owned());
        let costs = EditCosts {
            insert: 7,
            delete: 1,
            relabel: 1,
        };
        let bound = lower_bound(&TreeProfile::of_tree(&a), &TreeProfile::of_tree(&b), &costs);
        assert_eq!(bound, 14);
        assert_eq!(edit_distance(&a, &b, &costs), 14);
    }

    #[test]
    fn depth_bound_fires_on_chains() {
        // Flat a(b,b,b) vs chain a(b(b(b))): histograms agree, but the
        // depth differs by 2 — the structural bounds must see it.
        let mut flat = Tree::new("a".to_owned());
        let r = flat.root();
        for _ in 0..3 {
            flat.append_child(r, "b".to_owned());
        }
        let mut chain = Tree::new("a".to_owned());
        let mut at = chain.root();
        for _ in 0..3 {
            at = chain.append_child(at, "b".to_owned());
        }
        let costs = EditCosts::default();
        let bound = lower_bound(
            &TreeProfile::of_tree(&flat),
            &TreeProfile::of_tree(&chain),
            &costs,
        );
        assert!(bound >= 2, "depth bound missed: {bound}");
        assert!(bound <= edit_distance(&flat, &chain, &costs));
    }

    #[test]
    fn profile_counts_are_correct() {
        let doc = webre_xml::parse_xml("<r><x>text</x><y/></r>").unwrap();
        let p = TreeProfile::of_doc(&doc);
        assert_eq!(p.size, 4); // r, x, #PCDATA, y
        assert_eq!(p.leaves, 2); // #PCDATA, y
        assert_eq!(p.depth, 3); // r > x > #PCDATA
        assert_eq!(p.labels.get("#PCDATA"), Some(&1));
        assert_eq!(p.labels.get("r"), Some(&1));
    }
}
