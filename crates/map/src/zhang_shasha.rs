//! Zhang–Shasha ordered tree-edit distance.
//!
//! The classical dynamic program over post-order numbering, leftmost-leaf
//! indices and keyroots (Zhang & Shasha, SIAM J. Comput. 1989). Costs are
//! unit by default (insert 1, delete 1, relabel 1) and configurable via
//! [`EditCosts`]. Complexity is
//! `O(|T₁|·|T₂|·min(depth₁,leaves₁)·min(depth₂,leaves₂))` — comfortably
//! fast for resume-sized documents.

use webre_tree::Tree;
use webre_xml::{XmlDocument, XmlNode};

/// Operation costs for the edit distance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EditCosts {
    pub insert: u32,
    pub delete: u32,
    pub relabel: u32,
}

impl Default for EditCosts {
    fn default() -> Self {
        EditCosts {
            insert: 1,
            delete: 1,
            relabel: 1,
        }
    }
}

/// A tree flattened to the arrays the algorithm needs.
struct PostOrder {
    labels: Vec<String>,
    /// `lml[i]`: post-order index of the leftmost leaf of the subtree at
    /// post-order node `i`.
    lml: Vec<usize>,
    /// Keyroots: nodes with no left sibling mapping to the same leftmost
    /// leaf (i.e. the largest node for each distinct `lml`).
    keyroots: Vec<usize>,
}

impl PostOrder {
    fn from_tree(tree: &Tree<String>) -> Self {
        let mut labels = Vec::new();
        let mut lml = Vec::new();
        // Map NodeId → post-order index by walking post-order.
        let ids: Vec<_> = tree.post_order(tree.root()).collect();
        let index_of = |id: webre_tree::NodeId| ids.iter().position(|x| *x == id).expect("in walk");
        for &id in &ids {
            labels.push(tree.value(id).clone());
            // Leftmost leaf: descend first children.
            let mut leaf = id;
            while let Some(first) = tree.first_child(leaf) {
                leaf = first;
            }
            lml.push(index_of(leaf));
        }
        let n = labels.len();
        let mut keyroots = Vec::new();
        for i in 0..n {
            let is_keyroot = !(i + 1..n).any(|j| lml[j] == lml[i]);
            if is_keyroot {
                keyroots.push(i);
            }
        }
        PostOrder {
            labels,
            lml,
            keyroots,
        }
    }
}

/// Computes the edit distance between two label trees.
pub fn edit_distance(a: &Tree<String>, b: &Tree<String>, costs: &EditCosts) -> u32 {
    let t1 = PostOrder::from_tree(a);
    let t2 = PostOrder::from_tree(b);
    let n = t1.labels.len();
    let m = t2.labels.len();
    let mut treedist = vec![vec![0u32; m]; n];

    for &i in &t1.keyroots {
        for &j in &t2.keyroots {
            forest_dist(&t1, &t2, i, j, costs, &mut treedist);
        }
    }
    treedist[n - 1][m - 1]
}

/// The inner forest-distance DP for keyroot pair `(i, j)`.
fn forest_dist(
    t1: &PostOrder,
    t2: &PostOrder,
    i: usize,
    j: usize,
    costs: &EditCosts,
    treedist: &mut [Vec<u32>],
) {
    let li = t1.lml[i];
    let lj = t2.lml[j];
    let rows = i - li + 2;
    let cols = j - lj + 2;
    // fd[x][y]: distance between forests t1[li..li+x-1] and t2[lj..lj+y-1].
    let mut fd = vec![vec![0u32; cols]; rows];
    for x in 1..rows {
        fd[x][0] = fd[x - 1][0] + costs.delete;
    }
    for y in 1..cols {
        fd[0][y] = fd[0][y - 1] + costs.insert;
    }
    for x in 1..rows {
        for y in 1..cols {
            let node1 = li + x - 1;
            let node2 = lj + y - 1;
            if t1.lml[node1] == li && t2.lml[node2] == lj {
                // Both forests are whole trees: record tree distance.
                let relabel = if t1.labels[node1] == t2.labels[node2] {
                    0
                } else {
                    costs.relabel
                };
                fd[x][y] = (fd[x - 1][y] + costs.delete)
                    .min(fd[x][y - 1] + costs.insert)
                    .min(fd[x - 1][y - 1] + relabel);
                treedist[node1][node2] = fd[x][y];
            } else {
                let xi = t1.lml[node1].saturating_sub(li);
                let yj = t2.lml[node2].saturating_sub(lj);
                fd[x][y] = (fd[x - 1][y] + costs.delete)
                    .min(fd[x][y - 1] + costs.insert)
                    .min(fd[xi][yj] + treedist[node1][node2]);
            }
        }
    }
}

/// Converts an XML document to a label tree (element names; text nodes
/// become `#PCDATA` leaves).
pub fn label_tree(doc: &XmlDocument) -> Tree<String> {
    doc.tree.map(|n| match n {
        XmlNode::Element { name, .. } => name.clone(),
        XmlNode::Text(_) => "#PCDATA".to_owned(),
    })
}

/// Edit distance between two XML documents' structures.
pub fn edit_distance_docs(a: &XmlDocument, b: &XmlDocument, costs: &EditCosts) -> u32 {
    edit_distance(&label_tree(a), &label_tree(b), costs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(spec: &str) -> Tree<String> {
        // Tiny builder: "a(b,c(d))" syntax.
        fn parse(chars: &mut std::iter::Peekable<std::str::Chars>, tree: &mut Tree<String>, parent: Option<webre_tree::NodeId>) {
            loop {
                let mut label = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '#' {
                        label.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let node = match parent {
                    Some(p) => tree.append_child(p, label),
                    None => {
                        *tree.value_mut(tree.root()) = label;
                        tree.root()
                    }
                };
                match chars.peek() {
                    Some('(') => {
                        chars.next();
                        parse(chars, tree, Some(node));
                        match chars.peek() {
                            Some(',') => {
                                chars.next();
                                continue;
                            }
                            Some(')') => {
                                chars.next();
                                return;
                            }
                            _ => return,
                        }
                    }
                    Some(',') => {
                        chars.next();
                        continue;
                    }
                    Some(')') => {
                        chars.next();
                        return;
                    }
                    _ => return,
                }
            }
        }
        let mut t = Tree::new(String::new());
        parse(&mut spec.chars().peekable(), &mut t, None);
        t
    }

    fn d(a: &str, b: &str) -> u32 {
        edit_distance(&tree(a), &tree(b), &EditCosts::default())
    }

    #[test]
    fn identical_trees_are_distance_zero() {
        assert_eq!(d("a(b,c)", "a(b,c)"), 0);
        assert_eq!(d("a", "a"), 0);
    }

    #[test]
    fn single_relabel() {
        assert_eq!(d("a", "b"), 1);
        assert_eq!(d("a(b,c)", "a(b,x)"), 1);
        assert_eq!(d("a(b,c)", "x(b,c)"), 1);
    }

    #[test]
    fn single_insert_or_delete() {
        assert_eq!(d("a(b)", "a(b,c)"), 1);
        assert_eq!(d("a(b,c)", "a(b)"), 1);
        assert_eq!(d("a", "a(b)"), 1);
    }

    #[test]
    fn insert_intermediate_node() {
        // a(b) → a(x(b)): insert x between a and b.
        assert_eq!(d("a(b)", "a(x(b))"), 1);
    }

    #[test]
    fn delete_collapses_subtree_children_up() {
        // a(x(b,c)) → a(b,c): delete x.
        assert_eq!(d("a(x(b,c))", "a(b,c)"), 1);
    }

    #[test]
    fn symmetric() {
        let pairs = [("a(b,c)", "a(c,b)"), ("a(b(d),c)", "a(b,c(d))"), ("a", "b(c)")];
        for (x, y) in pairs {
            assert_eq!(d(x, y), d(y, x), "asymmetry for {x} vs {y}");
        }
    }

    #[test]
    fn sibling_swap_costs_two_unit_ops() {
        // b,c → c,b: relabel both (or delete+insert) = 2.
        assert_eq!(d("a(b,c)", "a(c,b)"), 2);
    }

    #[test]
    fn known_zhang_shasha_example() {
        // The classical example: f(d(a,c(b)),e) vs f(c(d(a,b)),e) = 2.
        assert_eq!(d("f(d(a,c(b)),e)", "f(c(d(a,b)),e)"), 2);
    }

    #[test]
    fn custom_costs_respected() {
        let costs = EditCosts {
            insert: 10,
            delete: 1,
            relabel: 100,
        };
        // a(b) → a: cheaper to delete b (1) than anything else.
        assert_eq!(edit_distance(&tree("a(b)"), &tree("a"), &costs), 1);
        // a → a(b): must insert (10).
        assert_eq!(edit_distance(&tree("a"), &tree("a(b)"), &costs), 10);
        // relabel vs delete+insert: a→b costs min(100, 1+10) = 11.
        assert_eq!(edit_distance(&tree("a"), &tree("b"), &costs), 11);
    }

    #[test]
    fn distance_bounded_by_sizes() {
        let a = tree("a(b(c,d),e(f))");
        let b = tree("x(y)");
        let dist = edit_distance(&a, &b, &EditCosts::default());
        assert!(dist <= 6 + 2);
        assert!(dist >= 4); // at least delete the size difference
    }

    #[test]
    fn docs_distance_uses_labels() {
        use webre_xml::parse_xml;
        let a = parse_xml("<r><x/><y/></r>").unwrap();
        let b = parse_xml("<r><x/></r>").unwrap();
        assert_eq!(edit_distance_docs(&a, &b, &EditCosts::default()), 1);
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let specs = ["a(b,c)", "a(b(d),c)", "x(b)", "a", "a(c(b))"];
        for x in &specs {
            for y in &specs {
                for z in &specs {
                    assert!(
                        d(x, z) <= d(x, y) + d(y, z),
                        "triangle violated: {x} {y} {z}"
                    );
                }
            }
        }
    }
}
