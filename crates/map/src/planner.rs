//! The tiered mapping planner: filter → exact per document.
//!
//! [`MapPlanner::plan`] always runs the cheap schema-guided transform
//! ([`crate::mapper`]'s restructure/reorder/complete passes — linear-ish in
//! the document), then decides how much of the *quadratic* Zhang–Shasha
//! machinery the pair actually needs:
//!
//! * **Conformant** — the transform changed nothing structurally (the
//!   input and output label trees are equal). On identical trees the
//!   optimal mapping is forced to the identity, so the planner synthesizes
//!   the all-`Match` script at cost 0 without touching the DP.
//! * **Rejected** — the admissible lower bound from [`crate::filter`]
//!   already exceeds the reject budget. Admissibility makes this sound:
//!   `bound > budget` implies `cost > budget`, so the exact tier could
//!   never have accepted the document either. No cost or script is
//!   reported (the DP never ran).
//! * **Exact** — everything else: the full edit-script dynamic program.
//!
//! Turning the filter off (`filter: false`) only disables the two
//! short-circuits, never the semantics: the planner then runs the DP and
//! applies the *same* budget test to the exact cost, so filter-on and
//! filter-off produce byte-identical [`render_json`] output for every
//! document — an identity the `map-vs-batch` oracle and the planner tests
//! hold. Edit scripts are canonically ordered (match/relabel by source
//! index, deletes by source index, inserts by target index) for the same
//! reason.

use crate::edit_script::{edit_script, EditOp};
use crate::filter::{lower_bound, TreeProfile};
use crate::mapper::transform;
use crate::zhang_shasha::{label_tree, EditCosts};
use webre_obs::{counter, stage, Ctx};
use webre_schema::MajoritySchema;
use webre_substrate::json::Json;
use webre_xml::{to_xml, Dtd, XmlDocument};

/// Which tier resolved a planned mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapTier {
    /// Structurally unchanged by the transform; identity script, cost 0.
    Conformant,
    /// Cost provably (filter on) or actually (filter off) above budget.
    Rejected,
    /// Full Zhang–Shasha edit script.
    Exact,
}

impl MapTier {
    /// Stable wire label (used in JSON and metrics).
    pub fn label(self) -> &'static str {
        match self {
            MapTier::Conformant => "conformant",
            MapTier::Rejected => "rejected",
            MapTier::Exact => "exact",
        }
    }
}

/// The outcome of a planned mapping.
#[derive(Clone, Debug)]
pub struct PlannedMap {
    /// The mapped document (always produced; the transform is cheap).
    pub document: XmlDocument,
    /// Elements demoted (dissolved into their parent).
    pub demoted: u32,
    /// Intermediate schema elements inserted above misplaced children.
    pub wrapped: u32,
    /// Missing required elements inserted.
    pub inserted: u32,
    /// Surplus same-label siblings merged into their first occurrence.
    pub merged: u32,
    /// Parents whose children were reordered.
    pub reordered: u32,
    /// Whether the mapped document conforms to the DTD.
    pub conforms: bool,
    /// The tier that resolved this document.
    pub tier: MapTier,
    /// The admissible lower bound on the edit cost (always computed).
    pub lower_bound: u32,
    /// Exact edit cost; `None` when the document was rejected.
    pub cost: Option<u32>,
    /// Canonically ordered edit script; `None` when rejected.
    pub script: Option<Vec<EditOp>>,
}

/// Plans mappings: filter tier first, exact tier only when needed.
#[derive(Clone, Copy, Debug)]
pub struct MapPlanner {
    /// Edit-operation costs for bounds, distances and scripts.
    pub costs: EditCosts,
    /// Reject budget: documents whose edit cost provably exceeds this are
    /// rejected without running the exact tier. `None` accepts everything.
    pub budget: Option<u32>,
    /// Whether the lower-bound short-circuits are active. Off, every
    /// document runs the exact tier (the budget still applies to the
    /// exact cost, so results are identical — just slower).
    pub filter: bool,
}

impl Default for MapPlanner {
    fn default() -> Self {
        MapPlanner {
            costs: EditCosts::default(),
            budget: None,
            filter: true,
        }
    }
}

impl MapPlanner {
    /// Plans the mapping of `doc` onto `schema`/`dtd`.
    pub fn plan(&self, doc: &XmlDocument, schema: &MajoritySchema, dtd: &Dtd) -> PlannedMap {
        self.plan_obs(doc, schema, dtd, Ctx::disabled())
    }

    /// [`MapPlanner::plan`] with observability: the filter tier runs under
    /// a [`stage::MAP_FILTER`] span, the exact tier under
    /// [`stage::MAP_EXACT`], and exactly one of the `map_*` tier counters
    /// is incremented.
    pub fn plan_obs(
        &self,
        doc: &XmlDocument,
        schema: &MajoritySchema,
        dtd: &Dtd,
        ctx: Ctx<'_>,
    ) -> PlannedMap {
        let (mapped, stats, conforms) = transform(doc, schema, dtd);

        let (source, target, bound, identical) = {
            let _scope = ctx.span(stage::MAP_FILTER);
            let source = label_tree(doc);
            let target = label_tree(&mapped);
            let bound = lower_bound(
                &TreeProfile::of_tree(&source),
                &TreeProfile::of_tree(&target),
                &self.costs,
            );
            let identical = source.subtree_eq(source.root(), &target, target.root());
            (source, target, bound, identical)
        };

        let mut planned = PlannedMap {
            document: mapped,
            demoted: stats.demoted,
            wrapped: stats.wrapped,
            inserted: stats.inserted,
            merged: stats.merged,
            reordered: stats.reordered,
            conforms,
            tier: MapTier::Exact,
            lower_bound: bound,
            cost: None,
            script: None,
        };

        if self.filter {
            if identical {
                // Identical label trees force the identity mapping: every
                // node matches itself at cost 0, which is exactly what the
                // DP would return (canonically ordered).
                planned.tier = MapTier::Conformant;
                planned.cost = Some(0);
                let nodes = planned
                    .document
                    .tree
                    .subtree_size(planned.document.root());
                planned.script =
                    Some((0..nodes).map(|i| EditOp::Match { from: i, to: i }).collect());
                ctx.count(counter::MAP_CONFORMANT, 1);
                return planned;
            }
            if let Some(budget) = self.budget {
                if bound > budget {
                    planned.tier = MapTier::Rejected;
                    ctx.count(counter::MAP_REJECTED, 1);
                    return planned;
                }
            }
        }

        let (cost, mut script) = {
            let _scope = ctx.span(stage::MAP_EXACT);
            edit_script(&source, &target, &self.costs)
        };
        if self.budget.is_some_and(|budget| cost > budget) {
            // Same rejection the filter would have made with a tighter
            // bound: report the bound only, never the cost/script, so the
            // response is byte-identical whichever path rejected.
            planned.tier = MapTier::Rejected;
            ctx.count(counter::MAP_REJECTED, 1);
            return planned;
        }
        canonical_sort(&mut script);
        planned.tier = if cost == 0 {
            // The DP confirmed structural identity (filter off, or trees
            // equal but filter disabled) — report it as conformant so the
            // tier label never depends on the filter switch.
            ctx.count(counter::MAP_CONFORMANT, 1);
            MapTier::Conformant
        } else {
            ctx.count(counter::MAP_EXACT, 1);
            MapTier::Exact
        };
        planned.cost = Some(cost);
        planned.script = Some(script);
        planned
    }
}

/// Canonical edit-script order: match/relabel pairs by source index, then
/// deletes by source index, then inserts by target index. An edit script
/// is a set, so reordering never changes its cost — but it makes the
/// serialized script independent of backtracking order and of which tier
/// produced it.
pub fn canonical_sort(script: &mut [EditOp]) {
    script.sort_by_key(|op| match *op {
        EditOp::Match { from, .. } | EditOp::Relabel { from, .. } => (0usize, from),
        EditOp::Delete { from } => (1, from),
        EditOp::Insert { to } => (2, to),
    });
}

/// Renders a planned mapping as the JSON document `POST /map`, `webre map
/// --json` and the `map-vs-batch` oracle reference all share — one
/// function so served and batch output are byte-identical by
/// construction. No trailing newline.
pub fn render_json(planned: &PlannedMap, budget: Option<u32>) -> String {
    let mut fields = vec![
        (
            "tier".to_owned(),
            Json::Str(planned.tier.label().to_owned()),
        ),
        ("conforms".to_owned(), Json::Bool(planned.conforms)),
        (
            "lower_bound".to_owned(),
            Json::Num(f64::from(planned.lower_bound)),
        ),
        (
            "budget".to_owned(),
            budget.map_or(Json::Null, |b| Json::Num(f64::from(b))),
        ),
        (
            "edits".to_owned(),
            Json::Obj(vec![
                ("demoted".to_owned(), Json::Num(f64::from(planned.demoted))),
                ("wrapped".to_owned(), Json::Num(f64::from(planned.wrapped))),
                (
                    "inserted".to_owned(),
                    Json::Num(f64::from(planned.inserted)),
                ),
                ("merged".to_owned(), Json::Num(f64::from(planned.merged))),
                (
                    "reordered".to_owned(),
                    Json::Num(f64::from(planned.reordered)),
                ),
            ]),
        ),
    ];
    if planned.tier != MapTier::Rejected {
        let cost = planned.cost.unwrap_or(0);
        fields.push(("cost".to_owned(), Json::Num(f64::from(cost))));
        fields.push(("xml".to_owned(), Json::Str(to_xml(&planned.document))));
        let script: Vec<Json> = planned
            .script
            .as_deref()
            .unwrap_or(&[])
            .iter()
            .map(|op| render_op(op))
            .collect();
        fields.push(("script".to_owned(), Json::Arr(script)));
    }
    Json::Obj(fields).to_string()
}

fn render_op(op: &EditOp) -> Json {
    let (kind, from, to) = match *op {
        EditOp::Match { from, to } => ("match", Some(from), Some(to)),
        EditOp::Relabel { from, to } => ("relabel", Some(from), Some(to)),
        EditOp::Delete { from } => ("delete", Some(from), None),
        EditOp::Insert { to } => ("insert", None, Some(to)),
    };
    let mut fields = vec![("op".to_owned(), Json::Str(kind.to_owned()))];
    if let Some(from) = from {
        fields.push(("from".to_owned(), Json::Num(from as f64)));
    }
    if let Some(to) = to {
        fields.push(("to".to_owned(), Json::Num(to as f64)));
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_schema::{derive_dtd, extract_paths, DtdConfig, FrequentPathMiner};
    use webre_xml::parse_xml;

    fn schema_and_dtd(xmls: &[&str]) -> (MajoritySchema, Dtd) {
        let corpus: Vec<_> = xmls
            .iter()
            .map(|x| extract_paths(&parse_xml(x).unwrap()))
            .collect();
        let schema = FrequentPathMiner {
            sup_threshold: 0.5,
            ratio_threshold: 0.0,
            ..Default::default()
        }
        .mine(&corpus)
        .unwrap()
        .schema;
        let dtd = derive_dtd(&schema, &corpus, &DtdConfig::default());
        (schema, dtd)
    }

    fn standard() -> (MajoritySchema, Dtd) {
        schema_and_dtd(&[
            "<resume><contact/><education><institution/><degree/></education></resume>",
            "<resume><contact/><education><institution/><degree/></education></resume>",
        ])
    }

    #[test]
    fn conformant_document_takes_the_fast_tier() {
        let (schema, dtd) = standard();
        let doc = parse_xml(
            "<resume><contact/><education><institution/><degree/></education></resume>",
        )
        .unwrap();
        let planned = MapPlanner::default().plan(&doc, &schema, &dtd);
        assert_eq!(planned.tier, MapTier::Conformant);
        assert_eq!(planned.cost, Some(0));
        assert_eq!(planned.lower_bound, 0);
        assert!(planned.conforms);
        let script = planned.script.unwrap();
        assert_eq!(script.len(), doc.tree.subtree_size(doc.root()));
        assert!(script
            .iter()
            .enumerate()
            .all(|(i, op)| *op == EditOp::Match { from: i, to: i }));
    }

    #[test]
    fn filter_on_and_off_agree_byte_for_byte() {
        let (schema, dtd) = standard();
        let docs = [
            "<resume><contact/><education><institution/><degree/></education></resume>",
            "<resume><contact/><degree/></resume>",
            "<resume><bogus><bogus2><bogus3/></bogus2></bogus></resume>",
            "<cv><education><degree/><institution/></education><contact/></cv>",
            "<resume/>",
        ];
        for budget in [None, Some(0), Some(2), Some(100)] {
            for xml in docs {
                let doc = parse_xml(xml).unwrap();
                let with = MapPlanner {
                    filter: true,
                    budget,
                    ..Default::default()
                }
                .plan(&doc, &schema, &dtd);
                let without = MapPlanner {
                    filter: false,
                    budget,
                    ..Default::default()
                }
                .plan(&doc, &schema, &dtd);
                assert_eq!(
                    render_json(&with, budget),
                    render_json(&without, budget),
                    "filter on/off diverged for {xml} at budget {budget:?}"
                );
                assert_eq!(with.tier, without.tier, "{xml} at {budget:?}");
            }
        }
    }

    #[test]
    fn hopeless_document_is_rejected_without_cost() {
        let (schema, dtd) = standard();
        // Deep chain of unknown labels: many demotions, large distance.
        let doc = parse_xml("<x><y><z><w><v><u/></v></w></z></y></x>").unwrap();
        let planner = MapPlanner {
            budget: Some(1),
            ..Default::default()
        };
        let planned = planner.plan(&doc, &schema, &dtd);
        assert_eq!(planned.tier, MapTier::Rejected);
        assert!(planned.lower_bound > 1);
        assert_eq!(planned.cost, None);
        assert_eq!(planned.script, None);
        let json = render_json(&planned, planner.budget);
        assert!(!json.contains("\"cost\""), "{json}");
        assert!(!json.contains("\"xml\""), "{json}");
    }

    #[test]
    fn exact_tier_cost_equals_mapper_distance() {
        let (schema, dtd) = standard();
        let doc = parse_xml("<resume><contact/><degree/></resume>").unwrap();
        let planned = MapPlanner::default().plan(&doc, &schema, &dtd);
        let outcome = crate::map_to_dtd(&doc, &schema, &dtd);
        assert_eq!(planned.cost, Some(outcome.edit_distance));
        assert_eq!(to_xml(&planned.document), to_xml(&outcome.document));
        assert_eq!(planned.conforms, outcome.conforms);
        // The script's paid operations sum to the cost.
        let script = planned.script.unwrap();
        let paid: u32 = script
            .iter()
            .map(|op| match op {
                EditOp::Match { .. } => 0,
                _ => 1,
            })
            .sum();
        assert_eq!(paid, outcome.edit_distance);
    }

    #[test]
    fn unbudgeted_planner_never_rejects() {
        let (schema, dtd) = standard();
        let doc = parse_xml("<x><y><z/></y></x>").unwrap();
        let planned = MapPlanner::default().plan(&doc, &schema, &dtd);
        assert_ne!(planned.tier, MapTier::Rejected);
        assert!(planned.cost.is_some());
    }

    #[test]
    fn canonical_sort_is_total_and_stable_under_tier() {
        let mut ops = vec![
            EditOp::Insert { to: 3 },
            EditOp::Delete { from: 2 },
            EditOp::Match { from: 1, to: 1 },
            EditOp::Insert { to: 0 },
            EditOp::Relabel { from: 0, to: 2 },
        ];
        canonical_sort(&mut ops);
        assert_eq!(
            ops,
            vec![
                EditOp::Relabel { from: 0, to: 2 },
                EditOp::Match { from: 1, to: 1 },
                EditOp::Delete { from: 2 },
                EditOp::Insert { to: 0 },
                EditOp::Insert { to: 3 },
            ]
        );
    }

    #[test]
    fn render_json_parses_back() {
        let (schema, dtd) = standard();
        let doc = parse_xml("<resume><contact/><degree/></resume>").unwrap();
        let planner = MapPlanner {
            budget: Some(50),
            ..Default::default()
        };
        let planned = planner.plan(&doc, &schema, &dtd);
        let json = render_json(&planned, planner.budget);
        let value = Json::parse(&json).expect("render_json must emit valid JSON");
        assert_eq!(value.get("tier").and_then(Json::as_str), Some("exact"));
        assert_eq!(value.get("budget").and_then(Json::as_f64), Some(50.0));
        let xml = value.get("xml").and_then(Json::as_str).unwrap();
        assert_eq!(xml, to_xml(&planned.document));
        assert!(value.get("script").and_then(Json::as_arr).is_some());
    }
}
