//! Document mapping: converting non-conforming XML documents so that they
//! conform to the majority DTD.
//!
//! The paper's Quixote prototype includes a Document Mapping Component
//! (described in the companion thesis, [13] in the paper) that "converts
//! non-conforming XML documents using a tree-edit distance algorithm so
//! that they eventually conform to the derived DTD and can easily be
//! integrated into an XML document repository". The paper's headline claim
//! for the majority schema is precisely that such conversion is only
//! reasonable against a majority schema — a DataGuide or lower-bound schema
//! would not suffice.
//!
//! * [`zhang_shasha`] — the classical ordered tree-edit distance (insert,
//!   delete, relabel; Zhang & Shasha 1989);
//! * [`edit_script`] — optimal edit-script extraction (match / relabel /
//!   delete / insert per node) by backtracking the same dynamic program;
//! * [`mapper`] — the schema-guided transformation that edits a document
//!   into DTD conformance (relocating, demoting, inserting and reordering
//!   elements) and reports the edit cost;
//! * [`filter`] — admissible lower bounds on the edit distance (label
//!   histogram + leaf/depth invariants) cheap enough to run on every
//!   document;
//! * [`planner`] — the tiered planner (conformant / rejected / exact)
//!   that short-circuits the quadratic dynamic program whenever the
//!   filter already decides the outcome, plus the shared JSON rendering
//!   used by `POST /map`, `webre map --json` and the `map-vs-batch`
//!   oracle.

pub mod edit_script;
pub mod filter;
pub mod mapper;
pub mod planner;
pub mod zhang_shasha;

pub use edit_script::{edit_script, EditOp};
pub use filter::{lower_bound, lower_bound_docs, TreeProfile};
pub use mapper::{map_to_dtd, MapOutcome};
pub use planner::{canonical_sort, render_json, MapPlanner, MapTier, PlannedMap};
pub use zhang_shasha::{edit_distance, edit_distance_docs, EditCosts};
