//! Document mapping: converting non-conforming XML documents so that they
//! conform to the majority DTD.
//!
//! The paper's Quixote prototype includes a Document Mapping Component
//! (described in the companion thesis, [13] in the paper) that "converts
//! non-conforming XML documents using a tree-edit distance algorithm so
//! that they eventually conform to the derived DTD and can easily be
//! integrated into an XML document repository". The paper's headline claim
//! for the majority schema is precisely that such conversion is only
//! reasonable against a majority schema — a DataGuide or lower-bound schema
//! would not suffice.
//!
//! * [`zhang_shasha`] — the classical ordered tree-edit distance (insert,
//!   delete, relabel; Zhang & Shasha 1989);
//! * [`edit_script`] — optimal edit-script extraction (match / relabel /
//!   delete / insert per node) by backtracking the same dynamic program;
//! * [`mapper`] — the schema-guided transformation that edits a document
//!   into DTD conformance (relocating, demoting, inserting and reordering
//!   elements) and reports the edit cost.

pub mod edit_script;
pub mod mapper;
pub mod zhang_shasha;

pub use edit_script::{edit_script, EditOp};
pub use mapper::{map_to_dtd, MapOutcome};
pub use zhang_shasha::{edit_distance, edit_distance_docs, EditCosts};
