//! The tokenization rule's text machinery.
//!
//! A *topic sentence* such as
//! `"University of California at Davis, B.S.(Computer Science), June 1996,
//! GPA 3.8/4.0"` is decomposed into tokens on punctuation delimiters; each
//! token is then classified by the concept instance rule. The number and
//! order of tokens depends on the delimiter set, which is configurable via
//! [`Delimiters`] (the paper's experiments use `; , :`).

/// The delimiter set used to split topic sentences into tokens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delimiters {
    chars: Vec<char>,
}

impl Default for Delimiters {
    /// The paper's Section 4 annotation: `; , :`.
    fn default() -> Self {
        Delimiters {
            chars: vec![';', ',', ':'],
        }
    }
}

impl Delimiters {
    /// Creates a delimiter set from the given characters.
    pub fn new(chars: impl IntoIterator<Item = char>) -> Self {
        Delimiters {
            chars: chars.into_iter().collect(),
        }
    }

    /// Whether `c` is a delimiter.
    pub fn contains(&self, c: char) -> bool {
        self.chars.contains(&c)
    }

    /// The delimiter characters.
    pub fn chars(&self) -> &[char] {
        &self.chars
    }
}

/// Splits `text` into trimmed, non-empty tokens on the delimiter set.
///
/// A delimiter inside a number (e.g. the comma in `10,000` or the colon in
/// `10:30`) does *not* split: the paper's delimiters separate information
/// components, and digit-adjacent punctuation is part of a value.
///
/// ```
/// use webre_text::tokenize::{split_tokens, Delimiters};
/// let toks = split_tokens(
///     "University of California at Davis, B.S.(Computer Science), June 1996, GPA 3.8/4.0",
///     &Delimiters::default(),
/// );
/// assert_eq!(toks, [
///     "University of California at Davis",
///     "B.S.(Computer Science)",
///     "June 1996",
///     "GPA 3.8/4.0",
/// ]);
/// ```
pub fn split_tokens(text: &str, delims: &Delimiters) -> Vec<String> {
    split_tokens_obs(text, delims, webre_obs::Ctx::disabled())
}

/// [`split_tokens`] with observability: reports every produced token to
/// the context's `tokens_split` counter. The token output is identical —
/// the counter ride-along never influences splitting.
pub fn split_tokens_obs(
    text: &str,
    delims: &Delimiters,
    ctx: webre_obs::Ctx<'_>,
) -> Vec<String> {
    let tokens = split_tokens_impl(text, delims);
    if !tokens.is_empty() {
        ctx.count(webre_obs::counter::TOKENS_SPLIT, tokens.len() as u64);
    }
    tokens
}

fn split_tokens_impl(text: &str, delims: &Delimiters) -> Vec<String> {
    split_token_spans(text, delims)
        .into_iter()
        .map(|(start, end)| text[start..end].to_owned())
        .collect()
}

/// Like [`split_tokens`] but returning the trimmed byte range of each token
/// in `text` instead of owned copies. `split_tokens(text, d)` is exactly
/// `split_token_spans(text, d)` with each range sliced out of `text` — the
/// zero-copy shape the converter's arena representation stores, so token
/// text is borrowed from the originating text buffer instead of allocated
/// per token.
pub fn split_token_spans(text: &str, delims: &Delimiters) -> Vec<(usize, usize)> {
    if text.is_ascii() && delims.chars.iter().all(char::is_ascii) {
        return split_token_spans_ascii(text, delims);
    }
    split_token_spans_chars(text, delims)
}

/// The general char-decoding walk; reference semantics for the ASCII
/// fast path below.
fn split_token_spans_chars(text: &str, delims: &Delimiters) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut run_start = 0usize;
    let mut prev: Option<char> = None;
    let mut iter = text.char_indices().peekable();
    while let Some((i, c)) = iter.next() {
        if delims.contains(c) {
            // A delimiter inside a number (10,000 / 10:30) is part of the
            // value, not a split point — same rule as `split_tokens`.
            let prev_digit = prev.is_some_and(|p| p.is_ascii_digit());
            let next_digit = iter.peek().is_some_and(|&(_, n)| n.is_ascii_digit());
            if !(prev_digit && next_digit) {
                push_trimmed_span(text, run_start, i, &mut spans);
                run_start = i + c.len_utf8();
            }
        }
        prev = Some(c);
    }
    push_trimmed_span(text, run_start, text.len(), &mut spans);
    spans
}

/// Byte-scan fast path for ASCII text with ASCII delimiters (the paper's
/// `; , :` set): for ASCII input, byte positions are char positions, so
/// the char-decoding walk above reduces to a plain byte loop. Behavior is
/// identical — same delimiter test, same digit-flanked exemption, same
/// trimming.
fn split_token_spans_ascii(text: &str, delims: &Delimiters) -> Vec<(usize, usize)> {
    let bytes = text.as_bytes();
    let mut is_delim = [false; 128];
    for &c in delims.chars.iter() {
        is_delim[c as usize] = true;
    }
    let mut spans = Vec::new();
    let mut run_start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if is_delim[b as usize] {
            let prev_digit = i > 0 && bytes[i - 1].is_ascii_digit();
            let next_digit = i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit();
            if !(prev_digit && next_digit) {
                push_trimmed_span(text, run_start, i, &mut spans);
                run_start = i + 1;
            }
        }
    }
    push_trimmed_span(text, run_start, text.len(), &mut spans);
    spans
}

/// Trims whitespace off `text[start..end]` and records the remaining range
/// if non-empty.
fn push_trimmed_span(text: &str, start: usize, end: usize, spans: &mut Vec<(usize, usize)>) {
    let slice = &text[start..end];
    let lead = slice.len() - slice.trim_start().len();
    let trimmed = slice.trim();
    if !trimmed.is_empty() {
        spans.push((start + lead, start + lead + trimmed.len()));
    }
}

/// Extracts lowercase word features from a token for classification:
/// maximal alphanumeric runs, lowercased. Pure numbers are mapped to the
/// feature `#num` so the classifier can learn "contains a number" without
/// memorizing every literal value.
///
/// ```
/// use webre_text::tokenize::words;
/// assert_eq!(words("GPA 3.8/4.0"), ["gpa", "#num", "#num", "#num", "#num"]);
/// assert_eq!(words("B.S.(Computer Science)"), ["b", "s", "computer", "science"]);
/// ```
pub fn words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            current.extend(c.to_lowercase());
        } else if !current.is_empty() {
            out.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    for w in &mut out {
        if w.chars().all(|c| c.is_ascii_digit()) {
            *w = "#num".to_owned();
        }
    }
    out
}

/// Case-insensitive word-boundary containment: whether `needle` occurs in
/// `haystack` as a whole-word (sequence), used by synonym matching.
///
/// ```
/// use webre_text::tokenize::contains_word;
/// assert!(contains_word("University of California", "university"));
/// assert!(!contains_word("Universality", "university"));
/// ```
pub fn contains_word(haystack: &str, needle: &str) -> bool {
    if needle.is_empty() {
        return false;
    }
    let hay = haystack.to_lowercase();
    let pat = needle.to_lowercase();
    let mut start = 0;
    while let Some(found) = hay[start..].find(&pat) {
        let begin = start + found;
        let end = begin + pat.len();
        let before_ok = begin == 0
            || !hay[..begin]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric());
        let after_ok = end == hay.len()
            || !hay[end..].chars().next().is_some_and(|c| c.is_alphanumeric());
        if before_ok && after_ok {
            return true;
        }
        start = begin + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topic_sentence() {
        let toks = split_tokens(
            "University of California at Davis, B.S.(Computer Science), June 1996, GPA 3.8/4.0",
            &Delimiters::default(),
        );
        assert_eq!(toks.len(), 4);
        assert_eq!(toks[0], "University of California at Davis");
        assert_eq!(toks[3], "GPA 3.8/4.0");
    }

    #[test]
    fn semicolons_and_colons_split() {
        let toks = split_tokens("Skills: C++; Java; Perl", &Delimiters::default());
        assert_eq!(toks, ["Skills", "C++", "Java", "Perl"]);
    }

    #[test]
    fn numeric_punctuation_does_not_split() {
        let toks = split_tokens("Managed 10,000 users, saved $1,500", &Delimiters::default());
        assert_eq!(toks, ["Managed 10,000 users", "saved $1,500"]);
        let toks = split_tokens("Meeting at 10:30, room 5", &Delimiters::default());
        assert_eq!(toks, ["Meeting at 10:30", "room 5"]);
    }

    #[test]
    fn empty_and_delimiter_only_inputs() {
        assert!(split_tokens("", &Delimiters::default()).is_empty());
        assert!(split_tokens(" ;,; ", &Delimiters::default()).is_empty());
    }

    #[test]
    fn custom_delimiters() {
        let d = Delimiters::new(['|']);
        assert_eq!(split_tokens("a, b | c", &d), ["a, b", "c"]);
    }

    #[test]
    fn whole_text_is_one_token_without_delimiters() {
        let toks = split_tokens("just one component", &Delimiters::default());
        assert_eq!(toks, ["just one component"]);
    }

    #[test]
    fn spans_slice_back_to_tokens() {
        for text in [
            "University of California at Davis, B.S.(Computer Science), June 1996, GPA 3.8/4.0",
            "Skills: C++; Java; Perl",
            "Managed 10,000 users, saved $1,500",
            "Meeting at 10:30, room 5",
            " ;,; ",
            "",
            "  padded , tokens  ",
            "résumé, naïve; 1996",
        ] {
            let d = Delimiters::default();
            let from_spans: Vec<&str> = split_token_spans(text, &d)
                .into_iter()
                .map(|(s, e)| &text[s..e])
                .collect();
            assert_eq!(from_spans, split_tokens(text, &d), "on {text:?}");
        }
    }

    #[test]
    fn ascii_span_fast_path_matches_char_walk() {
        let d = Delimiters::default();
        for text in [
            "University of California at Davis, B.S.(Computer Science), June 1996, GPA 3.8/4.0",
            "Skills: C++; Java; Perl",
            "Managed 10,000 users, saved $1,500",
            "Meeting at 10:30, room 5",
            " ;,; ",
            "",
            ",",
            "1,2",
            "a,1",
            "1,a",
            "  padded , tokens  ",
        ] {
            assert!(text.is_ascii());
            assert_eq!(
                split_token_spans(text, &d),
                split_token_spans_chars(text, &d),
                "fast path diverged on {text:?}"
            );
        }
    }

    #[test]
    fn words_lowercase_and_split_on_punct() {
        assert_eq!(words("Hello, World!"), ["hello", "world"]);
        assert_eq!(words("C++"), ["c"]);
        assert_eq!(words(""), Vec::<String>::new());
    }

    #[test]
    fn words_map_numbers_to_num_token() {
        assert_eq!(words("June 1996"), ["june", "#num"]);
        assert_eq!(words("v2"), ["v2"], "mixed alphanumerics stay literal");
    }

    #[test]
    fn contains_word_boundaries() {
        assert!(contains_word("B.S. in CS", "b.s."));
        assert!(contains_word("University of California", "University"));
        assert!(contains_word("the college", "college"));
        assert!(!contains_word("collegestudent", "college"));
        assert!(!contains_word("", "x"));
        assert!(!contains_word("x", ""));
    }

    #[test]
    fn contains_word_multiword_needle() {
        assert!(contains_word(
            "received B.S. degree from MIT",
            "b.s. degree"
        ));
        assert!(!contains_word("BSc degree", "b.s. degree"));
    }
}
