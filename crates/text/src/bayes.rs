//! Multinomial naive Bayes token classifier.
//!
//! Section 2.3.1: "the user gives examples on how to associate tokens with
//! concept instances by labeling some input HTML documents. Based on these
//! examples, the Bayes classifier computes the statistics of associating
//! words in the token with concept instances. Given a new resume document,
//! the classifier classifies each token as a concept instance with the
//! highest probability."
//!
//! The implementation is the standard multinomial NB with Laplace (add-one)
//! smoothing, computed in log space. Training is separated from
//! classification by the [`BayesTrainer`] → [`BayesClassifier`] split so a
//! trained model is immutable and cheap to share.

use crate::tokenize::words;
use std::collections::{BTreeMap, HashMap};

/// Accumulates labeled examples and produces a [`BayesClassifier`].
///
/// `classes` is a `BTreeMap` on purpose: [`build`](Self::build) turns it
/// into the classifier's `Vec<Class>`, and label order there decides how
/// exact score ties resolve in [`BayesClassifier::scores`]. A hash map
/// here made tie winners change from process to process.
#[derive(Clone, Debug, Default)]
pub struct BayesTrainer {
    /// label → (document count, word → count, total word count)
    classes: BTreeMap<String, ClassAcc>,
    vocabulary: HashMap<String, ()>,
    total_docs: u64,
}

#[derive(Clone, Debug, Default)]
struct ClassAcc {
    docs: u64,
    words: HashMap<String, u64>,
    total_words: u64,
}

impl BayesTrainer {
    /// Creates an empty trainer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one labeled token (the label is typically a concept name, or a
    /// designated "unknown" class for noise tokens).
    pub fn add(&mut self, label: &str, token_text: &str) {
        let acc = self.classes.entry(label.to_owned()).or_default();
        acc.docs += 1;
        self.total_docs += 1;
        for w in words(token_text) {
            acc.total_words += 1;
            *acc.words.entry(w.clone()).or_insert(0) += 1;
            self.vocabulary.entry(w).or_insert(());
        }
    }

    /// Number of labeled examples added so far.
    pub fn example_count(&self) -> u64 {
        self.total_docs
    }

    /// Finishes training. Returns `None` if no examples were added.
    pub fn build(self) -> Option<BayesClassifier> {
        if self.total_docs == 0 {
            return None;
        }
        let vocab_size = self.vocabulary.len().max(1) as f64;
        let total_docs = self.total_docs as f64;
        let classes = self
            .classes
            .into_iter()
            .map(|(label, acc)| {
                let prior = ((acc.docs as f64) / total_docs).ln();
                let denom = (acc.total_words as f64 + vocab_size).ln();
                let word_log_probs = acc
                    .words
                    .into_iter()
                    .map(|(w, c)| (w, ((c as f64) + 1.0).ln() - denom))
                    .collect();
                Class {
                    label,
                    log_prior: prior,
                    word_log_probs,
                    unseen_log_prob: (1.0f64).ln() - denom,
                }
            })
            .collect();
        Some(BayesClassifier { classes })
    }
}

#[derive(Clone, Debug)]
struct Class {
    label: String,
    log_prior: f64,
    word_log_probs: HashMap<String, f64>,
    unseen_log_prob: f64,
}

/// A trained multinomial naive Bayes model.
#[derive(Clone, Debug)]
pub struct BayesClassifier {
    classes: Vec<Class>,
}

impl BayesClassifier {
    /// Scores every class for `token_text`, returning `(label, log p)` pairs
    /// sorted best-first.
    pub fn scores(&self, token_text: &str) -> Vec<(&str, f64)> {
        let features = words(token_text);
        let mut out: Vec<(&str, f64)> = self
            .classes
            .iter()
            .map(|c| {
                let mut log_p = c.log_prior;
                for w in &features {
                    log_p += c
                        .word_log_probs
                        .get(w)
                        .copied()
                        .unwrap_or(c.unseen_log_prob);
                }
                (c.label.as_str(), log_p)
            })
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("log probs are finite")
                .then_with(|| a.0.cmp(b.0))
        });
        out
    }

    /// The highest-probability label for `token_text`, or `None` if the
    /// model has no classes.
    pub fn classify(&self, token_text: &str) -> Option<&str> {
        self.scores(token_text).first().map(|(l, _)| *l)
    }

    /// Like [`classify`](Self::classify) but requiring the winner to beat
    /// the runner-up by `margin` nats; returns `None` when the decision is
    /// too close (the caller then treats the token as unidentified).
    pub fn classify_with_margin(&self, token_text: &str, margin: f64) -> Option<&str> {
        let scores = self.scores(token_text);
        match scores.as_slice() {
            [] => None,
            [only] => Some(only.0),
            [best, second, ..] => (best.1 - second.1 >= margin).then_some(best.0),
        }
    }

    /// Labels known to the model.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.classes.iter().map(|c| c.label.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> BayesClassifier {
        let mut t = BayesTrainer::new();
        for ex in [
            "University of California at Davis",
            "Stanford University",
            "San Jose State College",
            "MIT",
        ] {
            t.add("institution", ex);
        }
        for ex in [
            "B.S. Computer Science",
            "M.S. Electrical Engineering",
            "Ph.D. Physics",
            "Bachelor of Arts",
        ] {
            t.add("degree", ex);
        }
        for ex in ["June 1996", "May 2000", "1998", "September 1999"] {
            t.add("date", ex);
        }
        t.build().unwrap()
    }

    #[test]
    fn classifies_held_out_tokens() {
        let c = trained();
        assert_eq!(c.classify("University of Texas"), Some("institution"));
        assert_eq!(c.classify("B.S. Mathematics"), Some("degree"));
        assert_eq!(c.classify("June 2001"), Some("date"));
    }

    #[test]
    fn empty_trainer_builds_none() {
        assert!(BayesTrainer::new().build().is_none());
    }

    #[test]
    fn scores_sorted_descending() {
        let c = trained();
        let scores = c.scores("Stanford University");
        assert_eq!(scores[0].0, "institution");
        for w in scores.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn margin_rejects_ambiguous_tokens() {
        // Two perfectly symmetric classes: an all-unseen token scores the
        // same for both, so any margin > 0 rejects it.
        let mut t = BayesTrainer::new();
        t.add("a", "alpha beta");
        t.add("b", "gamma delta");
        let c = t.build().unwrap();
        assert_eq!(c.classify_with_margin("zzz qqq", 0.1), None);
        // A clear case passes.
        assert_eq!(c.classify_with_margin("alpha beta", 0.1), Some("a"));
        // And the full classifier still distinguishes real topics.
        let c = trained();
        assert_eq!(
            c.classify_with_margin("University of Oregon", 0.1),
            Some("institution")
        );
    }

    #[test]
    fn priors_break_feature_ties() {
        let mut t = BayesTrainer::new();
        t.add("big", "alpha");
        t.add("big", "beta");
        t.add("big", "gamma");
        t.add("small", "delta");
        let c = t.build().unwrap();
        // "omega" is unseen everywhere; the class with the larger prior and
        // word mass wins deterministically.
        assert_eq!(c.classify("omega"), Some("big"));
    }

    #[test]
    fn number_feature_generalizes() {
        let c = trained();
        // 1997 never occurs in training but #num does.
        assert_eq!(c.classify("March 1997"), Some("date"));
    }

    #[test]
    fn labels_iterates_all_classes() {
        let c = trained();
        let mut labels: Vec<_> = c.labels().collect();
        labels.sort_unstable();
        assert_eq!(labels, ["date", "degree", "institution"]);
    }

    #[test]
    fn single_class_always_wins() {
        let mut t = BayesTrainer::new();
        t.add("only", "something");
        let c = t.build().unwrap();
        assert_eq!(c.classify("anything else"), Some("only"));
        assert_eq!(c.classify_with_margin("anything", 10.0), Some("only"));
    }
}
