//! Multinomial naive Bayes token classifier.
//!
//! Section 2.3.1: "the user gives examples on how to associate tokens with
//! concept instances by labeling some input HTML documents. Based on these
//! examples, the Bayes classifier computes the statistics of associating
//! words in the token with concept instances. Given a new resume document,
//! the classifier classifies each token as a concept instance with the
//! highest probability."
//!
//! The implementation is the standard multinomial NB with Laplace (add-one)
//! smoothing, computed in log space. Training is separated from
//! classification by the [`BayesTrainer`] → [`BayesClassifier`] split so a
//! trained model is immutable and cheap to share.
//!
//! Two classifier shapes exist on purpose. [`BayesClassifier`] is the hot
//! path: at build time every `ln()` is precomputed into a dense row-major
//! table (vocabulary word × class), so scoring a token is one hash lookup
//! per word plus a row of float additions — no transcendental math at
//! classification time. [`ReferenceBayes`] is the original per-class
//! hash-map formulation, retained as the independent reference that the
//! table-vs-direct equivalence test checks the fast path against. The two
//! are *bit-identical*, not merely approximately equal: the table stores
//! the very values the reference computes, and both add them to each
//! class's accumulator in the same order (prior first, then features in
//! token order), so every intermediate `f64` is the same.

use crate::tokenize::words;
use std::collections::{BTreeMap, HashMap};

/// Accumulates labeled examples and produces a [`BayesClassifier`].
///
/// `classes` is a `BTreeMap` on purpose: [`build`](Self::build) turns it
/// into the classifier's class columns, and label order there decides how
/// exact score ties resolve in [`BayesClassifier::scores`]. A hash map
/// here made tie winners change from process to process.
#[derive(Clone, Debug, Default)]
pub struct BayesTrainer {
    /// label → (document count, word → count, total word count)
    classes: BTreeMap<String, ClassAcc>,
    vocabulary: HashMap<String, ()>,
    total_docs: u64,
}

#[derive(Clone, Debug, Default)]
struct ClassAcc {
    docs: u64,
    words: HashMap<String, u64>,
    total_words: u64,
}

impl BayesTrainer {
    /// Creates an empty trainer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one labeled token (the label is typically a concept name, or a
    /// designated "unknown" class for noise tokens).
    pub fn add(&mut self, label: &str, token_text: &str) {
        let acc = self.classes.entry(label.to_owned()).or_default();
        acc.docs += 1;
        self.total_docs += 1;
        for w in words(token_text) {
            acc.total_words += 1;
            *acc.words.entry(w.clone()).or_insert(0) += 1;
            self.vocabulary.entry(w).or_insert(());
        }
    }

    /// Number of labeled examples added so far.
    pub fn example_count(&self) -> u64 {
        self.total_docs
    }

    /// Finishes training into the table-based fast path. Returns `None` if
    /// no examples were added.
    ///
    /// Row assignment iterates the vocabulary in sorted order so the table
    /// layout — and therefore any future serialization of it — is
    /// deterministic; classification itself only reaches rows through the
    /// word→row map, so layout never affects scores.
    pub fn build(self) -> Option<BayesClassifier> {
        if self.total_docs == 0 {
            return None;
        }
        let vocab_size = self.vocabulary.len().max(1) as f64;
        let total_docs = self.total_docs as f64;

        let mut vocab_words: Vec<String> = self.vocabulary.into_keys().collect();
        vocab_words.sort_unstable();
        let vocab: HashMap<String, u32> = vocab_words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i as u32))
            .collect();

        let class_count = self.classes.len();
        let mut labels = Vec::with_capacity(class_count);
        let mut log_priors = Vec::with_capacity(class_count);
        let mut unseen = Vec::with_capacity(class_count);
        // Row-major: table[row * class_count + class] is the add-one log
        // probability of vocabulary word `row` under `class`. A word the
        // class never saw has count 0, and ln(0 + 1) − denom == −denom is
        // bitwise the reference's `unseen_log_prob`, so pre-filling each
        // column with it is exact, not an approximation.
        let mut table = vec![0.0f64; vocab_words.len() * class_count];
        for (col, (label, acc)) in self.classes.into_iter().enumerate() {
            let prior = ((acc.docs as f64) / total_docs).ln();
            let denom = (acc.total_words as f64 + vocab_size).ln();
            let unseen_log_prob = (1.0f64).ln() - denom;
            for row in 0..vocab_words.len() {
                table[row * class_count + col] = unseen_log_prob;
            }
            for (w, c) in acc.words {
                let row = vocab[&w] as usize;
                table[row * class_count + col] = ((c as f64) + 1.0).ln() - denom;
            }
            labels.push(label);
            log_priors.push(prior);
            unseen.push(unseen_log_prob);
        }
        Some(BayesClassifier {
            labels,
            log_priors,
            unseen,
            vocab,
            table,
        })
    }

    /// Finishes training into the original per-class hash-map formulation.
    ///
    /// This borrows rather than consumes so equivalence tests can build
    /// both shapes from one trainer. It is the *reference*: scoring
    /// recomputes nothing, but every word probability lives in a per-class
    /// `HashMap`, costing a hash lookup per (word, class) pair instead of
    /// one per word.
    pub fn build_reference(&self) -> Option<ReferenceBayes> {
        if self.total_docs == 0 {
            return None;
        }
        let vocab_size = self.vocabulary.len().max(1) as f64;
        let total_docs = self.total_docs as f64;
        let classes = self
            .classes
            .iter()
            .map(|(label, acc)| {
                let prior = ((acc.docs as f64) / total_docs).ln();
                let denom = (acc.total_words as f64 + vocab_size).ln();
                let word_log_probs = acc
                    .words
                    .iter()
                    .map(|(w, c)| (w.clone(), ((*c as f64) + 1.0).ln() - denom))
                    .collect();
                Class {
                    label: label.clone(),
                    log_prior: prior,
                    word_log_probs,
                    unseen_log_prob: (1.0f64).ln() - denom,
                }
            })
            .collect();
        Some(ReferenceBayes { classes })
    }
}

#[derive(Clone, Debug)]
struct Class {
    label: String,
    log_prior: f64,
    word_log_probs: HashMap<String, f64>,
    unseen_log_prob: f64,
}

/// A trained multinomial naive Bayes model: the table-based fast path.
///
/// All per-(word, class) log probabilities live in one dense row-major
/// `Vec<f64>`; scoring walks each feature word's row once, so the cost is
/// O(words × classes) float additions with a single vocabulary lookup per
/// word. Produces scores bit-identical to [`ReferenceBayes`].
#[derive(Clone, Debug)]
pub struct BayesClassifier {
    /// Class labels in `BTreeMap` (sorted) order — the tie-break order.
    labels: Vec<String>,
    /// Per-class ln(docs / total_docs), indexed like `labels`.
    log_priors: Vec<f64>,
    /// Per-class log probability of a word outside the vocabulary.
    unseen: Vec<f64>,
    /// Word → table row.
    vocab: HashMap<String, u32>,
    /// `table[row * labels.len() + class]`, see [`BayesTrainer::build`].
    table: Vec<f64>,
}

impl BayesClassifier {
    /// Scores every class for `token_text`, returning `(label, log p)` pairs
    /// sorted best-first.
    pub fn scores(&self, token_text: &str) -> Vec<(&str, f64)> {
        let class_count = self.labels.len();
        let mut acc = self.log_priors.clone();
        for w in words(token_text) {
            match self.vocab.get(&w) {
                Some(&row) => {
                    let row = &self.table[row as usize * class_count..][..class_count];
                    for (a, p) in acc.iter_mut().zip(row) {
                        *a += p;
                    }
                }
                None => {
                    for (a, p) in acc.iter_mut().zip(&self.unseen) {
                        *a += p;
                    }
                }
            }
        }
        let mut out: Vec<(&str, f64)> = self
            .labels
            .iter()
            .zip(acc)
            .map(|(label, log_p)| (label.as_str(), log_p))
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("log probs are finite")
                .then_with(|| a.0.cmp(b.0))
        });
        out
    }

    /// The highest-probability label for `token_text`, or `None` if the
    /// model has no classes.
    pub fn classify(&self, token_text: &str) -> Option<&str> {
        self.scores(token_text).first().map(|(l, _)| *l)
    }

    /// Like [`classify`](Self::classify) but requiring the winner to beat
    /// the runner-up by `margin` nats; returns `None` when the decision is
    /// too close (the caller then treats the token as unidentified).
    pub fn classify_with_margin(&self, token_text: &str, margin: f64) -> Option<&str> {
        let scores = self.scores(token_text);
        match scores.as_slice() {
            [] => None,
            [only] => Some(only.0),
            [best, second, ..] => (best.1 - second.1 >= margin).then_some(best.0),
        }
    }

    /// Labels known to the model.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.labels.iter().map(|s| s.as_str())
    }

    /// Vocabulary size (number of table rows) — exposed for benchmarks and
    /// the equivalence tests.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }
}

/// The original per-class hash-map naive Bayes formulation, kept as the
/// independent reference for the table-vs-direct equivalence test.
#[derive(Clone, Debug)]
pub struct ReferenceBayes {
    classes: Vec<Class>,
}

impl ReferenceBayes {
    /// Scores every class for `token_text`, returning `(label, log p)` pairs
    /// sorted best-first. This is the direct computation: per class, the
    /// prior plus one hash lookup per feature word.
    pub fn scores(&self, token_text: &str) -> Vec<(&str, f64)> {
        let features = words(token_text);
        let mut out: Vec<(&str, f64)> = self
            .classes
            .iter()
            .map(|c| {
                let mut log_p = c.log_prior;
                for w in &features {
                    log_p += c
                        .word_log_probs
                        .get(w)
                        .copied()
                        .unwrap_or(c.unseen_log_prob);
                }
                (c.label.as_str(), log_p)
            })
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("log probs are finite")
                .then_with(|| a.0.cmp(b.0))
        });
        out
    }

    /// The highest-probability label for `token_text`, or `None` if the
    /// model has no classes.
    pub fn classify(&self, token_text: &str) -> Option<&str> {
        self.scores(token_text).first().map(|(l, _)| *l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> BayesClassifier {
        let mut t = BayesTrainer::new();
        for ex in [
            "University of California at Davis",
            "Stanford University",
            "San Jose State College",
            "MIT",
        ] {
            t.add("institution", ex);
        }
        for ex in [
            "B.S. Computer Science",
            "M.S. Electrical Engineering",
            "Ph.D. Physics",
            "Bachelor of Arts",
        ] {
            t.add("degree", ex);
        }
        for ex in ["June 1996", "May 2000", "1998", "September 1999"] {
            t.add("date", ex);
        }
        t.build().unwrap()
    }

    #[test]
    fn classifies_held_out_tokens() {
        let c = trained();
        assert_eq!(c.classify("University of Texas"), Some("institution"));
        assert_eq!(c.classify("B.S. Mathematics"), Some("degree"));
        assert_eq!(c.classify("June 2001"), Some("date"));
    }

    #[test]
    fn empty_trainer_builds_none() {
        assert!(BayesTrainer::new().build().is_none());
        assert!(BayesTrainer::new().build_reference().is_none());
    }

    #[test]
    fn scores_sorted_descending() {
        let c = trained();
        let scores = c.scores("Stanford University");
        assert_eq!(scores[0].0, "institution");
        for w in scores.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn margin_rejects_ambiguous_tokens() {
        // Two perfectly symmetric classes: an all-unseen token scores the
        // same for both, so any margin > 0 rejects it.
        let mut t = BayesTrainer::new();
        t.add("a", "alpha beta");
        t.add("b", "gamma delta");
        let c = t.build().unwrap();
        assert_eq!(c.classify_with_margin("zzz qqq", 0.1), None);
        // A clear case passes.
        assert_eq!(c.classify_with_margin("alpha beta", 0.1), Some("a"));
        // And the full classifier still distinguishes real topics.
        let c = trained();
        assert_eq!(
            c.classify_with_margin("University of Oregon", 0.1),
            Some("institution")
        );
    }

    #[test]
    fn priors_break_feature_ties() {
        let mut t = BayesTrainer::new();
        t.add("big", "alpha");
        t.add("big", "beta");
        t.add("big", "gamma");
        t.add("small", "delta");
        let c = t.build().unwrap();
        // "omega" is unseen everywhere; the class with the larger prior and
        // word mass wins deterministically.
        assert_eq!(c.classify("omega"), Some("big"));
    }

    #[test]
    fn number_feature_generalizes() {
        let c = trained();
        // 1997 never occurs in training but #num does.
        assert_eq!(c.classify("March 1997"), Some("date"));
    }

    #[test]
    fn labels_iterates_all_classes() {
        let c = trained();
        let mut labels: Vec<_> = c.labels().collect();
        labels.sort_unstable();
        assert_eq!(labels, ["date", "degree", "institution"]);
    }

    #[test]
    fn single_class_always_wins() {
        let mut t = BayesTrainer::new();
        t.add("only", "something");
        let c = t.build().unwrap();
        assert_eq!(c.classify("anything else"), Some("only"));
        assert_eq!(c.classify_with_margin("anything", 10.0), Some("only"));
    }

    #[test]
    fn table_scores_bit_identical_to_reference() {
        let mut t = BayesTrainer::new();
        for ex in ["University of California", "Stanford University", "MIT"] {
            t.add("institution", ex);
        }
        for ex in ["B.S. Computer Science", "Ph.D. Physics"] {
            t.add("degree", ex);
        }
        let reference = t.build_reference().unwrap();
        let table = t.build().unwrap();
        for text in [
            "University of Texas",
            "B.S. Mathematics 1996",
            "completely unseen words here",
            "",
            "University",
        ] {
            let a = table.scores(text);
            let b = reference.scores(text);
            assert_eq!(a.len(), b.len());
            for ((la, sa), (lb, sb)) in a.iter().zip(&b) {
                assert_eq!(la, lb, "label order differs on {text:?}");
                assert_eq!(
                    sa.to_bits(),
                    sb.to_bits(),
                    "scores not bit-identical on {text:?}: {sa} vs {sb}"
                );
            }
        }
    }
}
