//! Text substrate: tokenization and token classification.
//!
//! Two pieces of the paper live here:
//!
//! * [`tokenize`] — the *tokenization rule*'s text machinery (Section
//!   2.3.1): splitting a topic sentence into tokens on punctuation
//!   delimiters (the paper's experiments use `; , :`), plus word/feature
//!   extraction for classification;
//! * [`bayes`] — the multinomial naive Bayes classifier the *concept
//!   instance rule* can use instead of (or in addition to) synonym
//!   matching, with Laplace smoothing and log-space arithmetic;
//! * [`metrics`] — accuracy/precision/recall/confusion-matrix evaluation
//!   used by the classifier ablation experiment.

pub mod bayes;
pub mod metrics;
pub mod tokenize;

pub use bayes::{BayesClassifier, BayesTrainer, ReferenceBayes};
pub use metrics::ConfusionMatrix;
pub use tokenize::{split_tokens, words, Delimiters};
