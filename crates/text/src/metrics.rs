//! Classification evaluation metrics: confusion matrix, accuracy,
//! per-class precision and recall.

use std::collections::BTreeMap;
use std::fmt;

/// A labeled confusion matrix over string classes.
#[derive(Clone, Debug, Default)]
pub struct ConfusionMatrix {
    /// (actual, predicted) → count
    cells: BTreeMap<(String, String), u64>,
    total: u64,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, actual: &str, predicted: &str) {
        *self
            .cells
            .entry((actual.to_owned(), predicted.to_owned()))
            .or_insert(0) += 1;
        self.total += 1;
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count for an (actual, predicted) cell.
    pub fn count(&self, actual: &str, predicted: &str) -> u64 {
        self.cells
            .get(&(actual.to_owned(), predicted.to_owned()))
            .copied()
            .unwrap_or(0)
    }

    /// Overall accuracy, or `None` when empty.
    pub fn accuracy(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let correct: u64 = self
            .cells
            .iter()
            .filter(|((a, p), _)| a == p)
            .map(|(_, c)| *c)
            .sum();
        Some(correct as f64 / self.total as f64)
    }

    /// Precision for a class: correct predictions / all predictions of it.
    pub fn precision(&self, class: &str) -> Option<f64> {
        let predicted: u64 = self
            .cells
            .iter()
            .filter(|((_, p), _)| p == class)
            .map(|(_, c)| *c)
            .sum();
        (predicted > 0).then(|| self.count(class, class) as f64 / predicted as f64)
    }

    /// Recall for a class: correct predictions / all actual occurrences.
    pub fn recall(&self, class: &str) -> Option<f64> {
        let actual: u64 = self
            .cells
            .iter()
            .filter(|((a, _), _)| a == class)
            .map(|(_, c)| *c)
            .sum();
        (actual > 0).then(|| self.count(class, class) as f64 / actual as f64)
    }

    /// F1 score for a class.
    pub fn f1(&self, class: &str) -> Option<f64> {
        let p = self.precision(class)?;
        let r = self.recall(class)?;
        if p + r == 0.0 {
            return Some(0.0);
        }
        Some(2.0 * p * r / (p + r))
    }

    /// Every class mentioned as actual or predicted, sorted.
    pub fn classes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for (a, p) in self.cells.keys() {
            if !out.contains(&a.as_str()) {
                out.push(a);
            }
            if !out.contains(&p.as_str()) {
                out.push(p);
            }
        }
        out.sort_unstable();
        out
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let acc = self.accuracy().unwrap_or(0.0);
        writeln!(f, "accuracy {:.3} over {} observations", acc, self.total)?;
        for class in self.classes() {
            writeln!(
                f,
                "  {class}: precision {:.3}, recall {:.3}",
                self.precision(class).unwrap_or(f64::NAN),
                self.recall(class).unwrap_or(f64::NAN),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new();
        // 3 correct a, 1 a→b, 2 correct b, 1 b→a
        for _ in 0..3 {
            m.record("a", "a");
        }
        m.record("a", "b");
        for _ in 0..2 {
            m.record("b", "b");
        }
        m.record("b", "a");
        m
    }

    #[test]
    fn accuracy_counts_diagonal() {
        let m = sample();
        assert_eq!(m.total(), 7);
        let acc = m.accuracy().unwrap();
        assert!((acc - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn precision_and_recall() {
        let m = sample();
        // a predicted 4 times, 3 correct.
        assert!((m.precision("a").unwrap() - 0.75).abs() < 1e-12);
        // a actual 4 times, 3 correct.
        assert!((m.recall("a").unwrap() - 0.75).abs() < 1e-12);
        assert!((m.precision("b").unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn f1_harmonic_mean() {
        let m = sample();
        let f1 = m.f1("a").unwrap();
        assert!((f1 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_has_no_metrics() {
        let m = ConfusionMatrix::new();
        assert!(m.accuracy().is_none());
        assert!(m.precision("a").is_none());
        assert!(m.recall("a").is_none());
    }

    #[test]
    fn unseen_class_metrics_none() {
        let m = sample();
        assert!(m.precision("zzz").is_none());
    }

    #[test]
    fn classes_lists_all() {
        let mut m = ConfusionMatrix::new();
        m.record("x", "y");
        assert_eq!(m.classes(), ["x", "y"]);
    }

    #[test]
    fn display_renders() {
        let s = sample().to_string();
        assert!(s.contains("accuracy"));
        assert!(s.contains("a: precision"));
    }
}
