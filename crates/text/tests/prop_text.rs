//! Property tests for tokenization and the Bayes classifier.

use webre_substrate::prop::{self};
use webre_substrate::{prop_assert, prop_assert_eq};
use webre_text::tokenize::{contains_word, split_tokens, words, Delimiters};
use webre_text::{BayesTrainer, ConfusionMatrix};

#[test]
fn tokens_partition_non_delimiter_content() {
    prop::check("tokens_partition_non_delimiter_content", |g| {
        let s = g.chars_in(
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ ;,:.",
            0,
            64,
        );
        let delims = Delimiters::default();
        let tokens = split_tokens(&s, &delims);
        // Concatenated tokens contain exactly the non-delimiter,
        // non-whitespace characters of the input, in order.
        let expected: String = s
            .chars()
            .filter(|c| !delims.contains(*c) && !c.is_whitespace())
            .collect();
        let actual: String = tokens
            .concat()
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        prop_assert_eq!(actual, expected);
        Ok(())
    });
}

#[test]
fn tokens_are_trimmed_and_non_empty() {
    prop::check("tokens_are_trimmed_and_non_empty", |g| {
        let s = g.arbitrary_text(0, 64);
        for t in split_tokens(&s, &Delimiters::default()) {
            prop_assert!(!t.is_empty());
            prop_assert_eq!(t.trim(), &t);
        }
        Ok(())
    });
}

#[test]
fn words_are_lowercase_alphanumeric() {
    prop::check("words_are_lowercase_alphanumeric", |g| {
        let s = g.arbitrary_text(0, 64);
        for w in words(&s) {
            prop_assert!(!w.is_empty());
            // Case-folded (chars without a lowercase mapping stay as-is)
            // and alphanumeric-only.
            prop_assert!(
                w == "#num" || (w.chars().all(char::is_alphanumeric) && w.to_lowercase() == w),
                "bad word {w:?}"
            );
        }
        Ok(())
    });
}

#[test]
fn contains_word_implies_substring() {
    prop::check("contains_word_implies_substring", |g| {
        let hay = g.chars_in("abcdefghijklmnopqrstuvwxyz ", 0, 32);
        let needle = g.chars_in("abcdefghijklmnopqrstuvwxyz", 1, 8);
        if contains_word(&hay, &needle) {
            prop_assert!(hay.contains(&needle));
        }
        Ok(())
    });
}

#[test]
fn classifier_recovers_training_labels() {
    prop::check("classifier_recovers_training_labels", |g| {
        let labels = g.vec(2, 4, |g| g.chars_in("abc", 1, 1));
        // Train with strongly class-specific vocabulary; training examples
        // must classify back to their own label.
        let mut trainer = BayesTrainer::new();
        for (i, l) in labels.iter().enumerate() {
            trainer.add(l, &format!("word{l}{i} word{l} marker{l}"));
        }
        let c = trainer.build().unwrap();
        for l in &labels {
            prop_assert_eq!(c.classify(&format!("marker{l} word{l}")), Some(l.as_str()));
        }
        Ok(())
    });
}

#[test]
fn scores_are_finite_and_total() {
    prop::check("scores_are_finite_and_total", |g| {
        let s = g.arbitrary_text(0, 48);
        let mut trainer = BayesTrainer::new();
        trainer.add("a", "alpha beta");
        trainer.add("b", "gamma delta");
        let c = trainer.build().unwrap();
        let scores = c.scores(&s);
        prop_assert_eq!(scores.len(), 2);
        for (_, p) in scores {
            prop_assert!(p.is_finite());
        }
        Ok(())
    });
}

#[test]
fn confusion_matrix_totals_add_up() {
    prop::check("confusion_matrix_totals_add_up", |g| {
        let obs = g.vec(0, 31, |g| (g.chars_in("abc", 1, 1), g.chars_in("abc", 1, 1)));
        let mut m = ConfusionMatrix::new();
        for (a, p) in &obs {
            m.record(a, p);
        }
        prop_assert_eq!(m.total(), obs.len() as u64);
        if let Some(acc) = m.accuracy() {
            prop_assert!((0.0..=1.0).contains(&acc));
        }
        for class in m.classes() {
            if let (Some(p), Some(r)) = (m.precision(class), m.recall(class)) {
                prop_assert!((0.0..=1.0).contains(&p));
                prop_assert!((0.0..=1.0).contains(&r));
            }
        }
        Ok(())
    });
}
