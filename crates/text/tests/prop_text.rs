//! Property tests for tokenization and the Bayes classifier.

use proptest::prelude::*;
use webre_text::tokenize::{contains_word, split_tokens, words, Delimiters};
use webre_text::{BayesTrainer, ConfusionMatrix};

proptest! {
    #[test]
    fn tokens_partition_non_delimiter_content(s in "[a-zA-Z ;,:.]{0,64}") {
        let delims = Delimiters::default();
        let tokens = split_tokens(&s, &delims);
        // Concatenated tokens contain exactly the non-delimiter,
        // non-whitespace characters of the input, in order.
        let expected: String = s
            .chars()
            .filter(|c| !delims.contains(*c) && !c.is_whitespace())
            .collect();
        let actual: String = tokens
            .concat()
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        prop_assert_eq!(actual, expected);
    }

    #[test]
    fn tokens_are_trimmed_and_non_empty(s in ".{0,64}") {
        for t in split_tokens(&s, &Delimiters::default()) {
            prop_assert!(!t.is_empty());
            prop_assert_eq!(t.trim(), &t);
        }
    }

    #[test]
    fn words_are_lowercase_alphanumeric(s in ".{0,64}") {
        for w in words(&s) {
            prop_assert!(!w.is_empty());
            // Case-folded (chars without a lowercase mapping stay as-is)
            // and alphanumeric-only.
            prop_assert!(
                w == "#num"
                    || (w.chars().all(char::is_alphanumeric) && w.to_lowercase() == w),
                "bad word {w:?}"
            );
        }
    }

    #[test]
    fn contains_word_implies_substring(hay in "[a-z ]{0,32}", needle in "[a-z]{1,8}") {
        if contains_word(&hay, &needle) {
            prop_assert!(hay.contains(&needle));
        }
    }

    #[test]
    fn classifier_recovers_training_labels(
        labels in proptest::collection::vec("[a-c]", 2..5),
    ) {
        // Train with strongly class-specific vocabulary; training examples
        // must classify back to their own label.
        let mut trainer = BayesTrainer::new();
        for (i, l) in labels.iter().enumerate() {
            trainer.add(l, &format!("word{l}{i} word{l} marker{l}"));
        }
        let c = trainer.build().unwrap();
        for l in &labels {
            prop_assert_eq!(c.classify(&format!("marker{l} word{l}")), Some(l.as_str()));
        }
    }

    #[test]
    fn scores_are_finite_and_total(s in ".{0,48}") {
        let mut trainer = BayesTrainer::new();
        trainer.add("a", "alpha beta");
        trainer.add("b", "gamma delta");
        let c = trainer.build().unwrap();
        let scores = c.scores(&s);
        prop_assert_eq!(scores.len(), 2);
        for (_, p) in scores {
            prop_assert!(p.is_finite());
        }
    }

    #[test]
    fn confusion_matrix_totals_add_up(
        obs in proptest::collection::vec(("[a-c]", "[a-c]"), 0..32),
    ) {
        let mut m = ConfusionMatrix::new();
        for (a, p) in &obs {
            m.record(a, p);
        }
        prop_assert_eq!(m.total(), obs.len() as u64);
        if let Some(acc) = m.accuracy() {
            prop_assert!((0.0..=1.0).contains(&acc));
        }
        for class in m.classes() {
            if let (Some(p), Some(r)) = (m.precision(class), m.recall(class)) {
                prop_assert!((0.0..=1.0).contains(&p));
                prop_assert!((0.0..=1.0).contains(&r));
            }
        }
    }
}
