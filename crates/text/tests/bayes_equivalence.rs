//! Randomized equivalence between the precomputed-table Bayes classifier
//! and the direct per-class HashMap formulation it replaced. The table is
//! a pure layout change: every score must be *bit-identical* (same float
//! addition order), so ranking — including exact ties — can never differ.

use webre_substrate::prop::{self, Gen};
use webre_substrate::{prop_assert, prop_assert_eq};
use webre_text::BayesTrainer;

const CASES: u32 = 128;

const LABELS: &[&str] = &["education", "experience", "skills", "awards"];

const VOCAB: &[&str] = &[
    "university", "college", "b.s.", "degree", "gpa", "june", "1996",
    "verity", "c++", "java", "intern", "dean", "list", "honors", "résumé",
];

fn gen_trainer(g: &mut Gen) -> BayesTrainer {
    let mut trainer = BayesTrainer::new();
    let examples = g.vec(0, 30, |g| {
        let label = *g.pick(LABELS);
        let words = g.vec(1, 6, |g| *g.pick(VOCAB));
        (label, words.join(" "))
    });
    for (label, text) in examples {
        trainer.add(label, &text);
    }
    trainer
}

fn gen_query(g: &mut Gen) -> String {
    let words = g.vec(0, 8, |g| {
        if g.bool(0.8) {
            (*g.pick(VOCAB)).to_owned()
        } else {
            // Out-of-vocabulary words exercise the unseen column.
            format!("novel{}", g.int(0u32..50))
        }
    });
    words.join(" ")
}

/// Table scores are bit-identical to the reference formulation on random
/// training sets and queries (seen and unseen words mixed).
#[test]
fn table_matches_reference_bitwise() {
    prop::check_cases("table_matches_reference_bitwise", CASES, |g| {
        let trainer = gen_trainer(g);
        let reference = trainer.build_reference();
        let table = trainer.build();
        prop_assert_eq!(
            table.is_some(),
            reference.is_some(),
            "builders disagree on trainability"
        );
        let (Some(table), Some(reference)) = (table, reference) else {
            return Ok(());
        };
        let query = gen_query(g);
        let ts = table.scores(&query);
        let rs = reference.scores(&query);
        prop_assert_eq!(ts.len(), rs.len());
        for (t, r) in ts.iter().zip(rs.iter()) {
            prop_assert_eq!(t.0, r.0, "label order diverged on {:?}", query);
            prop_assert!(
                t.1.to_bits() == r.1.to_bits(),
                "score for {:?} not bit-identical on {:?}: {} vs {}",
                t.0,
                query,
                t.1,
                r.1
            );
        }
        prop_assert_eq!(
            table.classify(&query),
            reference.classify(&query),
            "classification diverged on {:?}",
            query
        );
        Ok(())
    });
}

/// Deliberately symmetric classes: identical word distributions produce
/// exactly tied log-probabilities, so both formulations must fall back to
/// the same deterministic label tie-break.
#[test]
fn exact_ties_break_identically() {
    prop::check_cases("exact_ties_break_identically", CASES, |g| {
        let mut trainer = BayesTrainer::new();
        // The same documents under every label — all posteriors tie.
        let docs = g.vec(1, 5, |g| g.vec(1, 4, |g| *g.pick(VOCAB)).join(" "));
        for label in LABELS {
            for doc in &docs {
                trainer.add(label, doc);
            }
        }
        let reference = trainer.build_reference().expect("trained");
        let table = trainer.build().expect("trained");
        let query = gen_query(g);
        let ts = table.scores(&query);
        let rs = reference.scores(&query);
        // Sanity: the tie is real — every class scored identically.
        prop_assert!(
            ts.windows(2).all(|w| w[0].1.to_bits() == w[1].1.to_bits()),
            "expected all-tied scores, got {:?}",
            ts
        );
        prop_assert_eq!(&ts, &rs, "tied ranking diverged on {:?}", query);
        // Ties resolve to the lexicographically smallest label.
        prop_assert_eq!(table.classify(&query), Some("awards"));
        prop_assert_eq!(reference.classify(&query), Some("awards"));
        // A tie is never a confident margin win.
        prop_assert_eq!(table.classify_with_margin(&query, 0.1), None);
        Ok(())
    });
}

/// Untrained and single-class trainers behave identically across both
/// formulations.
#[test]
fn degenerate_trainers_agree() {
    assert!(BayesTrainer::new().build().is_none());
    assert!(BayesTrainer::new().build_reference().is_none());

    let mut trainer = BayesTrainer::new();
    trainer.add("only", "university degree");
    let reference = trainer.build_reference().expect("trained");
    let table = trainer.build().expect("trained");
    for query in ["university", "zzz unseen", ""] {
        assert_eq!(table.classify(query), reference.classify(query));
        assert_eq!(table.classify(query), Some("only"));
        let ts = table.scores(query);
        let rs = reference.scores(query);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].0, rs[0].0);
        assert_eq!(ts[0].1.to_bits(), rs[0].1.to_bits());
    }
}
