//! A second topic: product-catalog pages.
//!
//! The paper's closing section names "broader topics such as product
//! catalogs" as the next target for the framework. This module provides
//! that topic end to end — a domain (concepts + constraints) and a
//! generator with ground truth — so the generality of the
//! domain-independent rules can be measured rather than asserted
//! (experiment A5).

use crate::style::HeadingStyle;
use webre_substrate::rand::rngs::StdRng;
use webre_substrate::rand::seq::SliceRandom;
use webre_substrate::rand::{Rng, SeedableRng};
use webre_concepts::{Comparator, Concept, ConceptRole, ConceptSet, Constraint, ConstraintSet};
use webre_xml::{XmlDocument, XmlNode};

/// The catalog topic's concepts.
pub fn concepts() -> ConceptSet {
    let t = |name: &str, instances: &[&str]| {
        Concept::new(name, ConceptRole::Title, instances.iter().copied())
    };
    let c = |name: &str, instances: &[&str]| {
        Concept::new(name, ConceptRole::Content, instances.iter().copied())
    };
    [
        t("product", &["product", "item", "model"]),
        t(
            "specifications",
            &["specifications", "specs", "technical details", "features"],
        ),
        t("pricing", &["pricing", "price list", "ordering"]),
        t("shipping", &["shipping", "delivery", "returns"]),
        c("price", &["price", "msrp", "sale price", "our price"]),
        c("manufacturer", &["manufacturer", "made by", "brand"]),
        c("weight", &["weight", "lbs", "kg", "ounces"]),
        c("dimensions", &["dimensions", "size", "inches", "cm"]),
        c("warranty", &["warranty", "guarantee"]),
        c("sku", &["sku", "part number", "catalog number"]),
    ]
    .into_iter()
    .collect()
}

/// The catalog topic's constraints (same classes as the resume domain).
pub fn constraints() -> ConstraintSet {
    let set = concepts();
    let mut out = ConstraintSet::new();
    out.add(Constraint::NoRepeat);
    out.add(Constraint::MaxDepth(4));
    for name in set.names_with_role(ConceptRole::Title) {
        out.add(Constraint::depth(name, Comparator::Eq, 1));
    }
    for name in set.names_with_role(ConceptRole::Content) {
        out.add(Constraint::depth(name, Comparator::Gt, 1));
    }
    out
}

const PRODUCT_NAMES: &[&str] = &[
    "TurboWidget 3000",
    "AquaPump Deluxe",
    "Frobnicator Junior",
    "MegaSprocket XL",
    "NanoGear Classic",
    "HyperFlange Pro",
];

const BRANDS: &[&str] = &["Acme", "Globex", "Initech", "Umbrella", "Wayne Industries"];

const BLURBS: &[&str] = &[
    "The finest of its kind on the market",
    "Trusted by professionals worldwide",
    "Now with improved housing",
    "An instant classic for the workshop",
];

/// One generated catalog page with conversion ground truth.
#[derive(Clone, Debug)]
pub struct GeneratedCatalogPage {
    pub html: String,
    pub truth: XmlDocument,
}

/// Generates the `i`-th catalog page for a seed.
pub fn generate_one(seed: u64, i: usize) -> GeneratedCatalogPage {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCA7A ^ (i as u64).wrapping_mul(0x9E37_79B9));
    let name = PRODUCT_NAMES.choose(&mut rng).expect("non-empty");
    let brand = BRANDS.choose(&mut rng).expect("non-empty");
    let blurb = BLURBS.choose(&mut rng).expect("non-empty");
    let price = format!("${}.{:02}", rng.gen_range(10..500), rng.gen_range(0..100));
    let weight = format!("{}.{} kg", rng.gen_range(1..20), rng.gen_range(0..10));
    let dims = format!("{} x {} x {} cm", rng.gen_range(5..40), rng.gen_range(5..40), rng.gen_range(2..20));
    let sku = format!("SKU {}-{}", rng.gen_range(100..999), rng.gen_range(1000..9999));
    let warranty_years = rng.gen_range(1..5);
    let heading: HeadingStyle = *[HeadingStyle::H2, HeadingStyle::H3, HeadingStyle::BoldParagraph]
        .choose(&mut rng)
        .expect("non-empty");
    let h = |text: &str| match heading {
        HeadingStyle::BoldParagraph => format!("<p><b>{text}</b></p>\n"),
        HeadingStyle::H3 => format!("<h3>{text}</h3>\n"),
        _ => format!("<h2>{text}</h2>\n"),
    };

    let use_table = rng.gen_bool(0.4);
    let mut html = String::from("<html><head><title>Catalog</title></head><body>\n");
    html.push_str(&h(&format!("Product: {name}")));
    html.push_str(&format!("<p>{blurb}</p>\n"));
    html.push_str(&h("Specifications"));
    if use_table {
        html.push_str(&format!(
            "<table><tr><td>Made by {brand}</td></tr><tr><td>Weight: {weight}</td></tr>\
             <tr><td>Dimensions: {dims}</td></tr><tr><td>{sku}</td></tr></table>\n"
        ));
    } else {
        html.push_str(&format!(
            "<ul><li>Made by {brand}</li><li>Weight: {weight}</li>\
             <li>Dimensions: {dims}</li><li>{sku}</li></ul>\n"
        ));
    }
    html.push_str(&h("Pricing"));
    html.push_str(&format!("<p>Our Price: {price}</p>\n"));
    html.push_str(&h("Shipping"));
    html.push_str(&format!(
        "<p>Delivery in {} days. {warranty_years} year warranty included.</p>\n",
        rng.gen_range(1..10)
    ));
    html.push_str("</body></html>\n");

    // Ground truth: sections, with spec fields nested under the first
    // identified spec concept (manufacturer leads both layouts).
    let mut truth = XmlDocument::new("catalog-entry");
    let root = truth.root();
    truth.tree.append_child(root, XmlNode::element("product"));
    let specs = truth
        .tree
        .append_child(root, XmlNode::element("specifications"));
    let manufacturer = truth
        .tree
        .append_child(specs, XmlNode::element("manufacturer"));
    truth.tree.append_child(manufacturer, XmlNode::element("weight"));
    truth
        .tree
        .append_child(manufacturer, XmlNode::element("dimensions"));
    truth.tree.append_child(manufacturer, XmlNode::element("sku"));
    let pricing = truth.tree.append_child(root, XmlNode::element("pricing"));
    truth.tree.append_child(pricing, XmlNode::element("price"));
    let shipping = truth.tree.append_child(root, XmlNode::element("shipping"));
    truth.tree.append_child(shipping, XmlNode::element("warranty"));

    GeneratedCatalogPage { html, truth }
}

/// Generates `n` catalog pages.
pub fn generate(seed: u64, n: usize) -> Vec<GeneratedCatalogPage> {
    (0..n).map(|i| generate_one(seed, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_convert::accuracy::logical_errors;
    use webre_convert::{ConvertConfig, Converter};

    fn converter() -> Converter {
        Converter::with_config(
            concepts(),
            ConvertConfig {
                root_concept: "catalog-entry".into(),
                ..ConvertConfig::default()
            },
        )
    }

    #[test]
    fn domain_shape() {
        let set = concepts();
        assert_eq!(set.len(), 10);
        assert_eq!(set.names_with_role(ConceptRole::Title).len(), 4);
        assert_eq!(set.names_with_role(ConceptRole::Content).len(), 6);
        assert!(!constraints().is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_one(7, 3);
        let b = generate_one(7, 3);
        assert_eq!(a.html, b.html);
    }

    #[test]
    fn pages_convert_with_reasonable_accuracy() {
        let converter = converter();
        let pages = generate(11, 15);
        let mut total = 0.0;
        for page in &pages {
            let (xml, _) = converter.convert_str(&page.html);
            total += logical_errors(&xml, &page.truth).error_rate();
        }
        let avg = total / pages.len() as f64;
        assert!(avg < 0.35, "catalog avg error {avg:.3}");
    }

    #[test]
    fn catalog_schema_discoverable() {
        use webre_schema::{extract_paths, FrequentPathMiner};
        let converter = converter();
        let paths: Vec<_> = generate(13, 30)
            .iter()
            .map(|p| extract_paths(&converter.convert_str(&p.html).0))
            .collect();
        let outcome = FrequentPathMiner {
            sup_threshold: 0.5,
            ratio_threshold: 0.3,
            constraints: Some(constraints()),
            max_len: None,
        }
        .mine(&paths)
        .unwrap();
        let schema = outcome.schema;
        assert_eq!(schema.root_label(), "catalog-entry");
        let as_path = |parts: &[&str]| -> Vec<String> {
            parts.iter().map(|s| (*s).to_owned()).collect()
        };
        assert!(schema.contains(&as_path(&["catalog-entry", "specifications"])));
        assert!(schema.contains(&as_path(&["catalog-entry", "pricing", "price"])));
    }
}
