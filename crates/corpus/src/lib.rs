//! Synthetic topic-specific corpus: the experimental substrate.
//!
//! The paper evaluates on ~1400 resume HTML pages gathered from the open
//! Web by a topic-specific crawler — data we do not have. This crate
//! builds the closest synthetic equivalent that exercises the same code
//! paths:
//!
//! * [`data`]/[`pools`] — a resume *content* model sampled from vocabulary
//!   pools (people, institutions, employers, dates, skills, …);
//! * [`style`] — an *authorship* model: every generated document draws a
//!   style (heading markup, list vs table vs paragraph rendering, delimiter
//!   habits, section order/subset, noise quirks), reproducing the paper's
//!   central premise that topic documents are homogeneous in content but
//!   heterogeneous in visual markup;
//! * [`render`] — renders a resume through a style into HTML *and* builds
//!   the ground-truth concept tree a perfect conversion would produce,
//!   enabling the mechanized Figure-4 accuracy metric;
//! * [`generator`] — deterministic seeded corpus generation;
//! * [`crawler`] — a synthetic web graph plus the topic-specific crawler
//!   that harvests resume pages from it (the paper's data-collection
//!   substrate, simulated);
//! * [`catalog`] — a second topic (product catalogs, the paper's Section 5
//!   future-work target) with its own domain and generator, used by the
//!   generality experiment;
//! * [`stream`] — an index-addressed, microsecond-per-document XML
//!   stream for the million-document scale harness (`webre scale`).

pub mod catalog;
pub mod crawler;
pub mod data;
pub mod generator;
pub mod pools;
pub mod render;
pub mod stream;
pub mod style;

pub use data::ResumeData;
pub use generator::{CorpusGenerator, GeneratedResume};
pub use stream::XmlStream;
pub use style::StyleModel;
