//! The authorship style model.
//!
//! The paper's core premise: documents about one topic are written by many
//! authors, so they share information content but differ wildly in visual
//! markup. A [`StyleModel`] captures one author's habits; the renderer
//! consumes it to produce HTML, and each generated document samples a
//! fresh style.

use webre_substrate::rand::seq::SliceRandom;
use webre_substrate::rand::Rng;
use webre_substrate::{impl_json_enum_unit, impl_json_struct};

/// How section headings are marked up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeadingStyle {
    H1,
    H2,
    H3,
    /// `<p><b>Heading</b></p>`
    BoldParagraph,
    /// `<p><u>Heading</u></p>`
    UnderlineParagraph,
    /// Mixed levels: primary sections use `h2`, later ones `h3` (a common
    /// sloppy-author pattern that induces section nesting errors).
    MixedH2H3,
}

/// How repeated entries (education, experience) are laid out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryLayout {
    /// `<ul><li>field, field, field</li>...</ul>`
    BulletList,
    /// `<table><tr><td>field</td>...</tr></table>`
    Table,
    /// `<dl><dt>lead</dt><dd>rest</dd></dl>`
    DefinitionList,
    /// `<p>field, field<br>...</p>` one paragraph per entry
    Paragraphs,
}

/// How the contact block is rendered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContactStyle {
    /// A "Contact Information" heading followed by the fields.
    Headed,
    /// Fields at the top of the page with no heading.
    Bare,
}

/// Resume sections, in canonical order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Section {
    Contact,
    Objective,
    Summary,
    Education,
    Experience,
    Skills,
    Courses,
    Awards,
    Activities,
    Reference,
}

impl Section {
    /// The concept name this section maps to.
    pub fn concept(self) -> &'static str {
        match self {
            Section::Contact => "contact",
            Section::Objective => "objective",
            Section::Summary => "summary",
            Section::Education => "education",
            Section::Experience => "experience",
            Section::Skills => "skills",
            Section::Courses => "courses",
            Section::Awards => "awards",
            Section::Activities => "activities",
            Section::Reference => "reference",
        }
    }

    /// Heading texts authors use for this section (all are concept
    /// instances of the section concept).
    fn heading_pool(self) -> &'static [&'static str] {
        match self {
            Section::Contact => &["Contact Information", "Personal Information"],
            Section::Objective => &["Objective", "Career Objective"],
            Section::Summary => &["Summary", "Profile", "Summary of Qualifications"],
            Section::Education => &["Education", "Educational Background", "Academics"],
            Section::Experience => &["Experience", "Work Experience", "Employment History"],
            Section::Skills => &["Skills", "Technical Skills", "Computer Skills"],
            Section::Courses => &["Relevant Coursework", "Selected Courses"],
            Section::Awards => &["Awards", "Honors", "Achievements"],
            Section::Activities => &["Activities", "Interests", "Hobbies"],
            Section::Reference => &["References", "Reference"],
        }
    }
}

/// One author's rendering habits.
#[derive(Clone, Debug, PartialEq)]
pub struct StyleModel {
    pub heading: HeadingStyle,
    pub entry_layout: EntryLayout,
    pub contact: ContactStyle,
    /// Use semicolons instead of commas between entry fields.
    pub semicolon_fields: bool,
    /// Put the person's name in an `<h1>` (captures the whole page under
    /// the grouping rule — a realistic structural failure source).
    pub h1_name: bool,
    /// Section order (always starts with Contact; rest shuffled lightly).
    pub section_order: Vec<Section>,
    /// Per-section heading text, pre-sampled for determinism.
    pub heading_texts: Vec<(Section, String)>,
    /// Emit a "Last updated <date>" footer (a spurious date source).
    pub updated_footer: bool,
    /// Sprinkle font/center wrappers and &nbsp; padding.
    pub decorative_markup: bool,
    /// Leave some <li>/<p> elements unclosed (tag soup).
    pub sloppy_closing: bool,
}

impl_json_enum_unit!(HeadingStyle {
    H1,
    H2,
    H3,
    BoldParagraph,
    UnderlineParagraph,
    MixedH2H3
});
impl_json_enum_unit!(EntryLayout {
    BulletList,
    Table,
    DefinitionList,
    Paragraphs
});
impl_json_enum_unit!(ContactStyle { Headed, Bare });
impl_json_enum_unit!(Section {
    Contact,
    Objective,
    Summary,
    Education,
    Experience,
    Skills,
    Courses,
    Awards,
    Activities,
    Reference
});
impl_json_struct!(StyleModel {
    heading,
    entry_layout,
    contact,
    semicolon_fields,
    h1_name,
    section_order,
    heading_texts,
    updated_footer,
    decorative_markup,
    sloppy_closing
});

impl StyleModel {
    /// Samples an author style.
    pub fn sample<R: Rng>(rng: &mut R) -> Self {
        let heading = *[
            HeadingStyle::H2,
            HeadingStyle::H2,
            HeadingStyle::H2,
            HeadingStyle::H3,
            HeadingStyle::H1,
            HeadingStyle::BoldParagraph,
            HeadingStyle::UnderlineParagraph,
            HeadingStyle::MixedH2H3,
        ]
        .choose(rng)
        .expect("non-empty");
        let entry_layout = *[
            EntryLayout::BulletList,
            EntryLayout::BulletList,
            EntryLayout::Table,
            EntryLayout::DefinitionList,
            EntryLayout::Paragraphs,
        ]
        .choose(rng)
        .expect("non-empty");

        // Section order: contact first, core sections, optional tail
        // lightly shuffled.
        let mut middle = vec![
            Section::Objective,
            Section::Summary,
            Section::Education,
            Section::Experience,
            Section::Skills,
        ];
        if rng.gen_bool(0.3) {
            middle.swap(2, 3); // experience before education
        }
        let mut tail = vec![
            Section::Courses,
            Section::Awards,
            Section::Activities,
            Section::Reference,
        ];
        tail.shuffle(rng);
        let mut section_order = vec![Section::Contact];
        section_order.extend(middle);
        section_order.extend(tail);

        let heading_texts = section_order
            .iter()
            .map(|s| {
                let text = *s.heading_pool().choose(rng).expect("non-empty");
                (*s, text.to_owned())
            })
            .collect();

        StyleModel {
            heading,
            entry_layout,
            contact: if rng.gen_bool(0.6) {
                ContactStyle::Headed
            } else {
                ContactStyle::Bare
            },
            semicolon_fields: rng.gen_bool(0.25),
            h1_name: rng.gen_bool(0.1),
            section_order,
            heading_texts,
            updated_footer: rng.gen_bool(0.3),
            decorative_markup: rng.gen_bool(0.4),
            sloppy_closing: rng.gen_bool(0.35),
        }
    }

    /// The pre-sampled heading text for a section.
    pub fn heading_text(&self, section: Section) -> &str {
        self.heading_texts
            .iter()
            .find(|(s, _)| *s == section)
            .map(|(_, t)| t.as_str())
            .expect("all sections pre-sampled")
    }

    /// The field delimiter this author uses.
    pub fn field_delimiter(&self) -> &'static str {
        if self.semicolon_fields {
            "; "
        } else {
            ", "
        }
    }

    /// The heading tag for the `index`-th section.
    pub fn heading_tag(&self, index: usize) -> &'static str {
        match self.heading {
            HeadingStyle::H1 => "h1",
            HeadingStyle::H2 => "h2",
            HeadingStyle::H3 => "h3",
            HeadingStyle::BoldParagraph | HeadingStyle::UnderlineParagraph => "p",
            HeadingStyle::MixedH2H3 => {
                if index < 4 {
                    "h2"
                } else {
                    "h3"
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_substrate::rand::rngs::StdRng;
    use webre_substrate::rand::SeedableRng;

    #[test]
    fn sampling_is_deterministic() {
        let a = StyleModel::sample(&mut StdRng::seed_from_u64(3));
        let b = StyleModel::sample(&mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn styles_vary_across_seeds() {
        let styles: Vec<StyleModel> = (0..30)
            .map(|s| StyleModel::sample(&mut StdRng::seed_from_u64(s)))
            .collect();
        let headings: std::collections::HashSet<_> =
            styles.iter().map(|s| format!("{:?}", s.heading)).collect();
        let layouts: std::collections::HashSet<_> = styles
            .iter()
            .map(|s| format!("{:?}", s.entry_layout))
            .collect();
        assert!(headings.len() >= 3, "headings too uniform: {headings:?}");
        assert!(layouts.len() >= 3, "layouts too uniform: {layouts:?}");
    }

    #[test]
    fn contact_is_always_first() {
        for seed in 0..20 {
            let s = StyleModel::sample(&mut StdRng::seed_from_u64(seed));
            assert_eq!(s.section_order[0], Section::Contact);
            assert_eq!(s.section_order.len(), 10);
        }
    }

    #[test]
    fn heading_texts_are_section_instances() {
        use webre_concepts::{matcher::matched_concepts, resume};
        let set = resume::concepts();
        for seed in 0..10 {
            let s = StyleModel::sample(&mut StdRng::seed_from_u64(seed));
            for (section, text) in &s.heading_texts {
                let found = matched_concepts(&set, text);
                assert!(
                    found.contains(&section.concept().to_owned()),
                    "{text:?} does not identify {section:?}: {found:?}"
                );
            }
        }
    }

    #[test]
    fn mixed_heading_tags_split_by_index() {
        let s = StyleModel {
            heading: HeadingStyle::MixedH2H3,
            ..StyleModel::sample(&mut StdRng::seed_from_u64(0))
        };
        assert_eq!(s.heading_tag(0), "h2");
        assert_eq!(s.heading_tag(5), "h3");
    }
}
