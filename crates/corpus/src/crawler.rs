//! Topic-crawler simulation.
//!
//! The paper's corpus was "gathered by a Web crawler [...] programmed to
//! crawl the Web looking for HTML documents that looked like resumes"
//! (IBM's Grand Central crawler). This module simulates that substrate: a
//! synthetic web graph mixing resume pages, off-topic pages and directory
//! (hub) pages, plus a focused crawler that scores fetched pages against
//! the topic concepts and only follows links from relevant pages.

use crate::generator::CorpusGenerator;
use webre_substrate::rand::rngs::StdRng;
use webre_substrate::rand::seq::SliceRandom;
use webre_substrate::rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};
use webre_concepts::{matcher::matched_concepts, ConceptSet};

/// The kind of a synthetic page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageKind {
    /// A generated resume (on-topic).
    Resume,
    /// A hub page linking to many resumes (e.g. a department roster).
    Directory,
    /// Off-topic content.
    OffTopic,
}

/// One page of the synthetic web.
#[derive(Clone, Debug)]
pub struct Page {
    pub id: usize,
    pub kind: PageKind,
    pub html: String,
    pub links: Vec<usize>,
}

/// A synthetic web graph.
#[derive(Clone, Debug)]
pub struct WebGraph {
    pub pages: Vec<Page>,
    pub seeds: Vec<usize>,
}

impl WebGraph {
    /// Builds a graph with `resumes` resume pages, `offtopic` off-topic
    /// pages and one directory hub per ~8 resumes. Links: directories link
    /// resumes and each other; off-topic pages link mostly off-topic.
    pub fn build(seed: u64, resumes: usize, offtopic: usize) -> Self {
        let gen = CorpusGenerator::new(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        let mut pages: Vec<Page> = Vec::new();

        // Resume pages.
        for i in 0..resumes {
            pages.push(Page {
                id: pages.len(),
                kind: PageKind::Resume,
                html: gen.generate_one(i).html,
                links: Vec::new(),
            });
        }
        // Off-topic pages.
        for i in 0..offtopic {
            pages.push(Page {
                id: pages.len(),
                kind: PageKind::OffTopic,
                html: gen.generate_offtopic(i),
                links: Vec::new(),
            });
        }
        // Directory hubs: mention the topic ("Resumes of our students") and
        // link to a batch of resumes plus the next hub.
        let hub_count = resumes.div_ceil(8).max(1);
        let resume_ids: Vec<usize> = (0..resumes).collect();
        let mut hub_ids = Vec::new();
        for h in 0..hub_count {
            let batch: Vec<usize> = resume_ids
                .iter()
                .copied()
                .skip(h * 8)
                .take(8)
                .collect();
            let html = format!(
                "<html><head><title>Student Resumes</title></head><body>\
                 <h2>Student resumes: education, work experience and skills</h2>\
                 <ul>{}</ul></body></html>",
                batch
                    .iter()
                    .map(|i| format!("<li><a href=\"{i}\">resume {i}</a></li>"))
                    .collect::<String>()
            );
            let id = pages.len();
            pages.push(Page {
                id,
                kind: PageKind::Directory,
                html,
                links: batch,
            });
            hub_ids.push(id);
        }
        // Chain hubs together and let off-topic pages link around randomly.
        for w in hub_ids.windows(2) {
            let (a, b) = (w[0], w[1]);
            pages[a].links.push(b);
        }
        let page_count = pages.len();
        for p in pages.iter_mut() {
            if p.kind == PageKind::OffTopic {
                for _ in 0..rng.gen_range(1..4) {
                    p.links.push(rng.gen_range(0..page_count));
                }
            }
        }
        // Resume pages occasionally link to each other (friends' pages).
        for page in pages.iter_mut().take(resumes) {
            if rng.gen_bool(0.2) {
                let target = *resume_ids.choose(&mut rng).expect("non-empty");
                page.links.push(target);
            }
        }
        let seeds = vec![hub_ids[0]];
        WebGraph { pages, seeds }
    }
}

/// Crawl statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CrawlReport {
    /// Pages fetched.
    pub fetched: usize,
    /// Pages judged on-topic and harvested.
    pub harvested: Vec<usize>,
    /// Harvest precision: harvested resumes / harvested pages.
    pub precision: f64,
    /// Harvest recall: harvested resumes / all resumes in the graph.
    pub recall: f64,
}

/// The focused crawler: breadth-first from the seeds, scoring each fetched
/// page by the number of distinct topic concepts its text identifies, and
/// following links only from pages scoring at least `follow_threshold`.
/// Pages scoring at least `harvest_threshold` are harvested.
pub fn crawl(
    graph: &WebGraph,
    concepts: &ConceptSet,
    harvest_threshold: usize,
    follow_threshold: usize,
) -> CrawlReport {
    let mut report = CrawlReport::default();
    let mut visited: HashSet<usize> = HashSet::new();
    let mut queue: VecDeque<usize> = graph.seeds.iter().copied().collect();
    let mut scores: HashMap<usize, usize> = HashMap::new();

    while let Some(id) = queue.pop_front() {
        if !visited.insert(id) {
            continue;
        }
        let page = &graph.pages[id];
        report.fetched += 1;
        let text = webre_html::parse(&page.html).text_content();
        let score = matched_concepts(concepts, &text).len();
        scores.insert(id, score);
        if score >= harvest_threshold && page.kind != PageKind::Directory {
            report.harvested.push(id);
        }
        if score >= follow_threshold {
            for &link in &page.links {
                if !visited.contains(&link) {
                    queue.push_back(link);
                }
            }
        }
    }

    let harvested_resumes = report
        .harvested
        .iter()
        .filter(|id| graph.pages[**id].kind == PageKind::Resume)
        .count();
    let total_resumes = graph
        .pages
        .iter()
        .filter(|p| p.kind == PageKind::Resume)
        .count();
    report.precision = if report.harvested.is_empty() {
        1.0
    } else {
        harvested_resumes as f64 / report.harvested.len() as f64
    };
    report.recall = if total_resumes == 0 {
        1.0
    } else {
        harvested_resumes as f64 / total_resumes as f64
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_concepts::resume;

    #[test]
    fn graph_has_expected_shape() {
        let g = WebGraph::build(5, 16, 10);
        let resumes = g.pages.iter().filter(|p| p.kind == PageKind::Resume).count();
        let hubs = g
            .pages
            .iter()
            .filter(|p| p.kind == PageKind::Directory)
            .count();
        assert_eq!(resumes, 16);
        assert_eq!(hubs, 2);
        assert_eq!(g.pages.len(), 16 + 10 + 2);
        // Every link is a valid page id.
        for p in &g.pages {
            for &l in &p.links {
                assert!(l < g.pages.len());
            }
        }
    }

    #[test]
    fn crawler_harvests_resumes_with_high_precision_and_recall() {
        let g = WebGraph::build(7, 24, 20);
        let report = crawl(&g, &resume::concepts(), 5, 1);
        assert!(report.recall >= 0.9, "recall {}", report.recall);
        assert!(report.precision >= 0.9, "precision {}", report.precision);
        assert!(report.fetched > 24);
    }

    #[test]
    fn strict_follow_threshold_limits_crawl() {
        let g = WebGraph::build(9, 16, 16);
        let lax = crawl(&g, &resume::concepts(), 5, 0);
        let strict = crawl(&g, &resume::concepts(), 5, 3);
        assert!(strict.fetched <= lax.fetched);
    }

    #[test]
    fn offtopic_pages_rarely_harvested() {
        let g = WebGraph::build(11, 16, 16);
        let report = crawl(&g, &resume::concepts(), 5, 1);
        let bad = report
            .harvested
            .iter()
            .filter(|id| g.pages[**id].kind == PageKind::OffTopic)
            .count();
        assert_eq!(bad, 0);
    }

    #[test]
    fn crawl_is_deterministic() {
        let g = WebGraph::build(13, 12, 8);
        let a = crawl(&g, &resume::concepts(), 5, 1);
        let b = crawl(&g, &resume::concepts(), 5, 1);
        assert_eq!(a, b);
    }
}
