//! The resume content model: what a resume *says*, independent of how any
//! particular author marks it up.

use crate::pools;
use webre_substrate::rand::seq::SliceRandom;
use webre_substrate::rand::Rng;
use webre_substrate::impl_json_struct;

/// One education entry.
#[derive(Clone, Debug, PartialEq)]
pub struct EducationEntry {
    pub institution: String,
    pub degree: String,
    /// Rendered as "Major in X" when present.
    pub major: Option<String>,
    pub date: String,
    /// Rendered as "GPA x.y/4.0" when present.
    pub gpa: Option<String>,
}

/// One experience entry.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperienceEntry {
    pub employer: String,
    pub position: String,
    /// Rendered as "based in X" (a `location` instance) when present.
    pub location: Option<String>,
    pub date: String,
    /// Free-text bullets (unidentifiable by design).
    pub bullets: Vec<String>,
}

/// The full content of one resume.
#[derive(Clone, Debug, PartialEq)]
pub struct ResumeData {
    pub name: String,
    pub street: String,
    pub phone: String,
    pub email: String,
    pub objective: String,
    pub summary: Option<String>,
    pub education: Vec<EducationEntry>,
    pub experience: Vec<ExperienceEntry>,
    pub skills: Vec<String>,
    pub courses: Vec<String>,
    pub awards: Vec<String>,
    pub activities: Vec<String>,
    pub reference: String,
}

impl_json_struct!(EducationEntry {
    institution,
    degree,
    major,
    date,
    gpa
});
impl_json_struct!(ExperienceEntry {
    employer,
    position,
    location,
    date,
    bullets
});
impl_json_struct!(ResumeData {
    name,
    street,
    phone,
    email,
    objective,
    summary,
    education,
    experience,
    skills,
    courses,
    awards,
    activities,
    reference
});

fn pick<'a, R: Rng>(rng: &mut R, pool: &[&'a str]) -> &'a str {
    pool.choose(rng).expect("pools are non-empty")
}

fn date<R: Rng>(rng: &mut R) -> String {
    let month = pick(rng, pools::MONTHS);
    let year = rng.gen_range(1990..=2001);
    format!("{month} {year}")
}

fn date_range<R: Rng>(rng: &mut R) -> String {
    let from = date(rng);
    if rng.gen_bool(0.3) {
        format!("{from} - present")
    } else {
        format!("{from} - {}", date(rng))
    }
}

impl ResumeData {
    /// Samples a resume's content. All variability here is *content*;
    /// markup variability lives in [`crate::style`].
    pub fn sample<R: Rng>(rng: &mut R) -> Self {
        let education = (0..rng.gen_range(2..=4))
            .map(|_| EducationEntry {
                institution: pick(rng, pools::INSTITUTIONS).to_owned(),
                degree: pick(rng, pools::DEGREES).to_owned(),
                major: rng
                    .gen_bool(0.4)
                    .then(|| pick(rng, pools::MAJORS).to_owned()),
                date: date(rng),
                gpa: rng
                    .gen_bool(0.5)
                    .then(|| format!("GPA 3.{}/4.0", rng.gen_range(0..=9))),
            })
            .collect();
        let experience = (0..rng.gen_range(2..=5))
            .map(|_| {
                let bullet_count = rng.gen_range(0..=3);
                ExperienceEntry {
                    employer: pick(rng, pools::EMPLOYERS).to_owned(),
                    position: pick(rng, pools::POSITIONS).to_owned(),
                    location: rng
                        .gen_bool(0.4)
                        .then(|| pick(rng, pools::CITIES).to_owned()),
                    date: date_range(rng),
                    bullets: (0..bullet_count)
                        .map(|_| pick(rng, pools::BULLET_TEXTS).to_owned())
                        .collect(),
                }
            })
            .collect();
        let skill_count = rng.gen_range(3..=7);
        let mut skills: Vec<String> = pools::SKILLS
            .choose_multiple(rng, skill_count)
            .map(|s| (*s).to_owned())
            .collect();
        skills.sort_unstable(); // determinism independent of choose order
        let course_count = rng.gen_range(0..=4);
        let courses = pools::COURSES
            .choose_multiple(rng, course_count)
            .map(|s| (*s).to_owned())
            .collect();
        let award_count = rng.gen_range(0..=2);
        let awards = pools::AWARD_TEXTS
            .choose_multiple(rng, award_count)
            .map(|s| (*s).to_owned())
            .collect();
        let activity_count = rng.gen_range(0..=2);
        let activities = pools::ACTIVITY_TEXTS
            .choose_multiple(rng, activity_count)
            .map(|s| (*s).to_owned())
            .collect();
        ResumeData {
            name: format!(
                "{} {}",
                pick(rng, pools::FIRST_NAMES),
                pick(rng, pools::LAST_NAMES)
            ),
            street: format!("{} Main Street", rng.gen_range(100..9999)),
            phone: format!(
                "({}) 555-{:04}",
                rng.gen_range(200..999),
                rng.gen_range(0..9999)
            ),
            email: format!("user{}@example.com", rng.gen_range(1..10_000)),
            objective: pick(rng, pools::OBJECTIVE_TEXTS).to_owned(),
            summary: rng
                .gen_bool(0.5)
                .then(|| pick(rng, pools::SUMMARY_TEXTS).to_owned()),
            education,
            experience,
            skills,
            courses,
            awards,
            activities,
            reference: pools::REFERENCE_TEXTS[1].to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_substrate::rand::rngs::StdRng;
    use webre_substrate::rand::SeedableRng;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = ResumeData::sample(&mut StdRng::seed_from_u64(7));
        let b = ResumeData::sample(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = ResumeData::sample(&mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn mandatory_sections_present() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let r = ResumeData::sample(&mut rng);
            assert!(!r.education.is_empty());
            assert!(!r.experience.is_empty());
            assert!(!r.skills.is_empty());
            assert!(!r.name.is_empty());
            assert!((2..=4).contains(&r.education.len()));
            assert!((2..=5).contains(&r.experience.len()));
        }
    }

    #[test]
    fn dates_mention_months() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = ResumeData::sample(&mut rng);
        for e in &r.education {
            assert!(crate::pools::MONTHS.iter().any(|m| e.date.contains(m)));
        }
    }
}
