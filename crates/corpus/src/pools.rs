//! Vocabulary pools for resume content sampling.
//!
//! Pools are chosen so the *identifiable* fields carry a concept instance
//! (every institution contains "University"/"College"/…, every employer
//! ends in "Inc"/"Corp"/…), mirroring how synonym matching identifies real
//! resume fields, while free text (objectives, bullets, skills) stays
//! instance-free so it exercises the unidentified-token path.

pub const FIRST_NAMES: &[&str] = &[
    "James", "Mary", "Wei", "Priya", "Carlos", "Yuki", "Fatima", "Ivan", "Grace", "Noah",
    "Elena", "Ahmed", "Linh", "Marta", "Kofi", "Sara", "Diego", "Anna", "Ravi", "Mei",
];

pub const LAST_NAMES: &[&str] = &[
    "Smith", "Chen", "Garcia", "Patel", "Tanaka", "Ivanov", "Okafor", "Nguyen", "Silva",
    "Kim", "Mueller", "Rossi", "Haddad", "Kowalski", "Johnson", "Lee", "Brown", "Sato",
];

/// Every entry contains an `institution` concept instance.
pub const INSTITUTIONS: &[&str] = &[
    "University of California at Davis",
    "Stanford University",
    "San Jose State University",
    "Foothill College",
    "Georgia Institute of Technology",
    "Carnegie Mellon University",
    "De Anza Community College",
    "University of Texas at Austin",
    "Purdue University",
    "Boston College",
    "Indian Institute of Technology",
    "National Taiwan University",
];

/// Every entry contains a `degree` concept instance.
pub const DEGREES: &[&str] = &[
    "B.S. in Computer Science",
    "M.S. in Electrical Engineering",
    "Ph.D. in Physics",
    "B.A. in Economics",
    "MBA",
    "B.S. in Mathematics",
    "M.S. in Computer Engineering",
    "Associate Degree in Information Systems",
    "Bachelor of Science in Chemistry",
    "Master of Arts in Linguistics",
];

/// Majors rendered as "Major in X" so the `major` instance matches.
pub const MAJORS: &[&str] = &[
    "Computer Science",
    "Electrical Engineering",
    "Applied Mathematics",
    "Information Systems",
    "Physics",
    "Economics",
];

/// Months for date rendering (all are `date` concept instances).
pub const MONTHS: &[&str] = &[
    "January", "February", "March", "April", "May", "June", "July", "August", "September",
    "October", "November", "December",
];

/// Every entry contains an `employer` concept instance.
pub const EMPLOYERS: &[&str] = &[
    "NehaNet Corp",
    "Verity Inc",
    "Acme Systems Inc",
    "Orion Technologies",
    "Pacific Data Labs",
    "Bluewater Software Corp",
    "Redwood Networks Inc",
    "Quantum Widgets LLC",
    "Cascade Laboratories",
    "Summit Consulting Inc",
    "Gateway Microsystems Corp",
];

/// Every entry contains a `position` concept instance.
pub const POSITIONS: &[&str] = &[
    "Software Engineer",
    "Senior Developer",
    "Staff Analyst",
    "Project Manager",
    "Research Assistant",
    "Database Administrator",
    "Web Developer",
    "QA Engineer",
    "Technical Consultant",
    "Engineering Intern",
    "Solutions Architect",
];

pub const CITIES: &[&str] = &[
    "San Jose", "Sunnyvale", "Davis", "Austin", "Pittsburgh", "Atlanta", "Boston",
    "Seattle", "Denver", "Chicago",
];

/// Instance-free skill terms (exercise the unidentified-token path).
pub const SKILLS: &[&str] = &[
    "C++", "Java", "Perl", "SQL", "HTML", "JavaScript", "Linux", "Windows NT", "TCP/IP",
    "Oracle 8i", "Apache", "XML", "CORBA", "Visual Basic", "Shell scripting", "LaTeX",
];

/// Instance-free course names.
pub const COURSES: &[&str] = &[
    "Data Structures",
    "Operating Systems",
    "Compilers",
    "Computer Networks",
    "Artificial Intelligence",
    "Numerical Analysis",
    "Distributed Computing",
    "Human-Computer Interaction",
];

/// Instance-free award descriptions.
pub const AWARD_TEXTS: &[&str] = &[
    "Dean's List all semesters",
    "Best senior project",
    "National Merit Finalist",
    "Hackathon first place",
    "Perfect attendance citation",
];

/// Instance-free activity descriptions.
pub const ACTIVITY_TEXTS: &[&str] = &[
    "ACM student chapter",
    "Chess club treasurer",
    "Marathon running",
    "Open source contributor",
    "Debate team captain",
];

/// Instance-free objective sentences.
pub const OBJECTIVE_TEXTS: &[&str] = &[
    "A challenging development role in a fast-paced environment",
    "To build large-scale distributed applications",
    "Seeking a full-time role in data engineering",
    "An entry-level role working on compilers and runtimes",
];

/// Instance-free summary sentences.
pub const SUMMARY_TEXTS: &[&str] = &[
    "Five years building web applications end to end",
    "Strong background in algorithms and low-level programming",
    "Self-motivated team player with shipping track record",
];

/// Instance-free experience bullet points.
pub const BULLET_TEXTS: &[&str] = &[
    "Designed and implemented the billing pipeline",
    "Led a team of four building the search backend",
    "Reduced page load times by a factor of three",
    "Wrote test harnesses for the networking stack",
    "Maintained build and release infrastructure",
    "Prototyped the customer analytics dashboard",
];

/// Reference lines (the first matches a `reference` instance by design).
pub const REFERENCE_TEXTS: &[&str] = &[
    "References available upon request",
    "Available on request",
];

#[cfg(test)]
mod tests {
    use super::*;
    use webre_concepts::{matcher::matched_concepts, resume};

    #[test]
    fn identifiable_pools_carry_their_concept() {
        let set = resume::concepts();
        for (pool, concept) in [
            (INSTITUTIONS, "institution"),
            (DEGREES, "degree"),
            (EMPLOYERS, "employer"),
            (POSITIONS, "position"),
        ] {
            for entry in pool {
                let found = matched_concepts(&set, entry);
                assert!(
                    found.contains(&concept.to_owned()),
                    "{entry:?} does not match {concept}: {found:?}"
                );
            }
        }
    }

    #[test]
    fn months_are_date_instances() {
        let set = resume::concepts();
        for m in MONTHS {
            assert_eq!(matched_concepts(&set, m), vec!["date".to_owned()]);
        }
    }

    #[test]
    fn free_text_pools_are_instance_free() {
        let set = resume::concepts();
        for pool in [SKILLS, COURSES, AWARD_TEXTS, ACTIVITY_TEXTS, OBJECTIVE_TEXTS, SUMMARY_TEXTS, BULLET_TEXTS] {
            for entry in pool {
                let found = matched_concepts(&set, entry);
                assert!(
                    found.is_empty(),
                    "{entry:?} unexpectedly matches {found:?}"
                );
            }
        }
    }

    #[test]
    fn pools_are_non_trivial() {
        assert!(FIRST_NAMES.len() >= 10);
        assert!(INSTITUTIONS.len() >= 10);
        assert!(EMPLOYERS.len() >= 10);
    }
}
