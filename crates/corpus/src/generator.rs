//! Deterministic corpus generation.

use crate::data::ResumeData;
use crate::render::{render, Rendered};
use crate::style::StyleModel;
use webre_substrate::rand::rngs::StdRng;
use webre_substrate::rand::{Rng, SeedableRng};
use webre_xml::XmlDocument;

/// One generated document: the HTML a "crawler" would fetch, the content
/// and style that produced it, and the conversion ground truth.
#[derive(Clone, Debug)]
pub struct GeneratedResume {
    pub id: usize,
    pub html: String,
    pub truth: XmlDocument,
    pub data: ResumeData,
    pub style: StyleModel,
}

/// Seeded generator for synthetic resume corpora.
#[derive(Clone, Debug)]
pub struct CorpusGenerator {
    seed: u64,
}

impl CorpusGenerator {
    /// Creates a generator; the same seed yields the same corpus.
    pub fn new(seed: u64) -> Self {
        CorpusGenerator { seed }
    }

    /// Generates the `i`-th document (independent of any other index).
    pub fn generate_one(&self, i: usize) -> GeneratedResume {
        // Derive a per-document rng so documents are independent and the
        // corpus can be generated in any order or in parallel.
        let mut rng = StdRng::seed_from_u64(self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let data = ResumeData::sample(&mut rng);
        let style = StyleModel::sample(&mut rng);
        let Rendered { html, truth } = render(&data, &style, &mut rng);
        GeneratedResume {
            id: i,
            html,
            truth,
            data,
            style,
        }
    }

    /// Generates `n` documents.
    pub fn generate(&self, n: usize) -> Vec<GeneratedResume> {
        (0..n).map(|i| self.generate_one(i)).collect()
    }

    /// Generates a non-topic page (used by the crawler simulation): random
    /// prose with links, no resume structure.
    pub fn generate_offtopic(&self, i: usize) -> String {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xDEAD ^ (i as u64) << 17);
        let paragraphs = rng.gen_range(2..6);
        let mut html = String::from("<html><head><title>Widgets Weekly</title></head><body>\n");
        html.push_str("<h2>Product News</h2>\n");
        for _ in 0..paragraphs {
            let words = rng.gen_range(10..30);
            html.push_str("<p>");
            for w in 0..words {
                html.push_str(["widget ", "gadget ", "press ", "release ", "market ", "story "][w % 6]);
            }
            html.push_str("</p>\n");
        }
        html.push_str("</body></html>\n");
        html
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_concepts::resume;
    use webre_convert::accuracy::logical_errors;
    use webre_convert::Converter;

    #[test]
    fn generation_is_deterministic_and_indexed() {
        let g = CorpusGenerator::new(99);
        let a = g.generate_one(5);
        let b = g.generate_one(5);
        assert_eq!(a.html, b.html);
        let batch = g.generate(8);
        assert_eq!(batch[5].html, a.html);
        assert_ne!(batch[4].html, batch[5].html);
    }

    #[test]
    fn documents_are_heterogeneous() {
        let g = CorpusGenerator::new(1);
        let corpus = g.generate(20);
        let layouts: std::collections::HashSet<String> = corpus
            .iter()
            .map(|d| format!("{:?}{:?}", d.style.entry_layout, d.style.heading))
            .collect();
        assert!(layouts.len() >= 6, "only {} style combos", layouts.len());
    }

    #[test]
    fn corpus_converts_with_paper_ballpark_accuracy() {
        // The Figure-4 sanity check in miniature: the average error rate
        // across a small corpus must be well under 25% (the paper reports
        // 9.2% on real data; our noisy synthetic styles land in the same
        // regime).
        let g = CorpusGenerator::new(2002);
        let converter = Converter::new(resume::concepts());
        let corpus = g.generate(20);
        let mut total_rate = 0.0;
        for doc in &corpus {
            let (xml, _) = converter.convert_str(&doc.html);
            let report = logical_errors(&xml, &doc.truth);
            total_rate += report.error_rate();
        }
        let avg = total_rate / corpus.len() as f64;
        assert!(avg < 0.25, "average error rate {avg:.3} too high");
        assert!(avg > 0.0, "suspiciously perfect — noise features inert?");
    }

    #[test]
    fn offtopic_pages_lack_resume_concepts() {
        use webre_concepts::matcher::matched_concepts;
        let g = CorpusGenerator::new(3);
        let page = g.generate_offtopic(0);
        let found = matched_concepts(&resume::concepts(), &page);
        // "Product News"/widget prose should identify nothing substantive.
        assert!(found.len() <= 1, "{found:?}");
    }

    #[test]
    fn average_concept_count_in_paper_range() {
        let g = CorpusGenerator::new(7);
        let corpus = g.generate(10);
        let avg: f64 = corpus
            .iter()
            .map(|d| d.truth.element_count() as f64)
            .sum::<f64>()
            / corpus.len() as f64;
        // Paper: 53.7 concept nodes per document; our generator lands in
        // the tens as well.
        assert!(avg > 10.0 && avg < 100.0, "avg concept nodes {avg}");
    }
}
