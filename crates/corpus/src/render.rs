//! Rendering: resume content × author style → HTML, plus the ground-truth
//! concept tree a perfect conversion would produce.
//!
//! The ground truth follows the semantics of the paper's rules: each
//! section concept heads its content, and within a repeated entry the
//! *first rendered field's* concept becomes the parent of the remaining
//! fields (that is what the consolidation rule's "replace by the first
//! concept child" yields). Layouts that nest differently (definition
//! lists) get a correspondingly nested truth. Noise features (footers, h1
//! names, mixed headings) deliberately do *not* appear in the truth — they
//! are what produces the Figure-4 error distribution.

use crate::data::{EducationEntry, ExperienceEntry, ResumeData};
use crate::style::{ContactStyle, EntryLayout, HeadingStyle, Section, StyleModel};
use webre_substrate::rand::Rng;
use webre_tree::NodeId;
use webre_xml::{XmlDocument, XmlNode};

/// A rendered resume: heterogeneous HTML plus ground truth.
#[derive(Clone, Debug)]
pub struct Rendered {
    pub html: String,
    pub truth: XmlDocument,
}

/// A (concept, text) field of a repeated entry.
type Field = (&'static str, String);

fn education_fields(e: &EducationEntry) -> Vec<Field> {
    let mut f = vec![
        ("institution", e.institution.clone()),
        ("degree", e.degree.clone()),
    ];
    if let Some(m) = &e.major {
        f.push(("major", format!("Major in {m}")));
    }
    f.push(("date", e.date.clone()));
    if let Some(g) = &e.gpa {
        f.push(("gpa", g.clone()));
    }
    f
}

fn experience_fields(e: &ExperienceEntry) -> Vec<Field> {
    let mut f = vec![
        ("employer", e.employer.clone()),
        ("position", e.position.clone()),
    ];
    if let Some(l) = &e.location {
        f.push(("location", format!("based in {l}")));
    }
    f.push(("date", e.date.clone()));
    f
}

/// Renders one resume through one style.
pub fn render<R: Rng>(data: &ResumeData, style: &StyleModel, rng: &mut R) -> Rendered {
    let mut html = String::with_capacity(4096);
    let mut truth = XmlDocument::new("resume");
    let root = truth.root();

    html.push_str("<html><head><title>Resume</title></head><body>\n");

    // The person's name.
    if style.h1_name {
        html.push_str(&format!("<h1>{}</h1>\n", data.name));
    } else if style.decorative_markup {
        html.push_str(&format!("<center><b>{}</b></center>\n", data.name));
    } else {
        html.push_str(&format!("<p><b>{}</b></p>\n", data.name));
    }

    for (index, section) in style.section_order.iter().enumerate() {
        render_section(data, style, *section, index, &mut html, &mut truth, root, rng);
    }

    if style.updated_footer {
        html.push_str("<p>Last updated June 2001</p>\n");
    }
    html.push_str("</body></html>\n");
    Rendered { html, truth }
}

#[allow(clippy::too_many_arguments)]
fn render_section<R: Rng>(
    data: &ResumeData,
    style: &StyleModel,
    section: Section,
    index: usize,
    html: &mut String,
    truth: &mut XmlDocument,
    root: NodeId,
    rng: &mut R,
) {
    match section {
        Section::Contact => render_contact(data, style, index, html, truth, root),
        Section::Objective => {
            render_text_section(style, section, index, &data.objective, html, truth, root);
        }
        Section::Summary => {
            if let Some(summary) = &data.summary {
                render_text_section(style, section, index, summary, html, truth, root);
            }
        }
        Section::Education => {
            let entries: Vec<Vec<Field>> =
                data.education.iter().map(education_fields).collect();
            render_entries(style, section, index, &entries, &[], html, truth, root, rng);
        }
        Section::Experience => {
            let entries: Vec<Vec<Field>> =
                data.experience.iter().map(experience_fields).collect();
            let bullets: Vec<Vec<String>> =
                data.experience.iter().map(|e| e.bullets.clone()).collect();
            render_entries(style, section, index, &entries, &bullets, html, truth, root, rng);
        }
        Section::Skills => {
            render_list_section(style, section, index, &data.skills, html, truth, root);
        }
        Section::Courses => {
            if !data.courses.is_empty() {
                render_list_section(style, section, index, &data.courses, html, truth, root);
            }
        }
        Section::Awards => {
            if !data.awards.is_empty() {
                render_list_section(style, section, index, &data.awards, html, truth, root);
            }
        }
        Section::Activities => {
            if !data.activities.is_empty() {
                render_list_section(style, section, index, &data.activities, html, truth, root);
            }
        }
        Section::Reference => {
            render_text_section(style, section, index, &data.reference, html, truth, root);
        }
    }
}

/// Writes a section heading in the style's markup.
fn heading(style: &StyleModel, section: Section, index: usize, html: &mut String) {
    let text = style.heading_text(section);
    let tag = style.heading_tag(index);
    match style.heading {
        HeadingStyle::BoldParagraph => {
            html.push_str(&format!("<p><b>{text}</b></p>\n"));
        }
        HeadingStyle::UnderlineParagraph => {
            html.push_str(&format!("<p><u>{text}</u></p>\n"));
        }
        _ => {
            if style.decorative_markup {
                html.push_str(&format!("<{tag}><font color=\"navy\">{text}</font></{tag}>\n"));
            } else {
                html.push_str(&format!("<{tag}>{text}</{tag}>\n"));
            }
        }
    }
}

/// Contact block: fields joined by `<br>` inside one paragraph.
fn render_contact(
    data: &ResumeData,
    style: &StyleModel,
    index: usize,
    html: &mut String,
    truth: &mut XmlDocument,
    root: NodeId,
) {
    let body = format!(
        "<p>{}<br>Phone: {}<br>Email: {}</p>\n",
        data.street, data.phone, data.email
    );
    let parent = if style.contact == ContactStyle::Headed {
        heading(style, Section::Contact, index, html);
        html.push_str(&body);
        truth
            .tree
            .append_child(root, XmlNode::element("contact"))
    } else {
        html.push_str(&body);
        root
    };
    // Ideal conversion: the leading field (address) heads the block.
    let address = truth.tree.append_child(parent, XmlNode::element("address"));
    truth.tree.append_child(address, XmlNode::element("phone"));
    truth.tree.append_child(address, XmlNode::element("email"));
}

/// Heading plus one paragraph of (unidentifiable) text → a lone section
/// concept node in the truth.
fn render_text_section(
    style: &StyleModel,
    section: Section,
    index: usize,
    text: &str,
    html: &mut String,
    truth: &mut XmlDocument,
    root: NodeId,
) {
    heading(style, section, index, html);
    html.push_str(&format!("<p>{text}</p>\n"));
    truth
        .tree
        .append_child(root, XmlNode::element(section.concept()));
}

/// Heading plus a list of unidentifiable items (skills, courses, ...).
fn render_list_section(
    style: &StyleModel,
    section: Section,
    index: usize,
    items: &[String],
    html: &mut String,
    truth: &mut XmlDocument,
    root: NodeId,
) {
    heading(style, section, index, html);
    match style.entry_layout {
        EntryLayout::Paragraphs => {
            html.push_str(&format!("<p>{}</p>\n", items.join(style.field_delimiter())));
        }
        _ => {
            html.push_str("<ul>");
            for item in items {
                if style.sloppy_closing {
                    html.push_str(&format!("<li>{item}"));
                } else {
                    html.push_str(&format!("<li>{item}</li>"));
                }
            }
            html.push_str("</ul>\n");
        }
    }
    truth
        .tree
        .append_child(root, XmlNode::element(section.concept()));
}

/// Heading plus repeated entries in the style's layout.
#[allow(clippy::too_many_arguments)]
fn render_entries<R: Rng>(
    style: &StyleModel,
    section: Section,
    index: usize,
    entries: &[Vec<Field>],
    bullets: &[Vec<String>],
    html: &mut String,
    truth: &mut XmlDocument,
    root: NodeId,
    rng: &mut R,
) {
    heading(style, section, index, html);
    let section_node = truth
        .tree
        .append_child(root, XmlNode::element(section.concept()));
    let delim = style.field_delimiter();
    let pad = |html: &mut String, rng: &mut R| {
        if style.decorative_markup && rng.gen_bool(0.3) {
            html.push_str("&nbsp;");
        }
    };

    match style.entry_layout {
        EntryLayout::BulletList => {
            html.push_str("<ul>\n");
            for (i, fields) in entries.iter().enumerate() {
                let line = fields
                    .iter()
                    .map(|(_, t)| t.clone())
                    .collect::<Vec<_>>()
                    .join(delim);
                html.push_str("<li>");
                html.push_str(&line);
                pad(html, rng);
                if let Some(bs) = bullets.get(i) {
                    if !bs.is_empty() {
                        html.push_str("<ul>");
                        for b in bs {
                            html.push_str(&format!("<li>{b}</li>"));
                        }
                        html.push_str("</ul>");
                    }
                }
                if !style.sloppy_closing {
                    html.push_str("</li>");
                }
                html.push('\n');
            }
            html.push_str("</ul>\n");
            flat_truth(truth, section_node, entries);
        }
        EntryLayout::Paragraphs => {
            for (i, fields) in entries.iter().enumerate() {
                let line = fields
                    .iter()
                    .map(|(_, t)| t.clone())
                    .collect::<Vec<_>>()
                    .join(delim);
                html.push_str("<p>");
                html.push_str(&line);
                if let Some(bs) = bullets.get(i) {
                    for b in bs {
                        html.push_str(&format!("<br>{b}"));
                    }
                }
                if !style.sloppy_closing {
                    html.push_str("</p>");
                }
                html.push('\n');
            }
            flat_truth(truth, section_node, entries);
        }
        EntryLayout::Table => {
            html.push_str("<table>\n");
            for (i, fields) in entries.iter().enumerate() {
                html.push_str("<tr>");
                for (_, text) in fields {
                    html.push_str(&format!("<td>{text}</td>"));
                }
                if let Some(bs) = bullets.get(i) {
                    if !bs.is_empty() {
                        html.push_str(&format!("<td>{}</td>", bs.join(". ")));
                    }
                }
                html.push_str("</tr>\n");
            }
            html.push_str("</table>\n");
            flat_truth(truth, section_node, entries);
        }
        EntryLayout::DefinitionList => {
            html.push_str("<dl>\n");
            for (i, fields) in entries.iter().enumerate() {
                let (_, lead_text) = &fields[0];
                let rest = fields[1..]
                    .iter()
                    .map(|(_, t)| t.clone())
                    .collect::<Vec<_>>()
                    .join(delim);
                html.push_str(&format!("<dt>{lead_text}</dt>"));
                html.push_str("<dd>");
                html.push_str(&rest);
                if let Some(bs) = bullets.get(i) {
                    for b in bs {
                        html.push_str(&format!("<br>{b}"));
                    }
                }
                html.push_str("</dd>\n");
            }
            html.push_str("</dl>\n");
            // dt/dd nesting: lead(second(rest...)).
            for fields in entries {
                let lead = truth
                    .tree
                    .append_child(section_node, XmlNode::element(fields[0].0));
                if fields.len() > 1 {
                    let second = truth
                        .tree
                        .append_child(lead, XmlNode::element(fields[1].0));
                    for (concept, _) in &fields[2..] {
                        truth.tree.append_child(second, XmlNode::element(*concept));
                    }
                }
            }
        }
    }
}

/// Flat entry truth: lead concept parents the remaining fields.
fn flat_truth(truth: &mut XmlDocument, section_node: NodeId, entries: &[Vec<Field>]) {
    for fields in entries {
        let lead = truth
            .tree
            .append_child(section_node, XmlNode::element(fields[0].0));
        for (concept, _) in &fields[1..] {
            truth.tree.append_child(lead, XmlNode::element(*concept));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_substrate::rand::rngs::StdRng;
    use webre_substrate::rand::SeedableRng;
    use webre_convert::accuracy::logical_errors;
    use webre_convert::Converter;
    use webre_concepts::resume;

    fn rendered(seed: u64) -> Rendered {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = ResumeData::sample(&mut rng);
        let style = StyleModel::sample(&mut rng);
        render(&data, &style, &mut rng)
    }

    #[test]
    fn html_contains_key_content() {
        let r = rendered(1);
        assert!(r.html.contains("<html>"));
        assert!(r.html.contains("Phone:"));
        assert!(r.html.contains("Email:"));
        assert!(r.html.len() > 500);
    }

    #[test]
    fn truth_has_resume_root_and_sections() {
        let r = rendered(2);
        assert_eq!(r.truth.root_name(), "resume");
        let labels: Vec<&str> = r
            .truth
            .tree
            .children(r.truth.root())
            .map(|c| r.truth.label(c))
            .collect();
        assert!(labels.contains(&"education"), "{labels:?}");
        assert!(labels.contains(&"experience"), "{labels:?}");
        assert!(labels.contains(&"skills"), "{labels:?}");
    }

    #[test]
    fn truth_nests_entry_fields_under_lead() {
        let r = rendered(3);
        // Find education; its children must be institutions (the lead
        // concept of education entries) for flat layouts, or institutions
        // for dl too.
        let edu = r
            .truth
            .tree
            .children(r.truth.root())
            .find(|c| r.truth.label(*c) == "education")
            .unwrap();
        for entry in r.truth.tree.children(edu) {
            assert_eq!(r.truth.label(entry), "institution");
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = rendered(7);
        let b = rendered(7);
        assert_eq!(a.html, b.html);
        assert!(a
            .truth
            .tree
            .subtree_eq(a.truth.root(), &b.truth.tree, b.truth.root()));
    }

    #[test]
    fn styles_actually_change_markup() {
        let htmls: std::collections::HashSet<String> =
            (0..12).map(|s| rendered(s).html).collect();
        assert!(htmls.len() >= 10, "styles too uniform");
    }

    #[test]
    fn every_layout_heading_combo_converts() {
        // Exhaustive grid over the style dimensions: none may panic, every
        // combination must produce a resume with an education section
        // reachable somewhere in the tree.
        use crate::style::{EntryLayout, HeadingStyle};
        let layouts = [
            EntryLayout::BulletList,
            EntryLayout::Table,
            EntryLayout::DefinitionList,
            EntryLayout::Paragraphs,
        ];
        let headings = [
            HeadingStyle::H1,
            HeadingStyle::H2,
            HeadingStyle::H3,
            HeadingStyle::BoldParagraph,
            HeadingStyle::UnderlineParagraph,
            HeadingStyle::MixedH2H3,
        ];
        let converter = Converter::new(resume::concepts());
        for layout in layouts {
            for heading in headings {
                let mut rng = StdRng::seed_from_u64(77);
                let data = ResumeData::sample(&mut rng);
                let mut style = StyleModel::sample(&mut rng);
                style.entry_layout = layout;
                style.heading = heading;
                style.h1_name = false;
                let r = render(&data, &style, &mut rng);
                let (xml, stats) = converter.convert_str(&r.html);
                assert!(xml.tree.check_integrity().is_ok());
                let found = webre_xml::select::select(&xml, "//education");
                assert!(
                    !found.is_empty(),
                    "no education for {layout:?}/{heading:?}:\n{}",
                    webre_xml::to_xml_pretty(&xml)
                );
                assert!(
                    stats.identification_ratio().unwrap() > 0.3,
                    "{layout:?}/{heading:?}: {stats:?}"
                );
            }
        }
    }

    #[test]
    fn style_model_json_round_trip() {
        let style = StyleModel::sample(&mut StdRng::seed_from_u64(4));
        let json = webre_substrate::json::to_string(&style);
        let back: StyleModel = webre_substrate::json::from_str(&json).unwrap();
        assert_eq!(style, back);
    }

    #[test]
    fn resume_data_json_round_trip() {
        let data = ResumeData::sample(&mut StdRng::seed_from_u64(4));
        let json = webre_substrate::json::to_string(&data);
        let back: ResumeData = webre_substrate::json::from_str(&json).unwrap();
        assert_eq!(data, back);
    }

    #[test]
    fn clean_document_converts_accurately() {
        // A style with no noise features must convert with very few errors:
        // this pins the generator and converter semantics together.
        let mut rng = StdRng::seed_from_u64(11);
        let data = ResumeData::sample(&mut rng);
        let mut style = StyleModel::sample(&mut rng);
        style.h1_name = false;
        style.updated_footer = false;
        style.heading = crate::style::HeadingStyle::H2;
        style.entry_layout = crate::style::EntryLayout::BulletList;
        style.contact = ContactStyle::Headed;
        let r = render(&data, &style, &mut rng);
        let (xml, stats) = Converter::new(resume::concepts()).convert_str(&r.html);
        let report = logical_errors(&xml, &r.truth);
        assert!(
            report.error_rate() < 0.15,
            "error rate {:.2} too high\nextracted:\n{}\ntruth:\n{}\nstats: {stats:?}",
            report.error_rate(),
            webre_xml::to_xml_pretty(&xml),
            webre_xml::to_xml_pretty(&r.truth),
        );
    }
}
