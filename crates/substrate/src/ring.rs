//! Consistent-hash ring with virtual nodes.
//!
//! Routes `u64` keys (content hashes) to node indices such that (a) keys
//! spread evenly across nodes and (b) adding or removing one node remaps
//! only roughly `K/N` of `K` keys — the two properties the scale harness
//! needs to front several `webre serve` instances without reshuffling
//! the whole corpus on membership changes.
//!
//! Each node contributes `replicas` points on a `u64` circle; a key
//! routes to the node owning the first point at or clockwise of the
//! key's position. Point positions are derived deterministically from
//! `(node, replica)` via SplitMix64, so two rings built with the same
//! membership — in any insertion order — route identically.

use crate::rand::{RngCore, SplitMix64};

/// Default virtual-node count per physical node: enough for the max/min
/// load ratio to stay comfortably under 2 at small cluster sizes.
pub const DEFAULT_REPLICAS: usize = 128;

/// A consistent-hash ring mapping `u64` keys to `u32` node ids.
#[derive(Clone, Debug)]
pub struct HashRing {
    replicas: usize,
    /// Sorted `(position, node)` points on the circle.
    points: Vec<(u64, u32)>,
    nodes: Vec<u32>,
}

/// Position on the circle of virtual point `replica` of `node`.
fn point(node: u32, replica: usize) -> u64 {
    // Mix node and replica into one seed; SplitMix64's output pass
    // spreads consecutive seeds uniformly over the u64 circle.
    let seed = (u64::from(node) << 32) ^ (replica as u64);
    SplitMix64::new(seed).next_u64()
}

impl HashRing {
    /// An empty ring with the given virtual-node count per node.
    pub fn new(replicas: usize) -> HashRing {
        HashRing {
            replicas: replicas.max(1),
            points: Vec::new(),
            nodes: Vec::new(),
        }
    }

    /// A ring containing nodes `0..n` with [`DEFAULT_REPLICAS`].
    pub fn with_nodes(n: u32) -> HashRing {
        let mut ring = HashRing::new(DEFAULT_REPLICAS);
        for node in 0..n {
            ring.add(node);
        }
        ring
    }

    /// Adds a node. Adding an existing node is a no-op.
    pub fn add(&mut self, node: u32) {
        if self.nodes.contains(&node) {
            return;
        }
        self.nodes.push(node);
        self.nodes.sort_unstable();
        for replica in 0..self.replicas {
            self.points.push((point(node, replica), node));
        }
        // Sort by position, with node id as tie-break so collisions (if
        // any) resolve identically regardless of insertion order.
        self.points.sort_unstable();
    }

    /// Removes a node. Removing an absent node is a no-op.
    pub fn remove(&mut self, node: u32) {
        self.nodes.retain(|n| *n != node);
        self.points.retain(|(_, n)| *n != node);
    }

    /// Routes a key to a node: the owner of the first point at or after
    /// the key, wrapping around. `None` only on an empty ring.
    pub fn route(&self, key: u64) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let idx = self.points.partition_point(|(pos, _)| *pos < key);
        let (_, node) = self.points[if idx == self.points.len() { 0 } else { idx }];
        Some(node)
    }

    /// Current members, sorted.
    pub fn nodes(&self) -> &[u32] {
        &self.nodes
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic stream of well-spread keys for load tests.
    fn keys(n: usize) -> Vec<u64> {
        let mut mixer = SplitMix64::new(0x5eed);
        (0..n).map(|_| mixer.next_u64()).collect()
    }

    fn load(ring: &HashRing, keys: &[u64]) -> std::collections::HashMap<u32, usize> {
        let mut counts = std::collections::HashMap::new();
        for key in keys {
            *counts.entry(ring.route(*key).unwrap()).or_insert(0) += 1;
        }
        counts
    }

    #[test]
    fn empty_ring_routes_nothing() {
        assert_eq!(HashRing::new(8).route(42), None);
        assert!(HashRing::new(8).is_empty());
    }

    #[test]
    fn single_node_takes_everything() {
        let ring = HashRing::with_nodes(1);
        for key in keys(100) {
            assert_eq!(ring.route(key), Some(0));
        }
    }

    #[test]
    fn routing_is_deterministic_and_insertion_order_independent() {
        let mut forward = HashRing::new(64);
        for node in 0..5 {
            forward.add(node);
        }
        let mut backward = HashRing::new(64);
        for node in (0..5).rev() {
            backward.add(node);
        }
        for key in keys(2000) {
            assert_eq!(forward.route(key), backward.route(key));
        }
        assert_eq!(forward.nodes(), backward.nodes());
    }

    #[test]
    fn duplicate_add_and_absent_remove_are_noops() {
        let mut ring = HashRing::with_nodes(3);
        let before = ring.clone();
        ring.add(1);
        ring.remove(99);
        for key in keys(500) {
            assert_eq!(ring.route(key), before.route(key));
        }
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn load_is_balanced_across_nodes() {
        // Property: with DEFAULT_REPLICAS virtual nodes, every node's
        // share of a large uniform key stream stays within 2x of the
        // fair share in both directions, for several cluster sizes.
        let sample = keys(40_000);
        for n in [2u32, 3, 4, 5, 8] {
            let ring = HashRing::with_nodes(n);
            let counts = load(&ring, &sample);
            assert_eq!(counts.len(), n as usize, "every node owns keys at n={n}");
            let fair = sample.len() as f64 / f64::from(n);
            for (node, count) in &counts {
                let share = *count as f64 / fair;
                assert!(
                    (0.5..=2.0).contains(&share),
                    "node {node} of {n} holds {count} keys ({share:.2}x fair share)"
                );
            }
        }
    }

    #[test]
    fn adding_a_node_moves_only_its_fair_share() {
        // Property: growing N -> N+1 nodes remaps ~K/(N+1) keys, and
        // every remapped key lands on the new node (no churn between
        // surviving nodes).
        let sample = keys(20_000);
        for n in [2u32, 4, 7] {
            let old = HashRing::with_nodes(n);
            let mut new = old.clone();
            new.add(n);
            let mut moved = 0usize;
            for key in &sample {
                let before = old.route(*key).unwrap();
                let after = new.route(*key).unwrap();
                if before != after {
                    moved += 1;
                    assert_eq!(after, n, "a remapped key must land on the new node");
                }
            }
            let expected = sample.len() as f64 / f64::from(n + 1);
            let ratio = moved as f64 / expected;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "n={n}: {moved} keys moved, expected ~{expected:.0} ({ratio:.2}x)"
            );
        }
    }

    #[test]
    fn removing_a_node_moves_only_its_keys() {
        // Property: shrinking by one node remaps exactly the removed
        // node's keys; keys on surviving nodes never move.
        let sample = keys(20_000);
        let full = HashRing::with_nodes(5);
        for victim in 0..5u32 {
            let mut shrunk = full.clone();
            shrunk.remove(victim);
            for key in &sample {
                let before = full.route(*key).unwrap();
                let after = shrunk.route(*key).unwrap();
                if before != victim {
                    assert_eq!(before, after, "keys on surviving nodes must not move");
                } else {
                    assert_ne!(after, victim);
                }
            }
        }
    }

    #[test]
    fn remove_then_readd_restores_routing() {
        let sample = keys(5000);
        let original = HashRing::with_nodes(4);
        let mut cycled = original.clone();
        cycled.remove(2);
        cycled.add(2);
        for key in &sample {
            assert_eq!(original.route(*key), cycled.route(*key));
        }
    }
}
