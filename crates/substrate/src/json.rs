//! Minimal JSON: a value type, a strict parser, compact and pretty
//! serializers, and `ToJson`/`FromJson` conversion traits with
//! derive-like macros.
//!
//! Replaces `serde`/`serde_json` for the workspace's needs: domain files
//! authored as JSON (`webre_concepts::Domain`-style), style/content
//! model round trips, and bench output records. Conventions match what
//! serde produced for the same types, so previously-authored domain JSON
//! keeps parsing:
//!
//! * structs → objects with one member per field, in declaration order;
//! * unit enum variants → strings (`"Title"`);
//! * newtype variants → single-member objects (`{"MaxDepth": 3}`);
//! * struct variants → `{"Variant": {field: ...}}`;
//! * `Option::None` → `null`, and absent members read back as `null`.
//!
//! ```
//! use webre_substrate::json::Json;
//!
//! let v = Json::parse(r#"{"name": "price", "tags": ["a", "b"]}"#).unwrap();
//! assert_eq!(v.get("name").and_then(Json::as_str), Some("price"));
//! assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object members preserve insertion order so serialized
/// output is deterministic and diffs stay readable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// A conversion or parse error, with enough context to locate the issue.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Builds an object value from (key, value) pairs.
    pub fn obj(members: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Member lookup on objects (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parses a complete JSON document (trailing non-whitespace is an
    /// error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Serializes compactly.
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, level + 1);
            }),
            Json::Obj(members) => {
                write_seq(out, indent, level, '{', '}', members.len(), |out, i| {
                    write_string(out, &members[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    members[i].1.write(out, indent, level + 1);
                })
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string())
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (level + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * level));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; fail safe to null like serde_json's lossy
        // modes rather than emitting unparseable output.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return err("nesting too deep");
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => err(format!("unexpected {:?} at byte {}", b as char, self.pos)),
            None => err("unexpected end of input"),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return err("invalid low surrogate");
                                    }
                                    let code =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| JsonError("bad surrogate pair".into()))?
                                } else {
                                    return err("lone high surrogate");
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return err("lone low surrogate");
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| JsonError("bad \\u escape".into()))?
                            };
                            out.push(c);
                        }
                        _ => return err(format!("bad escape \\{}", esc as char)),
                    }
                }
                Some(b) if b < 0x20 => return err("raw control character in string"),
                Some(_) => unreachable!("fast path consumed plain bytes"),
                None => return err("unterminated string"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
        let text =
            std::str::from_utf8(chunk).map_err(|_| JsonError("bad \\u escape".into()))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| JsonError("bad \\u escape".into()))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii number bytes");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => err(format!("invalid number {text:?}")),
        }
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(value.clone())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Str(s) => Ok(s.clone()),
            other => err(format!("expected string, got {other}")),
        }
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_bool()
            .ok_or_else(|| JsonError(format!("expected bool, got {value}")))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_f64()
            .ok_or_else(|| JsonError(format!("expected number, got {value}")))
    }
}

macro_rules! impl_json_int {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $ty {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                let n = value
                    .as_f64()
                    .ok_or_else(|| JsonError(format!("expected number, got {value}")))?;
                if n != n.trunc() {
                    return err(format!("expected integer, got {n}"));
                }
                if n < <$ty>::MIN as f64 || n > <$ty>::MAX as f64 {
                    return err(format!("integer {n} out of range"));
                }
                Ok(n as $ty)
            }
        }
    )*};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => err(format!("expected array, got {other}")),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_arr() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => err(format!("expected 2-element array, got {value}")),
        }
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Obj(members) => members
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            other => err(format!("expected object, got {other}")),
        }
    }
}

/// Implements [`ToJson`]/[`FromJson`] for a struct: one object member per
/// field, in declaration order; absent members read back as `null` (so
/// `Option` fields may be omitted).
///
/// ```
/// use webre_substrate::impl_json_struct;
/// use webre_substrate::json::{FromJson, Json, ToJson};
///
/// #[derive(Debug, PartialEq)]
/// struct Point { x: i32, y: i32, label: Option<String> }
/// impl_json_struct!(Point { x, y, label });
///
/// let p = Point { x: 1, y: 2, label: None };
/// let back = Point::from_json(&Json::parse(&p.to_json().to_string()).unwrap()).unwrap();
/// assert_eq!(back, p);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_owned(), self.$field.to_json()),)+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                value: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                if !matches!(value, $crate::json::Json::Obj(_)) {
                    return Err($crate::json::JsonError(format!(
                        concat!("expected ", stringify!($ty), " object, got {}"),
                        value
                    )));
                }
                Ok($ty {
                    $($field: $crate::json::FromJson::from_json(
                        value.get(stringify!($field)).unwrap_or(&$crate::json::Json::Null),
                    )
                    .map_err(|e| $crate::json::JsonError(format!(
                        concat!(stringify!($ty), ".", stringify!($field), ": {}"),
                        e.0
                    )))?,)+
                })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a field-less enum: each variant
/// serializes as its name string (serde's externally-tagged unit-variant
/// convention).
#[macro_export]
macro_rules! impl_json_enum_unit {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                match self {
                    $($ty::$variant => $crate::json::Json::Str(stringify!($variant).to_owned()),)+
                }
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                value: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                match value.as_str() {
                    $(Some(stringify!($variant)) => Ok($ty::$variant),)+
                    _ => Err($crate::json::JsonError(format!(
                        concat!("unknown ", stringify!($ty), " variant {}"),
                        value
                    ))),
                }
            }
        }
    };
}

/// Serializes any [`ToJson`] value compactly (mirrors
/// `serde_json::to_string`).
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string()
}

/// Serializes any [`ToJson`] value with indentation (mirrors
/// `serde_json::to_string_pretty`).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

/// Parses JSON text into any [`FromJson`] type (mirrors
/// `serde_json::from_str`).
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(Json::parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures_and_preserves_order() {
        let v = Json::parse(r#"{"b": [1, 2, {"c": null}], "a": "x"}"#).unwrap();
        match &v {
            Json::Obj(members) => {
                assert_eq!(members[0].0, "b");
                assert_eq!(members[1].0, "a");
            }
            other => panic!("not an object: {other:?}"),
        }
        assert_eq!(v.get("a").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "{not json", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2",
            "{\"a\" 1}", "[1 2]", "", "  ", "\u{7}", "nul", "+1", "01x",
            "\"\\u12\"", "\"\\q\"", "\"\\ud800\"", "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let cases = [
            "plain",
            "with \"quotes\" and \\backslash\\",
            "tabs\tnewlines\nreturns\r",
            "control \u{1} \u{1f}",
            "unicode: caf\u{e9} \u{1F393} \u{4e2d}\u{6587}",
            "",
        ];
        for s in cases {
            let v = Json::Str(s.to_owned());
            let text = v.to_string();
            assert_eq!(Json::parse(&text).unwrap(), v, "via {text}");
        }
    }

    #[test]
    fn surrogate_pair_decoding() {
        assert_eq!(
            Json::parse(r#""\ud83c\udf93""#).unwrap(),
            Json::Str("\u{1F393}".to_owned())
        );
        assert!(Json::parse(r#""\ud83c""#).is_err());
        assert!(Json::parse(r#""\udf93""#).is_err());
    }

    #[test]
    fn nested_round_trip_compact_and_pretty() {
        let v = Json::obj([
            ("name", Json::Str("x".into())),
            (
                "items",
                Json::Arr(vec![
                    Json::Num(1.0),
                    Json::Arr(vec![Json::Bool(true), Json::Null]),
                    Json::obj([("deep", Json::Arr(vec![]))]),
                ]),
            ),
        ]);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn integers_stay_integral_in_output() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(-41.0).to_string(), "-41");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let mut text = String::new();
        for _ in 0..5000 {
            text.push('[');
        }
        assert!(Json::parse(&text).is_err());
    }

    #[test]
    fn conversion_traits_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let text = to_string(&v);
        assert_eq!(text, "[1,null,3]");
        let back: Vec<Option<u32>> = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert!(from_str::<u32>("1.5").is_err());
        assert!(from_str::<u32>("-1").is_err());
        assert!(from_str::<i8>("1000").is_err());
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        id: u32,
        tag: Option<String>,
        items: Vec<String>,
    }
    impl_json_struct!(Demo { id, tag, items });

    #[test]
    fn struct_macro_round_trip_and_missing_optional() {
        let d = Demo {
            id: 7,
            tag: None,
            items: vec!["a".into()],
        };
        let back: Demo = from_str(&to_string(&d)).unwrap();
        assert_eq!(back, d);
        // Absent optional field reads as None; absent required errors.
        let partial: Demo = from_str(r#"{"id": 1, "items": []}"#).unwrap();
        assert_eq!(partial.tag, None);
        assert!(from_str::<Demo>(r#"{"tag": "x", "items": []}"#).is_err());
        assert!(from_str::<Demo>("[]").is_err());
    }

    #[derive(Debug, PartialEq)]
    enum Flavor {
        Sweet,
        Sour,
    }
    impl_json_enum_unit!(Flavor { Sweet, Sour });

    #[test]
    fn enum_macro_round_trip() {
        assert_eq!(to_string(&Flavor::Sour), "\"Sour\"");
        assert_eq!(from_str::<Flavor>("\"Sweet\"").unwrap(), Flavor::Sweet);
        assert!(from_str::<Flavor>("\"Bitter\"").is_err());
        assert!(from_str::<Flavor>("3").is_err());
    }
}
