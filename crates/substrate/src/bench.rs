//! Monotonic-clock micro-benchmark harness with a criterion-shaped API.
//!
//! Replaces `criterion` for this workspace's benches. Each benchmark is
//! warmed up, then timed over a fixed number of samples whose per-sample
//! iteration count is auto-calibrated; the harness reports the median and
//! p95 per-iteration time and appends one JSON line per benchmark to the
//! output file (`BENCH_pipeline.json` at the workspace root by default).
//! Appending lets several bench binaries in one `cargo bench` run share
//! the file; `scripts/bench.sh` truncates it at the start of each run so
//! the file holds exactly one snapshot rather than growing forever.
//!
//! The call surface mirrors the subset of criterion the benches use, so a
//! bench file migrates by swapping its `use` line:
//!
//! ```no_run
//! use webre_substrate::bench::{
//!     criterion_group, criterion_main, BenchmarkId, Criterion, Throughput,
//! };
//!
//! fn bench_sort(c: &mut Criterion) {
//!     let mut group = c.benchmark_group("vec");
//!     group.throughput(Throughput::Elements(1000));
//!     group.bench_function("sort", |b| {
//!         b.iter(|| {
//!             let mut v: Vec<u64> = (0..1000).rev().collect();
//!             v.sort_unstable();
//!             std::hint::black_box(v)
//!         })
//!     });
//!     group.finish();
//! }
//!
//! criterion_group!(benches, bench_sort);
//! criterion_main!(benches);
//! ```
//!
//! Environment knobs:
//! * `WEBRE_BENCH_OUT` — JSON-lines output path (empty string disables);
//! * `WEBRE_BENCH_SAMPLES` — samples per benchmark (default 20);
//! * `WEBRE_BENCH_SAMPLE_MS` — target milliseconds per sample (default 5).

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Work-normalization declared by a benchmark, echoed into the report.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A parameterized benchmark id (mirrors `criterion::BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id that is just the parameter's display form.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), param),
        }
    }
}

/// Passed to the measured closure; `iter` times the workload.
pub struct Bencher {
    samples: usize,
    target_sample: Duration,
    /// Per-iteration nanoseconds, one entry per sample.
    per_iter_ns: Vec<f64>,
    total_iters: u64,
}

impl Bencher {
    /// Times `routine`: warmup, calibration, then the sample loop.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup + calibration: run until we know roughly how long one
        // iteration takes (and the code paths are hot).
        let mut calibration_iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..calibration_iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || calibration_iters >= 1 << 24 {
                break elapsed.as_secs_f64() / calibration_iters as f64;
            }
            calibration_iters *= 4;
        };
        let iters_per_sample =
            ((self.target_sample.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            self.per_iter_ns
                .push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
            self.total_iters += iters_per_sample;
        }
    }
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// `group/function` name.
    pub name: String,
    /// Median per-iteration nanoseconds.
    pub median_ns: f64,
    /// 95th-percentile per-iteration nanoseconds.
    pub p95_ns: f64,
    /// Samples measured.
    pub samples: usize,
    /// Total iterations across all samples.
    pub iters: u64,
    /// Declared throughput, if any.
    pub throughput: Option<Throughput>,
}

impl BenchRecord {
    fn json_line(&self) -> String {
        use crate::json::Json;
        let mut members = vec![
            ("bench".to_owned(), Json::Str(self.name.clone())),
            ("median_ns".to_owned(), Json::Num(round2(self.median_ns))),
            ("p95_ns".to_owned(), Json::Num(round2(self.p95_ns))),
            ("samples".to_owned(), Json::Num(self.samples as f64)),
            ("iters".to_owned(), Json::Num(self.iters as f64)),
        ];
        match self.throughput {
            Some(Throughput::Bytes(n)) => {
                members.push(("bytes".to_owned(), Json::Num(n as f64)));
                if self.median_ns > 0.0 {
                    let mibps = n as f64 / (self.median_ns / 1e9) / (1024.0 * 1024.0);
                    members.push(("mib_per_s".to_owned(), Json::Num(round2(mibps))));
                }
            }
            Some(Throughput::Elements(n)) => {
                members.push(("elements".to_owned(), Json::Num(n as f64)));
                if self.median_ns > 0.0 {
                    let eps = n as f64 / (self.median_ns / 1e9);
                    members.push(("elem_per_s".to_owned(), Json::Num(round2(eps))));
                }
            }
            None => {}
        }
        Json::Obj(members).to_string()
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The harness root: collects records and writes the report.
pub struct Criterion {
    samples: usize,
    target_sample: Duration,
    out_path: Option<std::path::PathBuf>,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Criterion {
    /// Builds a harness configured from the environment.
    pub fn from_env() -> Self {
        let samples = std::env::var("WEBRE_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|v| *v > 0)
            .unwrap_or(20);
        let sample_ms = std::env::var("WEBRE_BENCH_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|v| *v > 0)
            .unwrap_or(5u64);
        let out_path = match std::env::var("WEBRE_BENCH_OUT") {
            Ok(p) if p.is_empty() => None,
            Ok(p) => Some(std::path::PathBuf::from(p)),
            Err(_) => Some(default_out_path()),
        };
        Criterion {
            samples,
            target_sample: Duration::from_millis(sample_ms),
            out_path,
            records: Vec::new(),
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        self.run(name.to_owned(), None, None, f);
    }

    fn run(
        &mut self,
        name: String,
        throughput: Option<Throughput>,
        sample_size: Option<usize>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let mut bencher = Bencher {
            samples: sample_size.unwrap_or(self.samples),
            target_sample: self.target_sample,
            per_iter_ns: Vec::new(),
            total_iters: 0,
        };
        f(&mut bencher);
        let mut ns = bencher.per_iter_ns;
        if ns.is_empty() {
            // The closure never called iter(); nothing to report.
            return;
        }
        ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = ns[ns.len() / 2];
        let p95 = ns[((ns.len() as f64 * 0.95) as usize).min(ns.len() - 1)];
        let record = BenchRecord {
            name,
            median_ns: median,
            p95_ns: p95,
            samples: ns.len(),
            iters: bencher.total_iters,
            throughput,
        };
        println!(
            "bench {:<44} median {:>10}  p95 {:>10}  ({} samples)",
            record.name,
            human_time(record.median_ns),
            human_time(record.p95_ns),
            record.samples,
        );
        self.records.push(record);
    }

    /// Writes the JSON-lines report and prints a footer. Called by
    /// [`criterion_main!`] after all groups ran.
    pub fn final_summary(&mut self) {
        let Some(path) = &self.out_path else {
            return;
        };
        let result = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut file| {
                for r in &self.records {
                    writeln!(file, "{}", r.json_line())?;
                }
                Ok(())
            });
        match result {
            Ok(()) => println!(
                "{} record(s) appended to {}",
                self.records.len(),
                path.display()
            ),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }

    /// The records measured so far (used by harness tests).
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }
}

/// Default output: `BENCH_pipeline.json` at the workspace root (where the
/// other `BENCH_*.json` trajectory files live), falling back to the
/// current directory when the workspace root cannot be located.
fn default_out_path() -> std::path::PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
    // Benches run with CWD at the crate root; walk up to the workspace
    // root (the first ancestor containing a ROADMAP.md).
    loop {
        if dir.join("ROADMAP.md").is_file() {
            return dir.join("BENCH_pipeline.json");
        }
        if !dir.pop() {
            return std::path::PathBuf::from("BENCH_pipeline.json");
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, samples: usize) {
        self.sample_size = Some(samples.max(1));
    }

    /// Runs a benchmark named `group/name`.
    pub fn bench_function(&mut self, name: impl fmt::Display, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name);
        self.criterion
            .run(full, self.throughput, self.sample_size, f);
    }

    /// Runs a parameterized benchmark with an input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let full = format!("{}/{}", self.name, id.label);
        self.criterion
            .run(full, self.throughput, self.sample_size, |b| f(b, input));
    }

    /// Ends the group (report writing happens in [`Criterion::final_summary`]).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::bench::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emits `main` running the given groups (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::bench::Criterion::from_env();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

// Re-export the macros under `bench::` so `use
// webre_substrate::bench::{criterion_group, criterion_main}` works like
// the criterion imports they replace.
pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> Criterion {
        Criterion {
            samples: 4,
            target_sample: Duration::from_micros(200),
            out_path: None,
            records: Vec::new(),
        }
    }

    #[test]
    fn measures_and_records() {
        let mut c = quiet();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("push", |b| {
            b.iter(|| {
                let mut v = Vec::with_capacity(64);
                for i in 0..64u64 {
                    v.push(i);
                }
                std::hint::black_box(v)
            })
        });
        group.finish();
        assert_eq!(c.records().len(), 1);
        let r = &c.records()[0];
        assert_eq!(r.name, "g/push");
        assert!(r.median_ns > 0.0);
        assert!(r.p95_ns >= r.median_ns);
        assert!(r.iters >= r.samples as u64);
    }

    #[test]
    fn json_line_is_parseable() {
        let record = BenchRecord {
            name: "g/x".into(),
            median_ns: 123.456,
            p95_ns: 234.5,
            samples: 20,
            iters: 4000,
            throughput: Some(Throughput::Elements(10)),
        };
        let line = record.json_line();
        let parsed = crate::json::Json::parse(&line).expect("valid json line");
        assert_eq!(parsed.get("bench").and_then(|v| v.as_str()), Some("g/x"));
        assert_eq!(parsed.get("samples").and_then(|v| v.as_f64()), Some(20.0));
        assert!(parsed.get("elem_per_s").is_some());
    }

    #[test]
    fn bench_with_input_names_by_parameter() {
        let mut c = quiet();
        let mut group = c.benchmark_group("scale");
        let n = 32usize;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| std::hint::black_box((0..n).sum::<usize>()))
        });
        group.finish();
        assert_eq!(c.records()[0].name, "scale/32");
    }
}
