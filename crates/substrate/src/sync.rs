//! Bounded multi-producer/multi-consumer channel (mutex + condvar).
//!
//! `std::sync::mpsc` is single-consumer and its bounded variant parks
//! producers with no way to *reject* work, so it cannot express the
//! backpressure policy the serving subsystem needs: a full queue must
//! turn into an immediate `429 Too Many Requests`, never unbounded
//! memory growth or a blocked accept loop. This channel is the smallest
//! std-only primitive that covers both serving and draining:
//!
//! * [`Sender::try_send`] — non-blocking; returns the value in
//!   [`TrySendError::Full`] so the caller can respond with backpressure;
//! * [`Sender::send`] — blocking, for callers that prefer waiting;
//! * [`Receiver::recv`] — blocking pop; returns `None` once every sender
//!   is dropped (or the channel is closed) *and* the queue is empty, so
//!   consumers drain outstanding work before exiting — the graceful
//!   shutdown contract;
//! * [`close`](Sender::close) — wakes every waiter immediately without
//!   discarding queued items.
//!
//! Both endpoints are `Clone`; FIFO order is global (a single `VecDeque`
//! under one mutex), so jobs are served in arrival order regardless of
//! which worker pops them.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::try_send`], carrying the unsent value.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity.
    Full(T),
    /// The channel is closed (every receiver dropped, or `close` called).
    Closed(T),
}

/// Error returned by [`Sender::send`], carrying the unsent value.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

struct Shared<T> {
    queue: Mutex<State<T>>,
    /// Signalled when an item is pushed (wakes receivers).
    not_empty: Condvar,
    /// Signalled when an item is popped (wakes blocked senders).
    not_full: Condvar,
}

struct State<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
    senders: usize,
    receivers: usize,
}

/// The sending half of a bounded channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a bounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded FIFO channel with room for `capacity` queued items.
/// A capacity of zero is rounded up to one (a zero-capacity rendezvous
/// channel is not useful for a job queue).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(State {
            items: VecDeque::new(),
            capacity: capacity.max(1),
            closed: false,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Pushes without blocking; a full or closed queue returns the value.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        if state.closed || state.receivers == 0 {
            return Err(TrySendError::Closed(value));
        }
        if state.items.len() >= state.capacity {
            return Err(TrySendError::Full(value));
        }
        state.items.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Pushes, blocking while the queue is full. Fails only when the
    /// channel closes while waiting.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        loop {
            if state.closed || state.receivers == 0 {
                return Err(SendError(value));
            }
            if state.items.len() < state.capacity {
                state.items.push_back(value);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .expect("channel poisoned");
        }
    }

    /// Closes the channel: senders start failing immediately, receivers
    /// drain what is queued and then observe `None`.
    pub fn close(&self) {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        state.closed = true;
        drop(state);
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }

    /// Items currently queued (racy; for metrics/diagnostics only).
    pub fn len(&self) -> usize {
        self.shared.queue.lock().expect("channel poisoned").items.len()
    }

    /// Whether the queue is currently empty (racy; diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Pops the oldest item, blocking while the queue is empty. Returns
    /// `None` once the channel is closed (or every sender is gone) and
    /// the queue has drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if state.closed || state.senders == 0 {
                return None;
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .expect("channel poisoned");
        }
    }

    /// Pops without blocking; `None` when the queue is currently empty
    /// (whether or not the channel is closed).
    pub fn try_recv(&self) -> Option<T> {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        let item = state.items.pop_front();
        if item.is_some() {
            drop(state);
            self.shared.not_full.notify_one();
        }
        item
    }

    /// Items currently queued (racy; for metrics/diagnostics only).
    pub fn len(&self) -> usize {
        self.shared.queue.lock().expect("channel poisoned").items.len()
    }

    /// Whether the queue is currently empty (racy; diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().expect("channel poisoned").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().expect("channel poisoned").receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Receivers must wake to observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            // Blocked senders must wake to observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.try_send(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.recv(), Some(i));
        }
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn try_send_full_returns_value() {
        let (tx, _rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(tx.len(), 2);
    }

    #[test]
    fn zero_capacity_rounds_up_to_one() {
        let (tx, rx) = bounded(0);
        tx.try_send(7).unwrap();
        assert_eq!(tx.try_send(8), Err(TrySendError::Full(8)));
        assert_eq!(rx.recv(), Some(7));
    }

    #[test]
    fn close_drains_then_disconnects() {
        let (tx, rx) = bounded(4);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        tx.close();
        assert_eq!(tx.try_send(3), Err(TrySendError::Closed(3)));
        // Items queued before the close are still delivered.
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn dropping_all_senders_disconnects_after_drain() {
        let (tx, rx) = bounded(4);
        tx.try_send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(9));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn dropping_all_receivers_fails_sends() {
        let (tx, rx) = bounded(4);
        drop(rx);
        assert_eq!(tx.try_send(1), Err(TrySendError::Closed(1)));
        assert_eq!(tx.send(2), Err(SendError(2)));
    }

    #[test]
    fn blocking_send_waits_for_room() {
        let (tx, rx) = bounded(1);
        tx.try_send(0).unwrap();
        let tx2 = tx.clone();
        let producer = std::thread::spawn(move || tx2.send(1));
        // Give the producer time to block on the full queue.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Some(0));
        producer.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Some(1));
    }

    #[test]
    fn mpmc_delivers_every_item_exactly_once() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: usize = 200;
        let (tx, rx) = bounded(8);
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    tx.send(p * PER_PRODUCER + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..CONSUMERS {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(item) = rx.recv() {
                    got.push(item);
                }
                got
            }));
        }
        drop(rx);
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn global_fifo_across_consumers() {
        // With a single producer and any number of consumers, pops from
        // the shared deque observe arrival order: if each consumer's
        // local sequence is recorded, merging them by pop timestamp is
        // monotone. We verify the cheaper projection: one consumer
        // popping everything sees exact FIFO even when another consumer
        // exists but never pops.
        let (tx, rx) = bounded(64);
        let _idle = rx.clone();
        for i in 0..64 {
            tx.try_send(i).unwrap();
        }
        for i in 0..64 {
            assert_eq!(rx.recv(), Some(i));
        }
    }
}
