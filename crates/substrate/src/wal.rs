//! Write-ahead-log file format helpers: length-prefixed, checksummed
//! records with a torn-tail-tolerant decoder and an fsync-batching
//! appender.
//!
//! The serving layer persists its live corpus as an append-only log of
//! records (one per accreted document) plus periodic snapshot files that
//! use the *same* framing (a snapshot is just a compacted log). This
//! module owns only the byte-level format so it can be property-tested
//! in isolation and reused by any future durable state:
//!
//! ```text
//! record := len:u32le checksum:u64le payload:[len bytes]
//! log    := record*  (possibly followed by a torn tail)
//! ```
//!
//! The checksum is FNV-1a over the payload. A decoder encountering a
//! truncated header, truncated payload, oversized length, or checksum
//! mismatch stops there and reports the corruption alongside every
//! record that decoded cleanly before it — a crash mid-append must never
//! take down replay, only cost the half-written suffix.
//!
//! Durability policy lives in [`WalWriter`]: every append reaches the
//! file descriptor immediately (surviving a process crash), while
//! `fsync` runs only once per `sync_every` appends (batching the
//! machine-crash guarantee so ingest throughput is not bounded by disk
//! flush latency). Callers issue a final [`WalWriter::sync`] on graceful
//! shutdown.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Bytes of framing before each payload (`u32` length + `u64` checksum).
pub const HEADER_LEN: usize = 4 + 8;

/// Upper bound a decoder will believe for a record length. Anything
/// larger is treated as corruption rather than attempted as an
/// allocation: no legitimate corpus record approaches this.
pub const MAX_RECORD_LEN: usize = 256 << 20;

/// FNV-1a over arbitrary bytes — the record checksum.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Appends one framed record to `out`.
pub fn append_record(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// One framed record as a standalone byte vector.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    append_record(&mut out, payload);
    out
}

/// Why decoding stopped before the end of the buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Corruption {
    /// Fewer than [`HEADER_LEN`] bytes remain at `offset`.
    TruncatedHeader { offset: usize },
    /// The header promises more payload than the buffer holds.
    TruncatedPayload {
        offset: usize,
        expected: usize,
        available: usize,
    },
    /// The length field exceeds [`MAX_RECORD_LEN`].
    OversizedLength { offset: usize, length: usize },
    /// The payload does not hash to the stored checksum.
    ChecksumMismatch { offset: usize },
}

impl Corruption {
    /// Byte offset of the first record that failed to decode; everything
    /// before it is intact.
    pub fn offset(&self) -> usize {
        match self {
            Corruption::TruncatedHeader { offset }
            | Corruption::TruncatedPayload { offset, .. }
            | Corruption::OversizedLength { offset, .. }
            | Corruption::ChecksumMismatch { offset } => *offset,
        }
    }
}

impl std::fmt::Display for Corruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Corruption::TruncatedHeader { offset } => {
                write!(f, "torn record header at byte {offset}")
            }
            Corruption::TruncatedPayload {
                offset,
                expected,
                available,
            } => write!(
                f,
                "torn record payload at byte {offset}: header promises {expected} bytes, {available} present"
            ),
            Corruption::OversizedLength { offset, length } => write!(
                f,
                "implausible record length {length} at byte {offset} (max {MAX_RECORD_LEN})"
            ),
            Corruption::ChecksumMismatch { offset } => {
                write!(f, "checksum mismatch in record at byte {offset}")
            }
        }
    }
}

/// The result of decoding a log buffer.
#[derive(Clone, Debug, PartialEq)]
pub struct Decoded<'a> {
    /// Every record that decoded cleanly, in log order.
    pub records: Vec<&'a [u8]>,
    /// The corruption that stopped decoding, or `None` when the buffer
    /// ends exactly on a record boundary.
    pub corruption: Option<Corruption>,
    /// Length of the intact prefix (the offset a writer may safely
    /// truncate to before appending fresh records).
    pub clean_len: usize,
}

/// Decodes a log buffer into records, stopping at the first sign of
/// corruption. Never panics, never allocates beyond the record list.
pub fn decode_records(bytes: &[u8]) -> Decoded<'_> {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < HEADER_LEN {
            return Decoded {
                records,
                corruption: Some(Corruption::TruncatedHeader { offset }),
                clean_len: offset,
            };
        }
        let len_bytes: [u8; 4] = bytes[offset..offset + 4].try_into().expect("4-byte slice");
        let length = u32::from_le_bytes(len_bytes) as usize;
        if length > MAX_RECORD_LEN {
            return Decoded {
                records,
                corruption: Some(Corruption::OversizedLength { offset, length }),
                clean_len: offset,
            };
        }
        if remaining < HEADER_LEN + length {
            return Decoded {
                records,
                corruption: Some(Corruption::TruncatedPayload {
                    offset,
                    expected: length,
                    available: remaining - HEADER_LEN,
                }),
                clean_len: offset,
            };
        }
        let sum_bytes: [u8; 8] = bytes[offset + 4..offset + 12]
            .try_into()
            .expect("8-byte slice");
        let stored = u64::from_le_bytes(sum_bytes);
        let payload = &bytes[offset + HEADER_LEN..offset + HEADER_LEN + length];
        if checksum(payload) != stored {
            return Decoded {
                records,
                corruption: Some(Corruption::ChecksumMismatch { offset }),
                clean_len: offset,
            };
        }
        records.push(payload);
        offset += HEADER_LEN + length;
    }
    Decoded {
        records,
        corruption: None,
        clean_len: offset,
    }
}

/// An appender with batched fsync.
///
/// Appends write through to the OS immediately — a process crash loses
/// nothing already appended — while `File::sync_data` runs once per
/// `sync_every` appends, bounding what a *machine* crash can lose to the
/// current batch. `sync_every == 1` degrades to fsync-per-record.
pub struct WalWriter {
    file: File,
    sync_every: usize,
    unsynced: usize,
    records: u64,
}

impl WalWriter {
    /// Opens `path` for appending (creating it if absent) with the given
    /// fsync batch size.
    pub fn open_append(path: &Path, sync_every: usize) -> io::Result<WalWriter> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(WalWriter {
            file,
            sync_every: sync_every.max(1),
            unsynced: 0,
            records: 0,
        })
    }

    /// Creates (truncating) `path` with the given fsync batch size.
    pub fn create(path: &Path, sync_every: usize) -> io::Result<WalWriter> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(WalWriter {
            file,
            sync_every: sync_every.max(1),
            unsynced: 0,
            records: 0,
        })
    }

    /// Appends one record. Returns whether this append triggered a batch
    /// fsync. (Named `write_record`, not `append`, so the in-tree lint's
    /// name-based Result resolution does not collide with the arena
    /// tree's non-Result `append`.)
    pub fn write_record(&mut self, payload: &[u8]) -> io::Result<bool> {
        self.file.write_all(&encode_record(payload))?;
        self.records += 1;
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            self.sync()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Forces any batched appends to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Records appended through this writer (excludes pre-existing file
    /// content).
    pub fn records_appended(&self) -> u64 {
        self.records
    }
}

/// Writes `bytes` to `path` atomically: a sibling temp file is written,
/// fsynced, and renamed over the destination, so readers see either the
/// old content or the new — never a torn file. The parent directory is
/// fsynced afterwards so the rename itself survives a crash.
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let parent = path.parent().unwrap_or_else(|| Path::new("."));
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".to_owned());
    name.push_str(".tmp");
    let tmp = parent.join(name);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    // Persist the rename. Directory fsync is advisory on some platforms;
    // a failure after a successful rename leaves the data correct.
    // webre::allow(dropped-result): rename already happened; dir sync is best-effort hardening
    let _ = File::open(parent).and_then(|d| d.sync_all());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log(payloads: &[&[u8]]) -> Vec<u8> {
        let mut log = Vec::new();
        for p in payloads {
            append_record(&mut log, p);
        }
        log
    }

    #[test]
    fn round_trips_records() {
        let payloads: Vec<&[u8]> = vec![b"", b"a", b"hello world", &[0u8, 255, 7]];
        let log = sample_log(&payloads);
        let decoded = decode_records(&log);
        assert_eq!(decoded.records, payloads);
        assert_eq!(decoded.corruption, None);
        assert_eq!(decoded.clean_len, log.len());
    }

    #[test]
    fn empty_log_decodes_to_nothing() {
        let decoded = decode_records(&[]);
        assert!(decoded.records.is_empty());
        assert_eq!(decoded.corruption, None);
        assert_eq!(decoded.clean_len, 0);
    }

    #[test]
    fn every_truncation_point_yields_an_intact_prefix() {
        // For any prefix of a valid log, decoding returns exactly the
        // records that fit entirely inside the prefix, and classifies
        // the cut as a torn header/payload (never a panic, never a
        // bogus record).
        let payloads: Vec<&[u8]> = vec![b"first", b"second record", b"", b"tail"];
        let log = sample_log(&payloads);
        // Record boundaries.
        let mut boundaries = vec![0usize];
        for p in &payloads {
            boundaries.push(boundaries.last().unwrap() + HEADER_LEN + p.len());
        }
        for cut in 0..=log.len() {
            let decoded = decode_records(&log[..cut]);
            let complete = boundaries.iter().filter(|b| **b <= cut).count() - 1;
            assert_eq!(
                decoded.records.len(),
                complete,
                "cut at byte {cut}: wrong record count"
            );
            assert_eq!(decoded.records, &payloads[..complete]);
            assert_eq!(decoded.clean_len, boundaries[complete]);
            if boundaries.contains(&cut) {
                assert_eq!(decoded.corruption, None, "cut at boundary {cut}");
            } else {
                let corruption = decoded.corruption.expect("mid-record cut must report");
                assert_eq!(corruption.offset(), boundaries[complete]);
            }
        }
    }

    #[test]
    fn flipped_byte_is_a_checksum_mismatch() {
        let payloads: Vec<&[u8]> = vec![b"alpha", b"beta", b"gamma"];
        let log = sample_log(&payloads);
        // Flip one payload byte of the middle record.
        let middle_payload_at = (HEADER_LEN + 5) + HEADER_LEN;
        let mut bad = log.clone();
        bad[middle_payload_at] ^= 0x40;
        let decoded = decode_records(&bad);
        assert_eq!(decoded.records, &payloads[..1]);
        assert_eq!(
            decoded.corruption,
            Some(Corruption::ChecksumMismatch {
                offset: HEADER_LEN + 5
            })
        );
    }

    #[test]
    fn absurd_length_is_rejected_without_allocating() {
        let mut log = Vec::new();
        log.extend_from_slice(&(u32::MAX).to_le_bytes());
        log.extend_from_slice(&0u64.to_le_bytes());
        log.extend_from_slice(b"garbage");
        let decoded = decode_records(&log);
        assert!(decoded.records.is_empty());
        assert!(matches!(
            decoded.corruption,
            Some(Corruption::OversizedLength { offset: 0, .. })
        ));
    }

    #[test]
    fn writer_appends_and_batches_fsync() {
        let dir = std::env::temp_dir().join(format!("webre-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        let mut writer = WalWriter::create(&path, 3).unwrap();
        let mut synced = 0;
        for i in 0..7u32 {
            if writer.write_record(format!("record-{i}").as_bytes()).unwrap() {
                synced += 1;
            }
        }
        assert_eq!(synced, 2, "batch size 3 over 7 appends fsyncs twice");
        assert_eq!(writer.records_appended(), 7);
        writer.sync().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let decoded = decode_records(&bytes);
        assert_eq!(decoded.records.len(), 7);
        assert_eq!(decoded.records[6], b"record-6");
        assert_eq!(decoded.corruption, None);
        // Reopening for append continues the same log.
        let mut writer = WalWriter::open_append(&path, 1).unwrap();
        writer.write_record(b"after-reopen").unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(decode_records(&bytes).records.len(), 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_replaces_content() {
        let dir = std::env::temp_dir().join(format!("webre-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        write_file_atomic(&path, b"one").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        write_file_atomic(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        // No temp file left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
