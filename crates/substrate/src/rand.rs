//! Deterministic seedable PRNG with a `rand`-crate-shaped surface.
//!
//! The generator is Xoshiro256\*\* (Blackman & Vigna), seeded from a
//! `u64` via SplitMix64 exactly as the reference implementation
//! recommends. The module layout mirrors the parts of the `rand` crate
//! the workspace uses, so call sites migrate by swapping the `use` lines:
//!
//! ```
//! use webre_substrate::rand::rngs::StdRng;
//! use webre_substrate::rand::seq::SliceRandom;
//! use webre_substrate::rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let die = rng.gen_range(1..=6);
//! assert!((1..=6).contains(&die));
//! let pick = *[10, 20, 30].choose(&mut rng).unwrap();
//! assert!([10, 20, 30].contains(&pick));
//! ```
//!
//! Streams are splittable: [`rngs::StdRng::split`] derives an
//! independent generator, so parallel workers can each own a stream that
//! is stable regardless of scheduling.

/// Low-level source of random `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// SplitMix64: the seeding/stream-derivation mixer.
///
/// Tiny state, equidistributed, passes BigCrush when used as a mixer;
/// its one job here is turning arbitrary `u64` seeds into well-spread
/// Xoshiro state words.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a mixer from a raw seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators (mirrors `rand::rngs`).

    use super::{RngCore, SeedableRng, SplitMix64};

    /// The workspace's standard generator: Xoshiro256\*\*.
    ///
    /// Not the `rand` crate's ChaCha-based `StdRng` — but the same name,
    /// so seeded call sites read identically. All determinism guarantees
    /// in this repository are stated against *this* generator.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Derives an independent stream from this generator.
        ///
        /// The child state is drawn through SplitMix64, so parent and
        /// child sequences are uncorrelated; the parent advances by
        /// exactly one step.
        pub fn split(&mut self) -> StdRng {
            let mut mixer = SplitMix64::new(self.next_u64());
            StdRng {
                s: [
                    mixer.next_u64(),
                    mixer.next_u64(),
                    mixer.next_u64(),
                    mixer.next_u64(),
                ],
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(seed: u64) -> Self {
            let mut mixer = SplitMix64::new(seed);
            StdRng {
                s: [
                    mixer.next_u64(),
                    mixer.next_u64(),
                    mixer.next_u64(),
                    mixer.next_u64(),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** reference algorithm.
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Ranges that can be sampled uniformly (mirrors `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform value from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Largest multiple of span that fits in u64; reject above it.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $ty)
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called on empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $ty)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits → [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice sampling helpers (mirrors `rand::seq`).

    use super::{uniform_u64, RngCore};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements, in selection order (fewer if the
        /// slice is shorter than `amount`).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            let mut picked = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = i + uniform_u64(rng, (idx.len() - i) as u64) as usize;
                idx.swap(i, j);
                picked.push(&self[idx[i]]);
            }
            picked.into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng, SplitMix64};

    #[test]
    fn xoshiro_reference_vector() {
        // State seeded with SplitMix64(0); first outputs must match the
        // reference implementation chain (pinned from this implementation,
        // stable forever — any change to the algorithm breaks corpora).
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = StdRng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        assert_eq!(first.len(), 4);
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn splitmix_known_answer() {
        // Published SplitMix64 test vector for seed 1234567.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn seeds_differ() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..500 {
            let v = rng.gen_range(1..=6);
            assert!((1..=6).contains(&v));
            seen[(v - 1) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "die face never rolled: {seen:?}");
        for _ in 0..200 {
            let v: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
        }
        for _ in 0..200 {
            let v: usize = rng.gen_range(0..1);
            assert_eq!(v, 0);
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "biased coin: {heads}");
    }

    #[test]
    fn choose_uniformish_and_choose_multiple_distinct() {
        let mut rng = StdRng::seed_from_u64(4);
        let pool = [1, 2, 3, 4, 5];
        assert!(pool.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());

        let picked: Vec<&i32> = pool.choose_multiple(&mut rng, 3).collect();
        assert_eq!(picked.len(), 3);
        let mut sorted: Vec<i32> = picked.iter().map(|p| **p).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "duplicates in choose_multiple");

        // Requesting more than available yields everything once.
        let all: Vec<&i32> = pool.choose_multiple(&mut rng, 99).collect();
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>(), "identity shuffle");
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut parent_a = StdRng::seed_from_u64(42);
        let mut parent_b = StdRng::seed_from_u64(42);
        let mut child_a = parent_a.split();
        let mut child_b = parent_b.split();
        // Same parent seed → same child stream.
        let ca: Vec<u64> = (0..16).map(|_| child_a.next_u64()).collect();
        let cb: Vec<u64> = (0..16).map(|_| child_b.next_u64()).collect();
        assert_eq!(ca, cb);
        // Child and parent streams differ.
        let pa: Vec<u64> = (0..16).map(|_| parent_a.next_u64()).collect();
        assert_ne!(ca, pa);
        // Successive splits differ from each other.
        let mut root = StdRng::seed_from_u64(42);
        let s1: Vec<u64> = {
            let mut c = root.split();
            (0..16).map(|_| c.next_u64()).collect()
        };
        let s2: Vec<u64> = {
            let mut c = root.split();
            (0..16).map(|_| c.next_u64()).collect()
        };
        assert_ne!(s1, s2);
    }

    #[test]
    fn from_seed_all_zero_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let outs: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(outs.iter().any(|v| *v != 0));
    }
}
