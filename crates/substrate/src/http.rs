//! Minimal HTTP/1.1 codec: request parsing and response writing over any
//! `Read`/`Write` pair.
//!
//! This is deliberately a *codec*, not a framework: it understands
//! exactly the subset of RFC 9112 the `webre-serve` daemon and its
//! in-process test clients need — request line, headers,
//! `Content-Length` bodies, and keep-alive negotiation. No chunked
//! transfer encoding (requests carrying it are rejected as `411`-shaped
//! errors), no multiline headers, no trailers.
//!
//! Robustness properties the serving layer relies on:
//!
//! * header section and body are read under caller-supplied byte limits,
//!   so a hostile peer cannot balloon memory ([`HttpError::TooLarge`]
//!   maps to `413`);
//! * a cleanly closed idle connection yields `Ok(None)` rather than an
//!   error, which is how keep-alive loops terminate;
//! * all parse failures are typed so the server can answer `400` instead
//!   of dropping the connection.

use std::io::{BufRead, Write};

/// Upper bound on the request line + headers, independent of the body
/// limit. 16 KiB fits any sane client with room to spare.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token, e.g. `GET`, `POST`.
    pub method: String,
    /// The request target as sent (path + optional query), e.g. `/convert`.
    pub target: String,
    /// Header `(name, value)` pairs; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body, empty unless `Content-Length` said otherwise.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to keep the connection open after this
    /// exchange (HTTP/1.1 default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }

    /// The target's path component (query string stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }
}

/// Why a request could not be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header, or length field.
    Malformed(String),
    /// Head or body exceeds the configured limit.
    TooLarge { limit: usize },
    /// The peer used a transfer mechanism the codec does not speak.
    Unsupported(String),
    /// The connection errored or closed mid-request.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge { limit } => write!(f, "request exceeds {limit} bytes"),
            HttpError::Unsupported(m) => write!(f, "unsupported: {m}"),
            HttpError::Io(m) => write!(f, "i/o: {m}"),
        }
    }
}

/// Reads one request. `Ok(None)` means the peer closed the connection
/// cleanly before sending anything (normal keep-alive termination);
/// `max_body` bounds the `Content-Length` the codec will honour.
pub fn read_request(
    reader: &mut impl BufRead,
    max_body: usize,
) -> Result<Option<Request>, HttpError> {
    let Some(line) = read_line(reader, MAX_HEAD_BYTES, true)? else {
        return Ok(None);
    };
    let (method, target) = parse_request_line(&line)?;

    let mut headers = Vec::new();
    let mut head_budget = MAX_HEAD_BYTES.saturating_sub(line.len());
    loop {
        let Some(line) = read_line(reader, head_budget, false)? else {
            return Err(HttpError::Io("connection closed inside headers".into()));
        };
        head_budget = head_budget.saturating_sub(line.len() + 2);
        if line.is_empty() {
            break;
        }
        headers.push(parse_header_line(&line)?);
    }

    let request = Request {
        method,
        target,
        headers,
        body: Vec::new(),
    };
    let length = body_length(&request, max_body)?;
    let mut body = vec![0u8; length];
    reader
        .read_exact(&mut body)
        .map_err(|e| HttpError::Io(format!("reading {length}-byte body: {e}")))?;
    Ok(Some(Request { body, ..request }))
}

/// Parses `METHOD target HTTP/1.x` into an uppercased method plus the
/// target. Shared by the blocking reader and the incremental parser so
/// their acceptance semantics cannot drift apart.
fn parse_request_line(line: &str) -> Result<(String, String), HttpError> {
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) =
        (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed(format!("request line {line:?}")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Unsupported(format!("version {version}")));
    }
    Ok((method.to_ascii_uppercase(), target.to_owned()))
}

/// Parses one `Name: value` header line (name lowercased, value trimmed).
fn parse_header_line(line: &str) -> Result<(String, String), HttpError> {
    let Some((name, value)) = line.split_once(':') else {
        return Err(HttpError::Malformed(format!("header {line:?}")));
    };
    Ok((name.trim().to_ascii_lowercase(), value.trim().to_owned()))
}

/// How many body bytes the head promises, after validating the transfer
/// mechanism and the `max_body` cap. Errors *before* any body byte is
/// read — the early-413 guarantee the streaming server relies on.
fn body_length(request: &Request, max_body: usize) -> Result<usize, HttpError> {
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::Unsupported("transfer-encoding".into()));
    }
    let length = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("content-length {v:?}")))?,
    };
    if length > max_body {
        return Err(HttpError::TooLarge { limit: max_body });
    }
    Ok(length)
}

/// Reads one CRLF- (or LF-) terminated line without its terminator.
/// `Ok(None)` = clean EOF before any byte when `eof_ok`, error otherwise.
fn read_line(
    reader: &mut impl BufRead,
    limit: usize,
    eof_ok: bool,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() && eof_ok {
                    return Ok(None);
                }
                return Err(HttpError::Io("unexpected end of stream".into()));
            }
            Ok(_) => {
                // webre::allow(panic-in-hot-path): `byte` is `[u8; 1]`; index 0 is infallible
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".into()));
                }
                if line.len() >= limit {
                    return Err(HttpError::TooLarge { limit });
                }
                // webre::allow(panic-in-hot-path): `byte` is `[u8; 1]`; index 0 is infallible
                line.push(byte[0]);
            }
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }
}

/// Canonical reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A response ready to serialize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the always-present `Content-Length` and
    /// `Content-Type`.
    pub headers: Vec<(String, String)>,
    /// `Content-Type` value.
    pub content_type: String,
    /// The payload.
    pub body: Vec<u8>,
}

impl Response {
    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8".into(),
            body: body.into().into_bytes(),
        }
    }

    /// An XML response.
    pub fn xml(status: u16, body: impl Into<String>) -> Self {
        Response {
            content_type: "application/xml".into(),
            ..Response::text(status, body)
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_owned(), value.into()));
        self
    }
}

/// Serializes `response` to `writer`. `keep_alive` controls the
/// `Connection` header so peers know whether to reuse the socket.
pub fn write_response(
    writer: &mut impl Write,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-length: {}\r\ncontent-type: {}\r\nconnection: {}\r\n",
        response.status,
        reason(response.status),
        response.body.len(),
        response.content_type,
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    // One write for head+body: a split write would put the body in its
    // own TCP segment and stall on Nagle + delayed ACK (~40ms/request).
    let mut message = head.into_bytes();
    message.extend_from_slice(&response.body);
    writer.write_all(&message)?;
    writer.flush()
}

/// A parsed response (for test clients and the differential oracle).
#[derive(Clone, Debug)]
pub struct ParsedResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The payload.
    pub body: Vec<u8>,
}

impl ParsedResponse {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads one response (client side). `max_body` bounds the body read.
pub fn read_response(
    reader: &mut impl BufRead,
    max_body: usize,
) -> Result<ParsedResponse, HttpError> {
    let Some(line) = read_line(reader, MAX_HEAD_BYTES, false)? else {
        return Err(HttpError::Io("connection closed before status line".into()));
    };
    let mut parts = line.split_whitespace();
    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(HttpError::Malformed(format!("status line {line:?}")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Unsupported(format!("version {version}")));
    }
    let status: u16 = code
        .parse()
        .map_err(|_| HttpError::Malformed(format!("status code {code:?}")))?;
    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(reader, MAX_HEAD_BYTES, false)? else {
            return Err(HttpError::Io("connection closed inside headers".into()));
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("header {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if length > max_body {
        return Err(HttpError::TooLarge { limit: max_body });
    }
    let mut body = vec![0u8; length];
    reader
        .read_exact(&mut body)
        .map_err(|e| HttpError::Io(format!("reading {length}-byte body: {e}")))?;
    Ok(ParsedResponse {
        status,
        headers,
        body,
    })
}

/// Serializes a request (client side).
pub fn write_request(
    writer: &mut impl Write,
    method: &str,
    target: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "{method} {target} HTTP/1.1\r\nhost: localhost\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    // Single write, same Nagle rationale as `write_response`.
    let mut message = head.into_bytes();
    message.extend_from_slice(body);
    writer.write_all(&message)?;
    writer.flush()
}

/// Byte buffer shared by the incremental parsers: pushed ranges accrete
/// at the tail, parsed prefixes are consumed from the head, and the
/// head-terminator scan position survives across pushes so feeding one
/// byte at a time stays O(1) amortised.
#[derive(Debug, Default)]
struct StreamBuf {
    buf: Vec<u8>,
    /// Consumed prefix; bytes before this offset are dead.
    start: usize,
    /// Absolute index the blank-line scan has reached.
    scan: usize,
}

impl StreamBuf {
    fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed byte count.
    fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    fn peek(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    fn consume(&mut self, n: usize) {
        self.start += n;
        debug_assert!(self.start <= self.buf.len());
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= 64 * 1024 {
            // Compact rarely so pipelined bursts don't memmove per request.
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.scan = self.start;
    }

    /// Looks for the blank line ending a head block. Returns the length
    /// of the head *including* its terminator, relative to the unread
    /// prefix. A lone leading CRLF counts as a (malformed, empty) head
    /// so the error surfaces instead of the parser waiting forever.
    fn head_end(&mut self) -> Option<usize> {
        let buf = &self.buf;
        let mut i = self.scan.max(self.start);
        while i < buf.len() {
            if buf[i] == b'\n' {
                let line_empty = i == self.start
                    // webre::allow(panic-in-hot-path): the `i == start` arm above guarantees i ≥ start+1 here
                    || buf[i - 1] == b'\n'
                    // webre::allow(panic-in-hot-path): the `i-1 == start` arm guards the i-2 access
                    || (buf[i - 1] == b'\r' && (i - 1 == self.start || buf[i - 2] == b'\n'));
                if line_empty {
                    return Some(i + 1 - self.start);
                }
            }
            i += 1;
        }
        // The terminator window is three bytes wide, so resuming two
        // bytes back is enough to catch one split across pushes.
        self.scan = self.start.max(self.buf.len().saturating_sub(2));
        None
    }
}

/// Splits a complete head block into its lines (terminators stripped)
/// and hands the request/status line plus each header line to `parse`.
fn parse_head_lines(
    head: &[u8],
    mut parse: impl FnMut(bool, &str) -> Result<(), HttpError>,
) -> Result<(), HttpError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".into()))?;
    let mut first = true;
    for line in text.split('\n') {
        let line = line.strip_suffix('\r').unwrap_or(line);
        if !first && line.is_empty() {
            break;
        }
        parse(first, line)?;
        first = false;
    }
    Ok(())
}

/// Incremental request parser: the readiness-driven server pushes byte
/// ranges as they arrive off a non-blocking socket and drains complete
/// requests with [`RequestParser::next`]. Semantics match
/// [`read_request`] exactly — both delegate to the same request-line,
/// header and body-length helpers — with one addition: a
/// `Content-Length` beyond `max_body` errors as soon as the *head* is
/// complete, before any body byte is buffered (streaming early 413).
#[derive(Debug)]
pub struct RequestParser {
    max_body: usize,
    stream: StreamBuf,
    /// A parsed head still waiting for this many body bytes.
    pending: Option<(Request, usize)>,
    failed: bool,
}

impl RequestParser {
    /// `max_body` bounds the `Content-Length` the parser will honour,
    /// exactly like the blocking reader's parameter.
    pub fn new(max_body: usize) -> RequestParser {
        RequestParser {
            max_body,
            stream: StreamBuf::default(),
            pending: None,
            failed: false,
        }
    }

    /// Appends newly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.stream.push(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete request —
    /// the event loop's backpressure signal.
    pub fn buffered(&self) -> usize {
        self.stream.len() + self.pending.as_ref().map_or(0, |(r, _)| r.body.len())
    }

    /// Whether a request is partially received (head bytes buffered or
    /// a body outstanding). Drives the read-timeout (slow-loris) clock.
    pub fn mid_request(&self) -> bool {
        self.pending.is_some() || self.stream.len() > 0
    }

    /// Drains the next complete request, `Ok(None)` if more bytes are
    /// needed. After an error the parser is poisoned: the connection
    /// has lost framing and must be closed.
    pub fn next(&mut self) -> Result<Option<Request>, HttpError> {
        if self.failed {
            return Err(HttpError::Malformed("parser poisoned by earlier error".into()));
        }
        match self.advance() {
            Ok(request) => Ok(request),
            Err(err) => {
                self.failed = true;
                Err(err)
            }
        }
    }

    fn advance(&mut self) -> Result<Option<Request>, HttpError> {
        if self.pending.is_none() {
            let Some(head_len) = self.stream.head_end() else {
                if self.stream.len() > MAX_HEAD_BYTES {
                    return Err(HttpError::TooLarge { limit: MAX_HEAD_BYTES });
                }
                return Ok(None);
            };
            if head_len > MAX_HEAD_BYTES {
                return Err(HttpError::TooLarge { limit: MAX_HEAD_BYTES });
            }
            let mut method = String::new();
            let mut target = String::new();
            let mut headers = Vec::new();
            parse_head_lines(&self.stream.peek()[..head_len], |first, line| {
                if first {
                    let (m, t) = parse_request_line(line)?;
                    method = m;
                    target = t;
                } else {
                    headers.push(parse_header_line(line)?);
                }
                Ok(())
            })?;
            let request = Request {
                method,
                target,
                headers,
                body: Vec::new(),
            };
            let need = body_length(&request, self.max_body)?;
            self.stream.consume(head_len);
            self.pending = Some((request, need));
        }
        // webre::allow(panic-in-hot-path): pending was just set above if absent
        let need = self.pending.as_ref().map(|(_, need)| *need).unwrap_or(0);
        if self.stream.len() < need {
            return Ok(None);
        }
        // webre::allow(panic-in-hot-path): pending is Some — the branch above populated it
        let (mut request, _) = self.pending.take().expect("pending head");
        request.body = self.stream.peek()[..need].to_vec();
        self.stream.consume(need);
        Ok(Some(request))
    }
}

/// Incremental response parser — the client-side mirror of
/// [`RequestParser`], used by the `webre load` harness to drive many
/// non-blocking connections from one thread.
#[derive(Debug)]
pub struct ResponseParser {
    max_body: usize,
    stream: StreamBuf,
    pending: Option<(ParsedResponse, usize)>,
    failed: bool,
}

impl ResponseParser {
    /// `max_body` bounds the `Content-Length` the parser will honour.
    pub fn new(max_body: usize) -> ResponseParser {
        ResponseParser {
            max_body,
            stream: StreamBuf::default(),
            pending: None,
            failed: false,
        }
    }

    /// Appends newly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.stream.push(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete response.
    pub fn buffered(&self) -> usize {
        self.stream.len()
    }

    /// Drains the next complete response, `Ok(None)` if more bytes are
    /// needed. Errors poison the parser (framing is lost).
    pub fn next(&mut self) -> Result<Option<ParsedResponse>, HttpError> {
        if self.failed {
            return Err(HttpError::Malformed("parser poisoned by earlier error".into()));
        }
        match self.advance() {
            Ok(response) => Ok(response),
            Err(err) => {
                self.failed = true;
                Err(err)
            }
        }
    }

    fn advance(&mut self) -> Result<Option<ParsedResponse>, HttpError> {
        if self.pending.is_none() {
            let Some(head_len) = self.stream.head_end() else {
                if self.stream.len() > MAX_HEAD_BYTES {
                    return Err(HttpError::TooLarge { limit: MAX_HEAD_BYTES });
                }
                return Ok(None);
            };
            let mut status: u16 = 0;
            let mut headers = Vec::new();
            parse_head_lines(&self.stream.peek()[..head_len], |first, line| {
                if first {
                    let mut parts = line.split_whitespace();
                    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
                        return Err(HttpError::Malformed(format!("status line {line:?}")));
                    };
                    if !version.starts_with("HTTP/1.") {
                        return Err(HttpError::Unsupported(format!("version {version}")));
                    }
                    status = code
                        .parse()
                        .map_err(|_| HttpError::Malformed(format!("status code {code:?}")))?;
                } else {
                    headers.push(parse_header_line(line)?);
                }
                Ok(())
            })?;
            let response = ParsedResponse {
                status,
                headers,
                body: Vec::new(),
            };
            let need = response
                .header("content-length")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| HttpError::Malformed(format!("content-length {v:?}")))
                })
                .transpose()?
                .unwrap_or(0);
            if need > self.max_body {
                return Err(HttpError::TooLarge { limit: self.max_body });
            }
            self.stream.consume(head_len);
            self.pending = Some((response, need));
        }
        let need = self.pending.as_ref().map(|(_, need)| *need).unwrap_or(0);
        if self.stream.len() < need {
            return Ok(None);
        }
        // webre::allow(panic-in-hot-path): pending is Some — the branch above populated it
        let (mut response, _) = self.pending.take().expect("pending head");
        response.body = self.stream.peek()[..need].to_vec();
        self.stream.consume(need);
        Ok(Some(response))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8], max_body: usize) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(bytes), max_body)
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /convert HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = parse(raw, 1024).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/convert");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_get_without_body_and_lf_only_lines() {
        let raw = b"GET /healthz HTTP/1.1\nConnection: close\n\n";
        let req = parse(raw, 1024).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(!req.keep_alive());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"", 1024).unwrap().is_none());
    }

    #[test]
    fn oversized_body_is_too_large() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
        assert_eq!(parse(raw, 10), Err(HttpError::TooLarge { limit: 10 }));
    }

    #[test]
    fn bad_request_line_is_malformed() {
        assert!(matches!(
            parse(b"NONSENSE\r\n\r\n", 10),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn chunked_encoding_is_unsupported() {
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(matches!(parse(raw, 10), Err(HttpError::Unsupported(_))));
    }

    #[test]
    fn truncated_body_is_io_error() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(matches!(parse(raw, 100), Err(HttpError::Io(_))));
    }

    #[test]
    fn query_string_is_stripped_by_path() {
        let raw = b"GET /metrics?verbose=1 HTTP/1.1\r\n\r\n";
        let req = parse(raw, 0).unwrap().unwrap();
        assert_eq!(req.target, "/metrics?verbose=1");
        assert_eq!(req.path(), "/metrics");
    }

    #[test]
    fn response_round_trips_through_codec() {
        let response = Response::xml(200, "<r/>").with_header("x-cache", "hit");
        let mut wire = Vec::new();
        write_response(&mut wire, &response, true).unwrap();
        let parsed = read_response(&mut BufReader::new(wire.as_slice()), 1024).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.header("x-cache"), Some("hit"));
        assert_eq!(parsed.header("connection"), Some("keep-alive"));
        assert_eq!(parsed.text(), "<r/>");
    }

    #[test]
    fn request_round_trips_through_codec() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/corpus/docs", b"<p>x</p>", false).unwrap();
        let req = parse(&wire, 1024).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/corpus/docs");
        assert_eq!(req.body, b"<p>x</p>");
        assert!(!req.keep_alive());
    }

    #[test]
    fn two_pipelined_requests_parse_sequentially() {
        let raw: Vec<u8> = [
            b"POST /a HTTP/1.1\r\ncontent-length: 1\r\n\r\nA".as_slice(),
            b"GET /b HTTP/1.1\r\n\r\n".as_slice(),
        ]
        .concat();
        let mut reader = BufReader::new(raw.as_slice());
        let first = read_request(&mut reader, 64).unwrap().unwrap();
        let second = read_request(&mut reader, 64).unwrap().unwrap();
        assert_eq!(first.target, "/a");
        assert_eq!(second.target, "/b");
        assert!(read_request(&mut reader, 64).unwrap().is_none());
    }

    // ---- incremental parser -------------------------------------------

    /// Feeds `raw` to an incremental parser in `chunk`-byte slices and
    /// drains every complete request.
    fn incremental(raw: &[u8], max_body: usize, chunk: usize) -> Result<Vec<Request>, HttpError> {
        let mut parser = RequestParser::new(max_body);
        let mut out = Vec::new();
        for piece in raw.chunks(chunk.max(1)) {
            parser.push(piece);
            while let Some(request) = parser.next()? {
                out.push(request);
            }
        }
        Ok(out)
    }

    #[test]
    fn incremental_matches_blocking_at_every_chunk_size() {
        let raw: Vec<u8> = [
            b"POST /convert HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello".as_slice(),
            b"GET /healthz HTTP/1.1\nConnection: close\n\n".as_slice(),
            b"GET /metrics?verbose=1 HTTP/1.1\r\n\r\n".as_slice(),
        ]
        .concat();
        let mut reader = BufReader::new(raw.as_slice());
        let mut blocking = Vec::new();
        while let Some(request) = read_request(&mut reader, 1024).unwrap() {
            blocking.push(request);
        }
        for chunk in [1, 2, 3, 7, 16, raw.len()] {
            let parsed = incremental(&raw, 1024, chunk).unwrap();
            assert_eq!(parsed, blocking, "divergence at chunk size {chunk}");
        }
    }

    #[test]
    fn incremental_leaves_partial_request_pending() {
        let mut parser = RequestParser::new(64);
        parser.push(b"POST /a HTTP/1.1\r\ncontent-le");
        assert!(parser.next().unwrap().is_none());
        assert!(parser.mid_request());
        parser.push(b"ngth: 3\r\n\r\nab");
        // Head complete, body one byte short.
        assert!(parser.next().unwrap().is_none());
        parser.push(b"c");
        let request = parser.next().unwrap().unwrap();
        assert_eq!(request.body, b"abc");
        assert!(!parser.mid_request());
    }

    #[test]
    fn incremental_rejects_oversized_body_before_it_arrives() {
        let mut parser = RequestParser::new(10);
        // Head promises 100 bytes; not a single body byte is pushed.
        parser.push(b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n");
        assert_eq!(parser.next(), Err(HttpError::TooLarge { limit: 10 }));
        // Poisoned thereafter.
        assert!(parser.next().is_err());
    }

    #[test]
    fn incremental_rejects_unterminated_giant_head() {
        let mut parser = RequestParser::new(1024);
        parser.push(b"GET / HTTP/1.1\r\nx-filler: ");
        let filler = vec![b'a'; MAX_HEAD_BYTES + 64];
        parser.push(&filler);
        assert_eq!(
            parser.next(),
            Err(HttpError::TooLarge { limit: MAX_HEAD_BYTES })
        );
    }

    #[test]
    fn incremental_flags_leading_blank_line_as_malformed() {
        let mut parser = RequestParser::new(64);
        parser.push(b"\r\n");
        assert!(matches!(parser.next(), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn incremental_pipelined_burst_drains_in_order() {
        let mut raw = Vec::new();
        for i in 0..40 {
            let body = format!("doc-{i}");
            raw.extend_from_slice(
                format!(
                    "POST /corpus/xml HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            );
        }
        let parsed = incremental(&raw, 1024, 13).unwrap();
        assert_eq!(parsed.len(), 40);
        for (i, request) in parsed.iter().enumerate() {
            assert_eq!(request.body, format!("doc-{i}").as_bytes());
        }
    }

    #[test]
    fn response_parser_round_trips_split_responses() {
        let mut wire = Vec::new();
        write_response(&mut wire, &Response::xml(200, "<r/>").with_header("x-cache", "hit"), true)
            .unwrap();
        write_response(&mut wire, &Response::text(429, "busy\n").with_header("retry-after", "1"), false)
            .unwrap();
        let mut parser = ResponseParser::new(1024);
        let mut out = Vec::new();
        for piece in wire.chunks(3) {
            parser.push(piece);
            while let Some(response) = parser.next().unwrap() {
                out.push(response);
            }
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].status, 200);
        assert_eq!(out[0].header("x-cache"), Some("hit"));
        assert_eq!(out[0].text(), "<r/>");
        assert_eq!(out[1].status, 429);
        assert_eq!(out[1].header("retry-after"), Some("1"));
    }
}
