//! Readiness polling over raw file descriptors — the foundation of the
//! serve crate's event loop.
//!
//! On Linux this wraps `epoll` (level-triggered) through direct syscalls
//! issued with `core::arch::asm!`, keeping the workspace free of `libc`
//! while still multiplexing tens of thousands of sockets on one thread.
//! Everywhere else a portable sweep poller stands in: it reports every
//! registered descriptor as ready on each tick and relies on the caller's
//! non-blocking I/O returning `WouldBlock` — correct, merely less
//! efficient, and good enough for non-Linux development machines.
//!
//! The API is deliberately tiny: register a descriptor with a `u64`
//! token and the interest set (readable / writable), modify or
//! deregister it later, and `wait` for events. Tokens are opaque to the
//! poller; callers encode slot indices plus generation counters to guard
//! against file-descriptor reuse.

/// One readiness event delivered by [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token supplied at registration time.
    pub token: u64,
    /// Data can be read (or the peer hung up — a read will surface it).
    pub readable: bool,
    /// The socket's send buffer has room again.
    pub writable: bool,
    /// Error or hangup condition; callers should read to surface it.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
pub use linux::{widen_listen_backlog, Poller};

#[cfg(not(target_os = "linux"))]
pub use sweep::{widen_listen_backlog, Poller};

#[cfg(target_os = "linux")]
mod linux {
    use super::Event;
    use std::io;
    use std::time::Duration;

    // epoll constants, straight from the kernel ABI.
    const EPOLL_CLOEXEC: usize = 0x80000;
    const EPOLL_CTL_ADD: usize = 1;
    const EPOLL_CTL_DEL: usize = 2;
    const EPOLL_CTL_MOD: usize = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 291;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const CLOSE: usize = 3;
        pub const LISTEN: usize = 50;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const CLOSE: usize = 57;
        pub const LISTEN: usize = 201;
    }

    /// The kernel's `struct epoll_event`. On x86_64 the ABI packs it to
    /// 12 bytes; every other architecture uses natural alignment.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall(nr: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall(nr: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack)
        );
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    /// Widens the accept backlog of an already-listening socket.
    ///
    /// `std::net::TcpListener::bind` hardcodes a backlog of 128, which
    /// a C10k connection storm overflows instantly — dropped SYNs then
    /// retransmit on second-scale timers and connects appear to hang.
    /// Linux permits calling `listen(2)` again on a listening socket to
    /// update nothing but the backlog, so this is safe on a listener
    /// `std` already owns. The kernel silently caps the value at
    /// `net.core.somaxconn`.
    pub fn widen_listen_backlog(fd: i32, backlog: u32) -> io::Result<()> {
        // SAFETY: `listen` reads no user memory; the fd is a live
        // listening socket owned by the caller.
        let ret = unsafe { syscall(nr::LISTEN, fd as usize, backlog as usize, 0, 0, 0, 0) };
        check(ret).map(|_| ())
    }

    /// A level-triggered `epoll` instance.
    pub struct Poller {
        epfd: i32,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        /// Creates a fresh epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            let ret = unsafe { syscall(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) };
            let epfd = check(ret)? as i32;
            Ok(Poller { epfd, buf: vec![EpollEvent { events: 0, data: 0 }; 1024] })
        }

        fn ctl(&self, op: usize, fd: i32, event: Option<EpollEvent>) -> io::Result<()> {
            let ptr = match &event {
                Some(ev) => ev as *const EpollEvent as usize,
                None => 0,
            };
            let ret = unsafe { syscall(nr::EPOLL_CTL, self.epfd as usize, op, fd as usize, ptr, 0, 0) };
            check(ret).map(|_| ())
        }

        fn interest(readable: bool, writable: bool) -> u32 {
            let mut events = EPOLLRDHUP;
            if readable {
                events |= EPOLLIN;
            }
            if writable {
                events |= EPOLLOUT;
            }
            events
        }

        /// Starts watching `fd` with the given interest set.
        /// (`&mut self` only to match the portable sweep poller's API.)
        pub fn register(&mut self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
            let ev = EpollEvent { events: Self::interest(readable, writable), data: token };
            self.ctl(EPOLL_CTL_ADD, fd, Some(ev))
        }

        /// Replaces the interest set for an already registered `fd`.
        pub fn modify(&mut self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
            let ev = EpollEvent { events: Self::interest(readable, writable), data: token };
            self.ctl(EPOLL_CTL_MOD, fd, Some(ev))
        }

        /// Stops watching `fd`. Safe to call right before closing it.
        pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        /// Blocks until at least one event arrives or `timeout` expires,
        /// appending events to `out`. `None` blocks indefinitely.
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let timeout_ms: isize = match timeout {
                None => -1,
                Some(d) => {
                    let ms = d.as_millis();
                    // Round sub-millisecond timeouts up so a 100µs
                    // deadline does not busy-spin with timeout 0.
                    if ms == 0 && !d.is_zero() {
                        1
                    } else {
                        ms.min(i32::MAX as u128) as isize
                    }
                }
            };
            let n = loop {
                let ret = unsafe {
                    syscall(
                        nr::EPOLL_PWAIT,
                        self.epfd as usize,
                        self.buf.as_mut_ptr() as usize,
                        self.buf.len(),
                        timeout_ms as usize,
                        0, // sigmask = NULL: plain epoll_wait semantics
                        8, // sizeof(sigset_t) — ignored with a NULL mask
                    )
                };
                match check(ret) {
                    Ok(n) => break n,
                    Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                    Err(err) => return Err(err),
                }
            };
            for ev in &self.buf[..n] {
                let events = ev.events;
                let data = ev.data;
                out.push(Event {
                    token: data,
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                let _ = syscall(nr::CLOSE, self.epfd as usize, 0, 0, 0, 0, 0);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sweep {
    use super::Event;
    use std::io;
    use std::time::Duration;

    /// Portable fallback: every registered descriptor is reported ready
    /// with its full interest set on each tick. Non-blocking reads and
    /// writes returning `WouldBlock` make this correct, if busy.
    pub struct Poller {
        registered: Vec<(i32, u64, bool, bool)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { registered: Vec::new() })
        }

        pub fn register(&mut self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
            self.registered.push((fd, token, readable, writable));
            Ok(())
        }

        pub fn modify(&mut self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
            for slot in &mut self.registered {
                if slot.0 == fd {
                    *slot = (fd, token, readable, writable);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
            self.registered.retain(|slot| slot.0 != fd);
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let tick = Duration::from_millis(1);
            let pause = match timeout {
                Some(d) => d.min(tick),
                None => tick,
            };
            std::thread::sleep(pause);
            for &(_, token, readable, writable) in &self.registered {
                if readable || writable {
                    out.push(Event { token, readable, writable, hangup: false });
                }
            }
            Ok(())
        }
    }

    /// Portable stand-in: there is no cross-platform way to widen the
    /// backlog of a socket `std` already put into the listening state,
    /// so the sweep build keeps the `std` default and accepts that a
    /// connection storm degrades (it stays correct — peers retransmit).
    pub fn widen_listen_backlog(_fd: i32, _backlog: u32) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::time::Duration;
    use std::net::{TcpListener, TcpStream};
    #[cfg(unix)]
    use std::os::unix::io::AsRawFd;

    #[cfg(unix)]
    #[test]
    fn readiness_follows_data_and_buffer_state() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.register(server.as_raw_fd(), 7, true, false).unwrap();

        // Nothing to read yet: a short wait times out with no events.
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(5))).unwrap();
        let spurious = events.iter().any(|e| e.token == 7 && e.readable);
        #[cfg(target_os = "linux")]
        assert!(!spurious, "epoll reported data before any was sent");
        let _ = spurious;

        // After the client writes, the server side must become readable.
        (&client).write_all(b"ping").unwrap();
        let mut events = Vec::new();
        for _ in 0..200 {
            poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
        }
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "no readable event after client write"
        );
        let mut buf = [0u8; 16];
        let mut server_ref = &server;
        let n = server_ref.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        // Write interest on an empty send buffer fires immediately.
        poller.modify(server.as_raw_fd(), 7, true, true).unwrap();
        let mut events = Vec::new();
        for _ in 0..200 {
            poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
            if events.iter().any(|e| e.token == 7 && e.writable) {
                break;
            }
        }
        assert!(
            events.iter().any(|e| e.token == 7 && e.writable),
            "no writable event with an empty send buffer"
        );

        poller.deregister(server.as_raw_fd()).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn hangup_is_reported_as_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.register(server.as_raw_fd(), 3, true, false).unwrap();
        drop(client);

        let mut events = Vec::new();
        for _ in 0..200 {
            poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
            if events.iter().any(|e| e.token == 3 && e.readable) {
                break;
            }
        }
        // Level-triggered epoll reports a closed peer as readable (the
        // read then returns Ok(0)), so reap logic needs no special case.
        assert!(events.iter().any(|e| e.token == 3 && e.readable));
        let mut server_ref = &server;
        let mut buf = [0u8; 8];
        assert_eq!(server_ref.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn timeout_returns_without_events() {
        let mut poller = Poller::new().unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(2))).unwrap();
        // No descriptors registered: the wait may only time out.
        assert!(events.is_empty());
    }
}
