//! Deterministic property-testing harness.
//!
//! Replaces `proptest` for this workspace. A property is a closure from a
//! [`Gen`] (a seeded input generator) to `Result<(), String>`; the harness
//! runs it over a deterministic sequence of case seeds derived from the
//! property name, so the whole suite is reproducible run-to-run with no
//! regression files.
//!
//! On failure the harness performs *shrinking-lite*: it replays the
//! failing case seed at progressively smaller size scales (the `Gen`
//! regenerates structurally smaller inputs from the same randomness), and
//! reports the smallest scale that still fails together with the seed, so
//! a failure message always carries an exact reproduction recipe:
//!
//! ```text
//! property 'traversal_counts_agree' failed (case 17 of 64)
//!   seed: 0x9a3cfe4411aa22bb  scale: 12%
//!   reproduce with: WEBRE_PROP_SEED=0x9a3cfe4411aa22bb cargo test -q traversal_counts_agree
//! ```
//!
//! Environment knobs:
//! * `WEBRE_PROP_CASES` — cases per property (default 64);
//! * `WEBRE_PROP_SEED` — replay exactly one case seed (hex with or
//!   without `0x`, or decimal) at full scale.
//!
//! ```
//! use webre_substrate::{prop, prop_assert, prop_assert_eq};
//!
//! prop::check("reverse_is_involutive", |g| {
//!     let v: Vec<u8> = g.vec(0, 32, |g| g.int(0..=255) as u8);
//!     let mut w = v.clone();
//!     w.reverse();
//!     w.reverse();
//!     prop_assert_eq!(w, v);
//!     Ok(())
//! });
//! ```

use crate::rand::rngs::StdRng;
use crate::rand::seq::SliceRandom;
use crate::rand::{Rng, SampleRange, SeedableRng, SplitMix64};
use crate::rand::RngCore;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// The size-scale ladder tried during shrinking, in percent.
const SHRINK_SCALES: [u32; 6] = [50, 25, 12, 6, 3, 1];

/// Seeded input generator handed to properties.
///
/// All drawing goes through the owned [`StdRng`], so a `(seed, scale)`
/// pair fully determines every generated value. The `scale` (1–100)
/// shrinks the *size* of generated collections and strings without
/// changing the draw sequence semantics — the shrinking-lite mechanism.
pub struct Gen {
    rng: StdRng,
    scale: u32,
}

impl Gen {
    fn new(seed: u64, scale: u32) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(seed),
            scale: scale.clamp(1, 100),
        }
    }

    /// The raw generator, for callers that need `Rng`/`SliceRandom`
    /// directly (e.g. feeding a function under test that takes an rng).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// A uniform integer from a range (`a..b` or `a..=b`), unscaled.
    pub fn int<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        self.rng.gen_range(range)
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// A collection length in `[lo, hi]`, with `hi` pulled toward `lo` by
    /// the current shrink scale. This is the knob shrinking turns.
    pub fn len(&mut self, lo: usize, hi: usize) -> usize {
        let hi = hi.max(lo);
        let scaled_span = ((hi - lo) as u64 * self.scale as u64).div_ceil(100) as usize;
        self.rng.gen_range(lo..=lo + scaled_span)
    }

    /// A vector of `len(lo, hi)` elements drawn by `f`.
    pub fn vec<T>(&mut self, lo: usize, hi: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.len(lo, hi);
        (0..n).map(|_| f(self)).collect()
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        items
            .choose(&mut self.rng)
            .expect("Gen::pick on empty slice")
    }

    /// A string of `len(lo, hi)` chars drawn from `charset`.
    pub fn chars_in(&mut self, charset: &str, lo: usize, hi: usize) -> String {
        let chars: Vec<char> = charset.chars().collect();
        assert!(!chars.is_empty(), "empty charset");
        let n = self.len(lo, hi);
        (0..n).map(|_| *self.pick(&chars)).collect()
    }

    /// A printable-ASCII string (the `[ -~]` class).
    pub fn printable_ascii(&mut self, lo: usize, hi: usize) -> String {
        let n = self.len(lo, hi);
        (0..n)
            .map(|_| char::from(self.int(0x20u8..=0x7e)))
            .collect()
    }

    /// A printable-ASCII string excluding the characters in `excluded`.
    pub fn printable_ascii_except(&mut self, excluded: &str, lo: usize, hi: usize) -> String {
        let n = self.len(lo, hi);
        let mut out = String::with_capacity(n);
        while out.chars().count() < n {
            let c = char::from(self.int(0x20u8..=0x7e));
            if !excluded.contains(c) {
                out.push(c);
            }
        }
        out
    }

    /// Arbitrary text: a mix of ASCII, markup-significant characters,
    /// control characters and multi-byte unicode — the stand-in for
    /// proptest's `.{0,n}` byte-soup strategies.
    pub fn arbitrary_text(&mut self, lo: usize, hi: usize) -> String {
        const SPICE: &[char] = &[
            '<', '>', '&', '"', '\'', '/', '=', '\\', '\n', '\t', '\r', '\u{0}', '\u{1}',
            '\u{7f}', '\u{e9}', '\u{4e2d}', '\u{1F393}', '\u{2028}', ';', ',', ':', '.', '-',
        ];
        let n = self.len(lo, hi);
        (0..n)
            .map(|_| {
                if self.bool(0.75) {
                    char::from(self.int(0x20u8..=0x7e))
                } else {
                    *self.pick(SPICE)
                }
            })
            .collect()
    }
}

/// A reproducible property failure.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The case seed that fails (feed to `WEBRE_PROP_SEED` to replay).
    pub seed: u64,
    /// The smallest size scale (percent) at which the seed still fails.
    pub scale: u32,
    /// Which case (0-based) out of how many.
    pub case: u32,
    /// The failure message (assertion text or panic payload).
    pub message: String,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_owned()
    }
}

fn run_once(
    f: &(impl Fn(&mut Gen) -> Result<(), String> + ?Sized),
    seed: u64,
    scale: u32,
) -> Result<(), String> {
    let mut gen = Gen::new(seed, scale);
    match catch_unwind(AssertUnwindSafe(|| f(&mut gen))) {
        Ok(result) => result,
        Err(payload) => Err(panic_message(payload)),
    }
}

/// Derives the deterministic case-seed stream for a property name.
fn seed_stream(name: &str) -> SplitMix64 {
    // FNV-1a over the property name keys the stream, so properties are
    // independent and renaming one does not perturb the others.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    SplitMix64::new(h)
}

fn cases_from_env() -> u32 {
    std::env::var("WEBRE_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v| *v > 0)
        .unwrap_or(DEFAULT_CASES)
}

fn replay_seed_from_env() -> Option<u64> {
    let raw = std::env::var("WEBRE_PROP_SEED").ok()?;
    let t = raw.trim();
    let parsed = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok().or_else(|| u64::from_str_radix(t, 16).ok())
    };
    match parsed {
        Some(s) => Some(s),
        None => panic!("unparseable WEBRE_PROP_SEED {raw:?}"),
    }
}

/// Runs a property and returns the shrunk failure instead of panicking.
/// This is the engine under [`check`]; it is public so the harness itself
/// can be tested (failure-seed reproduction).
pub fn check_result(
    name: &str,
    cases: u32,
    f: impl Fn(&mut Gen) -> Result<(), String>,
) -> Result<(), Failure> {
    if let Some(seed) = replay_seed_from_env() {
        return match run_once(&f, seed, 100) {
            Ok(()) => Ok(()),
            Err(message) => Err(Failure {
                seed,
                scale: 100,
                case: 0,
                message,
            }),
        };
    }
    let mut stream = seed_stream(name);
    for case in 0..cases {
        let seed = stream.next_u64();
        if let Err(first_message) = run_once(&f, seed, 100) {
            // Shrinking-lite: replay the same seed at smaller scales and
            // keep the smallest one that still fails.
            let mut best = Failure {
                seed,
                scale: 100,
                case,
                message: first_message,
            };
            for scale in SHRINK_SCALES {
                if let Err(message) = run_once(&f, seed, scale) {
                    best.scale = scale;
                    best.message = message;
                }
            }
            return Err(best);
        }
    }
    Ok(())
}

/// Replays one `(seed, scale)` pair; `Ok(())` means the property holds
/// there. Used to verify that a reported [`Failure`] reproduces.
pub fn replay(
    seed: u64,
    scale: u32,
    f: impl Fn(&mut Gen) -> Result<(), String>,
) -> Result<(), String> {
    run_once(&f, seed, scale)
}

/// Runs a property for the configured number of cases, panicking with a
/// reproduction recipe on the first (shrunk) failure.
pub fn check(name: &str, f: impl Fn(&mut Gen) -> Result<(), String>) {
    check_cases(name, cases_from_env(), f);
}

/// [`check`] with an explicit case count (still overridden by
/// `WEBRE_PROP_CASES` if set).
pub fn check_cases(name: &str, cases: u32, f: impl Fn(&mut Gen) -> Result<(), String>) {
    let cases = std::env::var("WEBRE_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v| *v > 0)
        .unwrap_or(cases);
    if let Err(fail) = check_result(name, cases, f) {
        panic!(
            "property '{name}' failed (case {} of {cases})\n  {}\n  seed: {:#018x}  scale: {}%\n  reproduce with: WEBRE_PROP_SEED={:#x} cargo test -q {name}",
            fail.case, fail.message, fail.seed, fail.scale, fail.seed
        );
    }
}

/// In-property assertion: returns `Err` (not a panic) so the harness can
/// shrink and report. Mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`]. Mirrors
/// `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "{}\n  left: {:?}\n  right: {:?}",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        check_cases("passing_property", 32, |g| {
            let v: Vec<u32> = g.vec(0, 16, |g| g.int(0..100u32));
            prop_assert!(v.len() <= 16);
            Ok(())
        });
    }

    #[test]
    fn failing_property_reports_reproducible_seed() {
        // A property that fails whenever the vector has > 3 elements.
        let prop = |g: &mut Gen| {
            let v: Vec<u32> = g.vec(0, 64, |g| g.int(0..10u32));
            prop_assert!(v.len() <= 3, "too long: {}", v.len());
            Ok(())
        };
        let failure = check_result("failing_property", 64, prop)
            .expect_err("property should fail");
        // The reported (seed, scale) pair must reproduce the failure...
        assert!(replay(failure.seed, failure.scale, prop).is_err());
        // ...and shrinking must have reduced the scale below full size.
        assert!(failure.scale < 100, "no shrinking happened");
        assert!(failure.message.contains("too long"));
    }

    #[test]
    fn panics_are_caught_and_attributed() {
        let prop = |g: &mut Gen| {
            let n = g.int(0..1000u32);
            if n > 200 {
                panic!("boom at {n}");
            }
            Ok(())
        };
        let failure =
            check_result("panicking_property", 64, prop).expect_err("should fail");
        assert!(failure.message.contains("boom"), "{}", failure.message);
        assert!(replay(failure.seed, failure.scale, prop).is_err());
    }

    #[test]
    fn case_seeds_are_deterministic_per_name() {
        let collect = |name: &str| -> Vec<u64> {
            let mut s = seed_stream(name);
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_eq!(collect("alpha"), collect("alpha"));
        assert_ne!(collect("alpha"), collect("beta"));
    }

    #[test]
    fn scale_shrinks_generated_sizes() {
        let big = {
            let mut g = Gen::new(99, 100);
            g.len(0, 1000)
        };
        let mut small_max = 0;
        for seed in 0..50 {
            let mut g = Gen::new(seed, 1);
            small_max = small_max.max(g.len(0, 1000));
        }
        assert!(small_max <= 10, "scale 1% produced length {small_max}");
        assert!(big <= 1000);
    }

    #[test]
    fn charset_strings_stay_in_charset() {
        let mut g = Gen::new(5, 100);
        let s = g.chars_in("abc", 0, 64);
        assert!(s.chars().all(|c| "abc".contains(c)));
        let p = g.printable_ascii_except("<>&\"", 0, 64);
        assert!(p.chars().all(|c| (' '..='~').contains(&c) && !"<>&\"".contains(c)));
    }
}
