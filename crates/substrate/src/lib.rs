//! `webre-substrate` — the std-only substrate under the whole workspace.
//!
//! The build environment for this repository is hermetic: no crate may be
//! fetched from a registry. This crate provides deterministic, in-tree
//! replacements for the handful of external libraries the workspace used
//! to depend on:
//!
//! * [`rand`] — a seedable PRNG (SplitMix64 seeding a Xoshiro256\*\*
//!   generator) with the `rand`-crate surface the corpus generator uses
//!   (`gen_range`, `gen_bool`, `choose`, `choose_multiple`, `shuffle`);
//! * [`json`] — a minimal JSON value type with parser and (pretty)
//!   serializer plus `ToJson`/`FromJson` traits and derive-like macros,
//!   replacing `serde`/`serde_json`;
//! * [`prop`] — a deterministic property-testing harness (seeded case
//!   generation, shrinking-lite by size scaling, failure-seed reporting),
//!   replacing `proptest`;
//! * [`bench`] — a monotonic-clock micro-benchmark harness with a
//!   criterion-shaped API that prints median/p95 per iteration and emits
//!   JSON-lines records, replacing `criterion`;
//! * [`sync`] — a bounded MPMC channel (mutex + condvar) with
//!   non-blocking `try_send`, the backpressure primitive under the
//!   `webre-serve` job queue, replacing `crossbeam-channel`;
//! * [`http`] — a minimal HTTP/1.1 request/response codec (no chunked
//!   encoding, no TLS) for the serving subsystem and its in-process test
//!   clients, replacing `httparse`/`hyper`-class dependencies — including
//!   an incremental [`http::RequestParser`] that the readiness-driven
//!   serve core feeds byte ranges as they arrive;
//! * [`poll`] — a readiness-polling abstraction (level-triggered `epoll`
//!   on Linux via direct syscalls, a portable sweep fallback elsewhere)
//!   that multiplexes thousands of non-blocking sockets on one thread,
//!   replacing `mio`;
//! * [`wal`] — length-prefixed, checksummed record framing with a
//!   torn-tail-tolerant decoder and an fsync-batching appender, the file
//!   format under the durable corpus;
//! * [`ring`] — a consistent-hash ring with virtual nodes, routing
//!   content hashes across corpus shards and server instances.
//!
//! Everything in here is `std`-only and deterministic under a fixed seed;
//! there is no ambient entropy anywhere (the bench harness reads the clock,
//! but only to *measure*, never to *decide*).

pub mod bench;
pub mod http;
pub mod json;
pub mod poll;
pub mod prop;
pub mod rand;
pub mod ring;
pub mod sync;
pub mod wal;
