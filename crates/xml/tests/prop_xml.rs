//! Property tests for the XML substrate: writer/parser round trips, name
//! sanitization, and the derivative matcher against a brute-force oracle.

use proptest::prelude::*;
use webre_xml::dtd::parse_content_expr;
use webre_xml::name::{is_valid_name, sanitize};
use webre_xml::validate::matches;
use webre_xml::{parse_xml, to_xml, to_xml_pretty, ContentExpr, XmlDocument, XmlNode};

/// Random concept-like element names.
fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,8}".prop_filter("no xml prefix", |s| !s.starts_with("xml"))
}

/// Random XML documents over a small name alphabet.
fn doc_strategy() -> impl Strategy<Value = XmlDocument> {
    let shape = proptest::collection::vec((0usize..6, name_strategy(), "[ -~&&[^\"&<>]]{0,12}"), 0..24);
    shape.prop_map(|nodes| {
        let mut doc = XmlDocument::new("root");
        let mut ids = vec![doc.root()];
        for (parent_idx, name, val) in nodes {
            let parent = ids[parent_idx % ids.len()];
            let node = if val.is_empty() {
                XmlNode::element(name)
            } else {
                XmlNode::element_with_val(name, val)
            };
            ids.push(doc.tree.append_child(parent, node));
        }
        doc
    })
}

/// A small random content expression over the alphabet {a, b, c}.
fn expr_strategy() -> impl Strategy<Value = ContentExpr> {
    let leaf = prop_oneof![
        Just(ContentExpr::Name("a".into())),
        Just(ContentExpr::Name("b".into())),
        Just(ContentExpr::Name("c".into())),
        Just(ContentExpr::PcData),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(ContentExpr::Seq),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(ContentExpr::Choice),
            inner.clone().prop_map(|e| ContentExpr::Opt(Box::new(e))),
            inner.clone().prop_map(|e| ContentExpr::Star(Box::new(e))),
            inner.prop_map(|e| ContentExpr::Plus(Box::new(e))),
        ]
    })
}

/// Brute-force oracle: does `expr` match `tokens`? Exponential, fine for the
/// tiny sizes proptest feeds it.
fn oracle(expr: &ContentExpr, tokens: &[&str]) -> bool {
    match expr {
        ContentExpr::Empty => tokens.is_empty(),
        ContentExpr::PcData => tokens.iter().all(|t| *t == "#PCDATA"),
        ContentExpr::Name(n) => tokens.len() == 1 && tokens[0] == n,
        ContentExpr::Seq(items) => match items.split_first() {
            None => tokens.is_empty(),
            Some((head, rest)) => (0..=tokens.len()).any(|split| {
                oracle(head, &tokens[..split])
                    && oracle(&ContentExpr::Seq(rest.to_vec()), &tokens[split..])
            }),
        },
        ContentExpr::Choice(items) => items.iter().any(|i| oracle(i, tokens)),
        ContentExpr::Opt(inner) => tokens.is_empty() || oracle(inner, tokens),
        ContentExpr::Star(inner) => {
            tokens.is_empty()
                || (1..=tokens.len()).any(|split| {
                    oracle(inner, &tokens[..split])
                        && oracle(&ContentExpr::Star(inner.clone()), &tokens[split..])
                })
        }
        ContentExpr::Plus(inner) => oracle(inner, tokens)
            || (1..=tokens.len()).any(|split| {
                oracle(inner, &tokens[..split])
                    && oracle(&ContentExpr::Star(inner.clone()), &tokens[split..])
            }),
    }
}

proptest! {
    #[test]
    fn writer_parser_round_trip(doc in doc_strategy()) {
        let xml = to_xml(&doc);
        let parsed = parse_xml(&xml).unwrap();
        prop_assert!(doc.tree.subtree_eq(doc.root(), &parsed.tree, parsed.root()),
            "round trip failed for {xml}");
    }

    #[test]
    fn pretty_writer_parses_to_same_document(doc in doc_strategy()) {
        let xml = to_xml_pretty(&doc);
        let parsed = parse_xml(&xml).unwrap();
        prop_assert!(doc.tree.subtree_eq(doc.root(), &parsed.tree, parsed.root()));
    }

    #[test]
    fn sanitize_always_valid(raw in ".{0,32}") {
        prop_assert!(is_valid_name(&sanitize(&raw)));
    }

    #[test]
    fn sanitize_idempotent(raw in ".{0,32}") {
        let once = sanitize(&raw);
        prop_assert_eq!(sanitize(&once), once.clone());
    }

    #[test]
    fn derivative_matcher_agrees_with_oracle(
        expr in expr_strategy(),
        tokens in proptest::collection::vec(
            prop_oneof![Just("a"), Just("b"), Just("c"), Just("#PCDATA")], 0..6),
    ) {
        let toks: Vec<&str> = tokens.clone();
        prop_assert_eq!(matches(&expr, &toks), oracle(&expr, &toks),
            "disagreement on {:?} vs {:?}", expr, toks);
    }

    #[test]
    fn content_expr_display_parse_round_trip(expr in expr_strategy()) {
        let printed = expr.to_string();
        let reparsed = parse_content_expr(&printed).unwrap();
        // Display may drop redundant grouping, so compare by language on a
        // sample of short token strings rather than structurally.
        let alphabet = ["a", "b", "c", "#PCDATA"];
        for len in 0..3usize {
            let mut idxs = vec![0usize; len];
            loop {
                let toks: Vec<&str> = idxs.iter().map(|i| alphabet[*i]).collect();
                prop_assert_eq!(matches(&expr, &toks), matches(&reparsed, &toks),
                    "language changed for {} on {:?}", printed, toks);
                // Odometer increment.
                let mut k = 0;
                loop {
                    if k == len { break; }
                    idxs[k] += 1;
                    if idxs[k] < alphabet.len() { break; }
                    idxs[k] = 0;
                    k += 1;
                }
                if k == len { break; }
            }
        }
    }
}
