//! Property tests for the XML substrate: writer/parser round trips, name
//! sanitization, and the derivative matcher against a brute-force oracle.

use webre_substrate::prop::{self, Gen};
use webre_substrate::{prop_assert, prop_assert_eq};
use webre_xml::dtd::parse_content_expr;
use webre_xml::name::{is_valid_name, sanitize};
use webre_xml::validate::matches;
use webre_xml::{parse_xml, to_xml, to_xml_pretty, ContentExpr, XmlDocument, XmlNode};

/// Random concept-like element names (never starting with "xml").
fn gen_name(g: &mut Gen) -> String {
    let mut name = g.chars_in("abcdefghijklmnopqrstuvwxyz", 1, 1);
    name.push_str(&g.chars_in("abcdefghijklmnopqrstuvwxyz0123456789-", 0, 8));
    if name.starts_with("xml") {
        name.replace_range(0..1, "q");
    }
    name
}

/// Random XML documents over a small name alphabet.
fn gen_doc(g: &mut Gen) -> XmlDocument {
    let nodes = g.vec(0, 23, |g| {
        (
            g.int(0usize..6),
            gen_name(g),
            g.printable_ascii_except("\"&<>", 0, 12),
        )
    });
    let mut doc = XmlDocument::new("root");
    let mut ids = vec![doc.root()];
    for (parent_idx, name, val) in nodes {
        let parent = ids[parent_idx % ids.len()];
        let node = if val.is_empty() {
            XmlNode::element(name)
        } else {
            XmlNode::element_with_val(name, val)
        };
        ids.push(doc.tree.append_child(parent, node));
    }
    doc
}

/// A small random content expression over the alphabet {a, b, c}.
fn gen_expr(g: &mut Gen, depth: u32) -> ContentExpr {
    if depth == 0 {
        return match g.int(0..4u32) {
            0 => ContentExpr::Name("a".into()),
            1 => ContentExpr::Name("b".into()),
            2 => ContentExpr::Name("c".into()),
            _ => ContentExpr::PcData,
        };
    }
    match g.int(0..6u32) {
        0 => ContentExpr::Seq(g.vec(1, 2, |g| gen_expr(g, depth - 1))),
        1 => ContentExpr::Choice(g.vec(1, 2, |g| gen_expr(g, depth - 1))),
        2 => ContentExpr::Opt(Box::new(gen_expr(g, depth - 1))),
        3 => ContentExpr::Star(Box::new(gen_expr(g, depth - 1))),
        4 => ContentExpr::Plus(Box::new(gen_expr(g, depth - 1))),
        _ => gen_expr(g, 0),
    }
}

/// Brute-force oracle: does `expr` match `tokens`? Exponential, fine for the
/// tiny sizes the generator feeds it.
fn oracle(expr: &ContentExpr, tokens: &[&str]) -> bool {
    match expr {
        ContentExpr::Empty => tokens.is_empty(),
        ContentExpr::PcData => tokens.iter().all(|t| *t == "#PCDATA"),
        ContentExpr::Name(n) => tokens.len() == 1 && tokens[0] == n,
        ContentExpr::Seq(items) => match items.split_first() {
            None => tokens.is_empty(),
            Some((head, rest)) => (0..=tokens.len()).any(|split| {
                oracle(head, &tokens[..split])
                    && oracle(&ContentExpr::Seq(rest.to_vec()), &tokens[split..])
            }),
        },
        ContentExpr::Choice(items) => items.iter().any(|i| oracle(i, tokens)),
        ContentExpr::Opt(inner) => tokens.is_empty() || oracle(inner, tokens),
        ContentExpr::Star(inner) => {
            tokens.is_empty()
                || (1..=tokens.len()).any(|split| {
                    oracle(inner, &tokens[..split])
                        && oracle(&ContentExpr::Star(inner.clone()), &tokens[split..])
                })
        }
        ContentExpr::Plus(inner) => oracle(inner, tokens)
            || (1..=tokens.len()).any(|split| {
                oracle(inner, &tokens[..split])
                    && oracle(&ContentExpr::Star(inner.clone()), &tokens[split..])
            }),
    }
}

#[test]
fn writer_parser_round_trip() {
    prop::check("writer_parser_round_trip", |g| {
        let doc = gen_doc(g);
        let xml = to_xml(&doc);
        let parsed = parse_xml(&xml).unwrap();
        prop_assert!(
            doc.tree.subtree_eq(doc.root(), &parsed.tree, parsed.root()),
            "round trip failed for {xml}"
        );
        Ok(())
    });
}

#[test]
fn pretty_writer_parses_to_same_document() {
    prop::check("pretty_writer_parses_to_same_document", |g| {
        let doc = gen_doc(g);
        let xml = to_xml_pretty(&doc);
        let parsed = parse_xml(&xml).unwrap();
        prop_assert!(doc.tree.subtree_eq(doc.root(), &parsed.tree, parsed.root()));
        Ok(())
    });
}

#[test]
fn sanitize_always_valid() {
    prop::check("sanitize_always_valid", |g| {
        let raw = g.arbitrary_text(0, 32);
        prop_assert!(is_valid_name(&sanitize(&raw)));
        Ok(())
    });
}

#[test]
fn sanitize_idempotent() {
    prop::check("sanitize_idempotent", |g| {
        let raw = g.arbitrary_text(0, 32);
        let once = sanitize(&raw);
        prop_assert_eq!(sanitize(&once), once.clone());
        Ok(())
    });
}

#[test]
fn derivative_matcher_agrees_with_oracle() {
    prop::check("derivative_matcher_agrees_with_oracle", |g| {
        let expr = gen_expr(g, 3);
        let tokens = g.vec(0, 5, |g| *g.pick(&["a", "b", "c", "#PCDATA"]));
        prop_assert_eq!(
            matches(&expr, &tokens),
            oracle(&expr, &tokens),
            "disagreement on {:?} vs {:?}",
            expr,
            tokens
        );
        Ok(())
    });
}

#[test]
fn content_expr_display_parse_round_trip() {
    prop::check("content_expr_display_parse_round_trip", |g| {
        let expr = gen_expr(g, 3);
        let printed = expr.to_string();
        let reparsed = parse_content_expr(&printed).unwrap();
        // Display may drop redundant grouping, so compare by language on a
        // sample of short token strings rather than structurally.
        let alphabet = ["a", "b", "c", "#PCDATA"];
        for len in 0..3usize {
            let mut idxs = vec![0usize; len];
            loop {
                let toks: Vec<&str> = idxs.iter().map(|i| alphabet[*i]).collect();
                prop_assert_eq!(
                    matches(&expr, &toks),
                    matches(&reparsed, &toks),
                    "language changed for {} on {:?}",
                    printed,
                    toks
                );
                // Odometer increment.
                let mut k = 0;
                loop {
                    if k == len {
                        break;
                    }
                    idxs[k] += 1;
                    if idxs[k] < alphabet.len() {
                        break;
                    }
                    idxs[k] = 0;
                    k += 1;
                }
                if k == len {
                    break;
                }
            }
        }
        Ok(())
    });
}
