//! Tiny label-path query language over XML documents.
//!
//! Schema discovery reasons entirely in label paths; this module lets
//! users and tests query documents the same way:
//!
//! * `resume/education/degree` — exact label path from the root;
//! * `*` matches any element at one level;
//! * `//name` as a prefix selects descendants with a label anywhere.
//!
//! ```
//! use webre_xml::{parse_xml, select::select};
//!
//! let doc = parse_xml("<r><e><d/></e><e><d/><d/></e></r>").unwrap();
//! assert_eq!(select(&doc, "r/e/d").len(), 3);
//! assert_eq!(select(&doc, "r/*/d").len(), 3);
//! assert_eq!(select(&doc, "//d").len(), 3);
//! ```

use crate::document::{XmlDocument, XmlNode};
use webre_tree::NodeId;

/// Selects element nodes matching the query (see module docs).
pub fn select(doc: &XmlDocument, query: &str) -> Vec<NodeId> {
    if let Some(label) = query.strip_prefix("//") {
        return doc
            .tree
            .descendants(doc.root())
            .filter(|id| {
                matches!(doc.tree.value(*id), XmlNode::Element { name, .. } if name == label)
            })
            .collect();
    }
    let parts: Vec<&str> = query.split('/').filter(|p| !p.is_empty()).collect();
    if parts.is_empty() {
        return Vec::new();
    }
    let mut current: Vec<NodeId> = Vec::new();
    if matches_step(doc, doc.root(), parts[0]) {
        current.push(doc.root());
    }
    for step in &parts[1..] {
        let mut next = Vec::new();
        for node in current {
            for child in doc.tree.children(node) {
                if matches_step(doc, child, step) {
                    next.push(child);
                }
            }
        }
        current = next;
    }
    current
}

fn matches_step(doc: &XmlDocument, id: NodeId, step: &str) -> bool {
    match doc.tree.value(id) {
        XmlNode::Element { name, .. } => step == "*" || name == step,
        XmlNode::Text(_) => false,
    }
}

/// Convenience: the `val` attributes of all matches, in document order.
pub fn select_vals(doc: &XmlDocument, query: &str) -> Vec<String> {
    select(doc, query)
        .into_iter()
        .filter_map(|id| doc.tree.value(id).val().map(str::to_owned))
        .collect()
}

/// Convenience: the first match, if any.
pub fn select_first(doc: &XmlDocument, query: &str) -> Option<NodeId> {
    select(doc, query).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xml;

    fn doc() -> XmlDocument {
        parse_xml(
            r#"<resume>
                 <education val="Edu">
                   <institution val="UCD"><degree val="BS"/></institution>
                   <institution val="MIT"><degree val="MS"/></institution>
                 </education>
                 <experience><employer val="Verity"/></experience>
               </resume>"#,
        )
        .unwrap()
    }

    #[test]
    fn exact_paths() {
        let d = doc();
        assert_eq!(select(&d, "resume").len(), 1);
        assert_eq!(select(&d, "resume/education").len(), 1);
        assert_eq!(select(&d, "resume/education/institution").len(), 2);
        assert_eq!(select(&d, "resume/education/institution/degree").len(), 2);
        assert!(select(&d, "resume/degree").is_empty());
        assert!(select(&d, "cv/education").is_empty());
    }

    #[test]
    fn wildcard_steps() {
        let d = doc();
        assert_eq!(select(&d, "resume/*").len(), 2);
        assert_eq!(select(&d, "resume/*/institution").len(), 2);
        assert_eq!(select(&d, "*/*/*").len(), 3); // 2 institutions + employer
    }

    #[test]
    fn descendant_queries() {
        let d = doc();
        assert_eq!(select(&d, "//degree").len(), 2);
        assert_eq!(select(&d, "//institution").len(), 2);
        assert_eq!(select(&d, "//resume").len(), 1);
        assert!(select(&d, "//nothing").is_empty());
    }

    #[test]
    fn vals_in_document_order() {
        let d = doc();
        assert_eq!(select_vals(&d, "//institution"), ["UCD", "MIT"]);
        assert_eq!(select_vals(&d, "resume/education"), ["Edu"]);
    }

    #[test]
    fn select_first_returns_leftmost() {
        let d = doc();
        let first = select_first(&d, "//institution").unwrap();
        assert_eq!(d.tree.value(first).val(), Some("UCD"));
        assert!(select_first(&d, "//zzz").is_none());
    }

    #[test]
    fn empty_and_degenerate_queries() {
        let d = doc();
        assert!(select(&d, "").is_empty());
        assert!(select(&d, "/").is_empty());
        assert_eq!(select(&d, "//").len(), 0);
    }
}
