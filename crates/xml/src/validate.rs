//! DTD conformance checking via Brzozowski derivatives.
//!
//! A content model is a regular expression over element names (plus
//! `#PCDATA`). To validate an element we take the sequence of its children's
//! labels and repeatedly take the derivative of the content model with
//! respect to each label; the element conforms if the final expression is
//! nullable. Derivatives keep the matcher simple, allocation-light and
//! obviously correct — the property tests cross-check it against a
//! brute-force oracle.
//!
//! Following the paper's DTD style, `#PCDATA` inside a sequence means
//! "optional text here"; the matcher treats `#PCDATA` as nullable and as
//! matching any number of consecutive `#PCDATA` tokens. Matching is strict
//! otherwise: a text child is only admitted where the model has `#PCDATA`.

use crate::document::{XmlDocument, XmlNode};
use crate::dtd::{ContentExpr, Dtd};

/// Whether the expression matches the empty sequence.
pub fn nullable(expr: &ContentExpr) -> bool {
    match expr {
        ContentExpr::Empty => true,
        ContentExpr::PcData => true, // text is always optional
        ContentExpr::Name(_) => false,
        ContentExpr::Seq(items) => items.iter().all(nullable),
        ContentExpr::Choice(items) => items.iter().any(nullable),
        ContentExpr::Opt(_) | ContentExpr::Star(_) => true,
        ContentExpr::Plus(inner) => nullable(inner),
    }
}

/// The Brzozowski derivative of `expr` with respect to the label `token`.
///
/// Returns `None` when the derivative is the empty language (no match).
fn deriv(expr: &ContentExpr, token: &str) -> Option<ContentExpr> {
    match expr {
        ContentExpr::Empty => None,
        ContentExpr::PcData => {
            if token == "#PCDATA" {
                // Paper-style (#PCDATA) admits any number of text nodes.
                Some(ContentExpr::PcData)
            } else {
                None
            }
        }
        ContentExpr::Name(n) => {
            if n == token {
                Some(ContentExpr::Seq(Vec::new())) // ε
            } else {
                None
            }
        }
        ContentExpr::Seq(items) => {
            // d(a·rest) = d(a)·rest  |  (nullable(a) ? d(rest) : ∅)
            let Some((head, rest)) = items.split_first() else {
                return None; // ε has no derivative
            };
            let via_head = deriv(head, token).map(|d| {
                let mut seq = Vec::with_capacity(rest.len() + 1);
                if !is_epsilon(&d) {
                    seq.push(d);
                }
                seq.extend(rest.iter().cloned());
                flatten_seq(seq)
            });
            let via_rest = if nullable(head) {
                deriv(&ContentExpr::Seq(rest.to_vec()), token)
            } else {
                None
            };
            union(via_head, via_rest)
        }
        ContentExpr::Choice(items) => {
            let mut result: Option<ContentExpr> = None;
            for item in items {
                result = union(result, deriv(item, token));
            }
            result
        }
        ContentExpr::Opt(inner) => deriv(inner, token),
        ContentExpr::Star(inner) => deriv(inner, token).map(|d| {
            ContentExpr::seq([d, ContentExpr::Star(inner.clone())])
        }),
        ContentExpr::Plus(inner) => deriv(inner, token).map(|d| {
            ContentExpr::seq([d, ContentExpr::Star(inner.clone())])
        }),
    }
}

fn is_epsilon(expr: &ContentExpr) -> bool {
    matches!(expr, ContentExpr::Seq(items) if items.is_empty())
}

/// A sequence with single-item unwrapping and nested-sequence flattening,
/// so repeated derivation cannot pile up `Seq(Seq(…))` towers.
fn flatten_seq(items: Vec<ContentExpr>) -> ContentExpr {
    let mut flat = Vec::with_capacity(items.len());
    for item in items {
        match item {
            ContentExpr::Seq(inner) => flat.extend(inner),
            other => flat.push(other),
        }
    }
    if flat.len() == 1 {
        flat.pop().expect("len checked")
    } else {
        ContentExpr::Seq(flat)
    }
}

/// Union of two derivative results, reduced modulo similarity: nested
/// choices are flattened and duplicate alternatives dropped. Without this
/// reduction the derivative of an ambiguous model (e.g. nested stars over
/// overlapping choices) doubles in size at every token and matching
/// becomes exponential in the word length; with it, the set of distinct
/// alternatives stays bounded by the distinct derivatives of the original
/// model's subterms.
fn union(a: Option<ContentExpr>, b: Option<ContentExpr>) -> Option<ContentExpr> {
    let (a, b) = match (a, b) {
        (None, x) | (x, None) => return x,
        (Some(a), Some(b)) => (a, b),
    };
    let mut alts: Vec<ContentExpr> = Vec::new();
    for side in [a, b] {
        let side_alts = match side {
            ContentExpr::Choice(inner) => inner,
            other => vec![other],
        };
        for alt in side_alts {
            if !alts.contains(&alt) {
                alts.push(alt);
            }
        }
    }
    Some(if alts.len() == 1 {
        alts.pop().expect("len checked")
    } else {
        ContentExpr::Choice(alts)
    })
}

/// Whether the token sequence `tokens` matches the content model `expr`.
pub fn matches(expr: &ContentExpr, tokens: &[&str]) -> bool {
    let mut current = expr.clone();
    for token in tokens {
        match deriv(&current, token) {
            Some(next) => current = next,
            None => return false,
        }
    }
    nullable(&current) || is_epsilon(&current)
}

/// A conformance violation found by [`validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConformanceError {
    /// The document's root element differs from the DTD root.
    WrongRoot { expected: String, found: String },
    /// An element has no declaration in the DTD.
    UndeclaredElement { name: String },
    /// An element's children do not match its declared content model.
    ContentMismatch {
        element: String,
        children: Vec<String>,
        model: String,
    },
}

impl std::fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConformanceError::WrongRoot { expected, found } => {
                write!(f, "root element is <{found}>, DTD expects <{expected}>")
            }
            ConformanceError::UndeclaredElement { name } => {
                write!(f, "element <{name}> is not declared in the DTD")
            }
            ConformanceError::ContentMismatch {
                element,
                children,
                model,
            } => write!(
                f,
                "children of <{element}> ({}) do not match content model {model}",
                children.join(", ")
            ),
        }
    }
}

/// Validates `doc` against `dtd`, returning every violation found.
///
/// An empty result means the document conforms. Elements with a `val`
/// attribute are treated as also carrying text (the paper's conversion
/// stores text in `val` rather than as child text nodes), which trivially
/// satisfies any `#PCDATA` in the model since text is optional.
pub fn validate(doc: &XmlDocument, dtd: &Dtd) -> Vec<ConformanceError> {
    let mut errors = Vec::new();
    if doc.root_name() != dtd.root {
        errors.push(ConformanceError::WrongRoot {
            expected: dtd.root.clone(),
            found: doc.root_name().to_owned(),
        });
    }
    for id in doc.tree.descendants(doc.root()) {
        let XmlNode::Element { name, .. } = doc.tree.value(id) else {
            continue;
        };
        let Some(model) = dtd.content_of(name) else {
            errors.push(ConformanceError::UndeclaredElement { name: name.clone() });
            continue;
        };
        let children: Vec<&str> = doc.tree.children(id).map(|c| doc.label(c)).collect();
        if !matches(model, &children) {
            errors.push(ConformanceError::ContentMismatch {
                element: name.clone(),
                children: children.iter().map(|s| (*s).to_owned()).collect(),
                model: model.to_string(),
            });
        }
    }
    errors
}

/// Convenience: whether `doc` fully conforms to `dtd`.
pub fn conforms(doc: &XmlDocument, dtd: &Dtd) -> bool {
    validate(doc, dtd).is_empty()
}

/// Validates a single element-children sequence by name, used by the mapper.
pub fn element_conforms(dtd: &Dtd, name: &str, children: &[&str]) -> bool {
    match dtd.content_of(name) {
        Some(model) => matches(model, children),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd::parse_content_expr;

    fn m(model: &str, tokens: &[&str]) -> bool {
        matches(&parse_content_expr(model).unwrap(), tokens)
    }

    #[test]
    fn single_name() {
        assert!(m("(a)", &["a"]));
        assert!(!m("(a)", &[]));
        assert!(!m("(a)", &["b"]));
        assert!(!m("(a)", &["a", "a"]));
    }

    #[test]
    fn sequences() {
        assert!(m("(a, b, c)", &["a", "b", "c"]));
        assert!(!m("(a, b, c)", &["a", "c", "b"]));
        assert!(!m("(a, b, c)", &["a", "b"]));
    }

    #[test]
    fn choice() {
        assert!(m("(a | b)", &["a"]));
        assert!(m("(a | b)", &["b"]));
        assert!(!m("(a | b)", &["a", "b"]));
    }

    #[test]
    fn optional_and_star_and_plus() {
        assert!(m("(a?)", &[]));
        assert!(m("(a?)", &["a"]));
        assert!(!m("(a?)", &["a", "a"]));
        assert!(m("(a*)", &[]));
        assert!(m("(a*)", &["a", "a", "a"]));
        assert!(!m("(a+)", &[]));
        assert!(m("(a+)", &["a", "a"]));
    }

    #[test]
    fn grouped_repetition() {
        assert!(m("((a, b)+, c)", &["a", "b", "a", "b", "c"]));
        assert!(!m("((a, b)+, c)", &["a", "a", "b", "c"]));
    }

    #[test]
    fn pcdata_is_optional_and_repeatable() {
        assert!(m("(#PCDATA)", &[]));
        assert!(m("(#PCDATA)", &["#PCDATA"]));
        assert!(m("(#PCDATA)", &["#PCDATA", "#PCDATA"]));
        assert!(!m("(#PCDATA)", &["a"]));
    }

    #[test]
    fn paper_resume_model() {
        // The model from the paper's Section 4.4 fragment.
        let model = "((#PCDATA), contact+, objective, education+, courses, \
                     experience+, awards, skills, activities+, reference)";
        assert!(m(
            model,
            &[
                "contact",
                "objective",
                "education",
                "education",
                "courses",
                "experience",
                "awards",
                "skills",
                "activities",
                "reference"
            ]
        ));
        // Missing a required element.
        assert!(!m(
            model,
            &["contact", "objective", "courses", "experience", "awards", "skills", "activities", "reference"]
        ));
        // Leading text is fine.
        assert!(m(
            model,
            &[
                "#PCDATA",
                "contact",
                "objective",
                "education",
                "courses",
                "experience",
                "awards",
                "skills",
                "activities",
                "reference"
            ]
        ));
    }

    #[test]
    fn empty_model() {
        assert!(m("EMPTY", &[]));
        assert!(!m("EMPTY", &["a"]));
    }

    #[test]
    fn validate_document() {
        use crate::document::{XmlDocument, XmlNode};
        let mut dtd = Dtd::new("r");
        dtd.declare("r", parse_content_expr("(a+, b)").unwrap());
        dtd.declare("a", ContentExpr::PcData);
        dtd.declare("b", ContentExpr::PcData);

        let mut doc = XmlDocument::new("r");
        let root = doc.root();
        doc.tree.append_child(root, XmlNode::element("a"));
        doc.tree.append_child(root, XmlNode::element("a"));
        doc.tree.append_child(root, XmlNode::element("b"));
        assert!(conforms(&doc, &dtd));

        // Add an undeclared element and break the order.
        doc.tree.append_child(root, XmlNode::element("z"));
        let errs = validate(&doc, &dtd);
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(errs
            .iter()
            .any(|e| matches!(e, ConformanceError::UndeclaredElement { name } if name == "z")));
        assert!(errs
            .iter()
            .any(|e| matches!(e, ConformanceError::ContentMismatch { element, .. } if element == "r")));
    }

    #[test]
    fn validate_wrong_root() {
        let dtd = Dtd::new("resume");
        let doc = XmlDocument::new("cv");
        let errs = validate(&doc, &dtd);
        assert!(matches!(&errs[0], ConformanceError::WrongRoot { .. }));
    }

    #[test]
    fn error_display() {
        let e = ConformanceError::ContentMismatch {
            element: "r".into(),
            children: vec!["a".into(), "b".into()],
            model: "(a)".into(),
        };
        assert!(e.to_string().contains("<r>"));
    }
}
