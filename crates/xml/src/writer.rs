//! XML serialization: compact (canonical-ish) and pretty-printed.

use crate::document::{XmlDocument, XmlNode};
use webre_tree::{Edge, NodeId};

fn escape_text(input: &str, out: &mut String) {
    for ch in input.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(ch),
        }
    }
}

fn escape_attr(input: &str, out: &mut String) {
    for ch in input.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
}

fn open_tag(node: &XmlNode, out: &mut String) {
    if let XmlNode::Element { name, attrs } = node {
        out.push('<');
        out.push_str(name);
        for (k, v) in attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            escape_attr(v, out);
            out.push('"');
        }
    }
}

/// Serializes the subtree at `id` without whitespace between elements.
pub fn subtree_to_xml(doc: &XmlDocument, id: NodeId) -> String {
    let mut out = String::new();
    for edge in doc.tree.traverse(id) {
        match edge {
            Edge::Open(n) => match doc.tree.value(n) {
                e @ XmlNode::Element { .. } => {
                    open_tag(e, &mut out);
                    if doc.tree.is_leaf(n) {
                        out.push_str("/>");
                    } else {
                        out.push('>');
                    }
                }
                XmlNode::Text(t) => escape_text(t, &mut out),
            },
            Edge::Close(n) => {
                if let XmlNode::Element { name, .. } = doc.tree.value(n) {
                    if !doc.tree.is_leaf(n) {
                        out.push_str("</");
                        out.push_str(name);
                        out.push('>');
                    }
                }
            }
        }
    }
    out
}

/// Serializes the whole document compactly.
pub fn to_xml(doc: &XmlDocument) -> String {
    subtree_to_xml(doc, doc.root())
}

/// Serializes the whole document with two-space indentation, one element
/// per line (text nodes are kept inline inside their parent).
pub fn to_xml_pretty(doc: &XmlDocument) -> String {
    let mut out = String::new();
    write_pretty(doc, doc.root(), 0, &mut out);
    out
}

/// Whether the element at `id` has only text children (rendered inline).
fn only_text_children(doc: &XmlDocument, id: NodeId) -> bool {
    doc.tree
        .children(id)
        .all(|c| matches!(doc.tree.value(c), XmlNode::Text(_)))
}

fn write_pretty(doc: &XmlDocument, id: NodeId, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    match doc.tree.value(id) {
        XmlNode::Text(t) => {
            out.push_str(&indent);
            escape_text(t, out);
            out.push('\n');
        }
        e @ XmlNode::Element { name, .. } => {
            out.push_str(&indent);
            open_tag(e, out);
            if doc.tree.is_leaf(id) {
                out.push_str("/>\n");
            } else if only_text_children(doc, id) {
                out.push('>');
                for c in doc.tree.children(id) {
                    if let XmlNode::Text(t) = doc.tree.value(c) {
                        escape_text(t, out);
                    }
                }
                out.push_str("</");
                out.push_str(name);
                out.push_str(">\n");
            } else {
                out.push_str(">\n");
                for c in doc.tree.children(id) {
                    write_pretty(doc, c, depth + 1, out);
                }
                out.push_str(&indent);
                out.push_str("</");
                out.push_str(name);
                out.push_str(">\n");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::XmlNode;

    fn sample() -> XmlDocument {
        let mut doc = XmlDocument::new("resume");
        let root = doc.root();
        let edu = doc
            .tree
            .append_child(root, XmlNode::element_with_val("education", "Education"));
        doc.tree
            .append_child(edu, XmlNode::element_with_val("degree", "B.S."));
        doc
    }

    #[test]
    fn compact_output() {
        let doc = sample();
        assert_eq!(
            to_xml(&doc),
            r#"<resume><education val="Education"><degree val="B.S."/></education></resume>"#
        );
    }

    #[test]
    fn empty_root_self_closes() {
        let doc = XmlDocument::new("empty");
        assert_eq!(to_xml(&doc), "<empty/>");
    }

    #[test]
    fn escapes_attr_and_text() {
        let mut doc = XmlDocument::new("r");
        let root = doc.root();
        let a = doc
            .tree
            .append_child(root, XmlNode::element_with_val("a", r#"x<y & "z""#));
        doc.tree.append_child(a, XmlNode::Text("1 < 2".into()));
        let xml = to_xml(&doc);
        assert!(xml.contains(r#"val="x&lt;y &amp; &quot;z&quot;""#));
        assert!(xml.contains("1 &lt; 2"));
    }

    #[test]
    fn pretty_output_indents() {
        let doc = sample();
        let pretty = to_xml_pretty(&doc);
        assert_eq!(
            pretty,
            "<resume>\n  <education val=\"Education\">\n    <degree val=\"B.S.\"/>\n  </education>\n</resume>\n"
        );
    }

    #[test]
    fn pretty_inlines_text_only_elements() {
        let mut doc = XmlDocument::new("r");
        let root = doc.root();
        let a = doc.tree.append_child(root, XmlNode::element("note"));
        doc.tree.append_child(a, XmlNode::Text("hello".into()));
        assert_eq!(to_xml_pretty(&doc), "<r>\n  <note>hello</note>\n</r>\n");
    }
}
