//! A small, strict XML parser.
//!
//! Supports the subset the workspace produces: elements, attributes, text,
//! character references, comments and processing instructions (skipped), and
//! an optional XML declaration / DOCTYPE (skipped). Unlike the HTML parser
//! it rejects malformed input with a positioned error — XML is strict.

use crate::document::{XmlDocument, XmlNode};
use std::fmt;
use webre_tree::NodeId;

/// Error raised by [`parse_xml`], with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XmlParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for XmlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlParseError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

/// Parses an XML document. Exactly one root element is required.
pub fn parse_xml(input: &str) -> Result<XmlDocument, XmlParseError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_misc()?;
    let doc = p.parse_root()?;
    p.skip_misc()?;
    if p.pos < p.input.len() {
        return Err(p.error("content after document element"));
    }
    Ok(doc)
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> XmlParseError {
        XmlParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    /// Skips whitespace, comments, PIs, XML declaration and DOCTYPE.
    fn skip_misc(&mut self) -> Result<(), XmlParseError> {
        loop {
            self.skip_ws();
            let rest = self.rest();
            if let Some(body) = rest.strip_prefix("<!--") {
                match body.find("-->") {
                    Some(end) => self.pos += 4 + end + 3,
                    None => return Err(self.error("unterminated comment")),
                }
            } else if rest.starts_with("<?") {
                match rest.find("?>") {
                    Some(end) => self.pos += end + 2,
                    None => return Err(self.error("unterminated processing instruction")),
                }
            } else if rest.starts_with("<!DOCTYPE") {
                match rest.find('>') {
                    Some(end) => self.pos += end + 1,
                    None => return Err(self.error("unterminated DOCTYPE")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_root(&mut self) -> Result<XmlDocument, XmlParseError> {
        if !self.rest().starts_with('<') {
            return Err(self.error("expected document element"));
        }
        let (node, self_closing) = self.parse_start_tag()?;
        let mut doc = XmlDocument {
            tree: webre_tree::Tree::new(node),
        };
        if !self_closing {
            let root = doc.root();
            self.parse_content(&mut doc, root)?;
        }
        Ok(doc)
    }

    /// Parses element content up to (and including) the matching end tag of
    /// the element `parent`.
    fn parse_content(&mut self, doc: &mut XmlDocument, parent: NodeId) -> Result<(), XmlParseError> {
        loop {
            if self.pos >= self.input.len() {
                return Err(self.error("unexpected end of input inside element"));
            }
            let rest = self.rest();
            if let Some(body) = rest.strip_prefix("<!--") {
                match body.find("-->") {
                    Some(end) => self.pos += 4 + end + 3,
                    None => return Err(self.error("unterminated comment")),
                }
            } else if rest.starts_with("<?") {
                match rest.find("?>") {
                    Some(end) => self.pos += end + 2,
                    None => return Err(self.error("unterminated processing instruction")),
                }
            } else if rest.starts_with("</") {
                let gt = rest
                    .find('>')
                    .ok_or_else(|| self.error("unterminated end tag"))?;
                let name = rest[2..gt].trim();
                let expected = doc
                    .tree
                    .value(parent)
                    .name()
                    .expect("parent is an element");
                if name != expected {
                    return Err(self.error(format!(
                        "mismatched end tag: expected </{expected}>, found </{name}>"
                    )));
                }
                self.pos += gt + 1;
                return Ok(());
            } else if rest.starts_with('<') {
                let (node, self_closing) = self.parse_start_tag()?;
                let child = doc.tree.append_child(parent, node);
                if !self_closing {
                    self.parse_content(doc, child)?;
                }
            } else {
                let end = rest.find('<').unwrap_or(rest.len());
                let raw = &rest[..end];
                self.pos += end;
                let decoded = decode_references(raw).map_err(|m| self.error(m))?;
                if !decoded.trim().is_empty() {
                    doc.tree.append_child(parent, XmlNode::Text(decoded));
                }
            }
        }
    }

    /// Parses `<name attr="v" ...>` or `<name .../>`; `pos` is at `<`.
    fn parse_start_tag(&mut self) -> Result<(XmlNode, bool), XmlParseError> {
        let rest = self.rest();
        let gt = rest
            .find('>')
            .ok_or_else(|| self.error("unterminated start tag"))?;
        let inner = &rest[1..gt];
        let (inner, self_closing) = match inner.strip_suffix('/') {
            Some(s) => (s, true),
            None => (inner, false),
        };
        let name_end = inner
            .find(|c: char| c.is_whitespace())
            .unwrap_or(inner.len());
        let name = &inner[..name_end];
        if !crate::name::is_valid_name(name) {
            return Err(self.error(format!("invalid element name {name:?}")));
        }
        let mut attrs = Vec::new();
        let mut s = inner[name_end..].trim_start();
        while !s.is_empty() {
            let eq = s
                .find('=')
                .ok_or_else(|| self.error("attribute without value"))?;
            let key = s[..eq].trim();
            if !crate::name::is_valid_name(key) {
                return Err(self.error(format!("invalid attribute name {key:?}")));
            }
            let after = s[eq + 1..].trim_start();
            let quote = after
                .chars()
                .next()
                .filter(|c| *c == '"' || *c == '\'')
                .ok_or_else(|| self.error("attribute value must be quoted"))?;
            let body = &after[1..];
            let close = body
                .find(quote)
                .ok_or_else(|| self.error("unterminated attribute value"))?;
            let value = decode_references(&body[..close]).map_err(|m| self.error(m))?;
            attrs.push((key.to_owned(), value));
            s = body[close + 1..].trim_start();
        }
        self.pos += gt + 1;
        Ok((
            XmlNode::Element {
                name: name.to_owned(),
                attrs,
            },
            self_closing,
        ))
    }
}

/// Decodes the five predefined XML entities and numeric references.
fn decode_references(input: &str) -> Result<String, String> {
    if !input.contains('&') {
        return Ok(input.to_owned());
    }
    let mut out = String::with_capacity(input.len());
    let mut rest = input;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest
            .find(';')
            .ok_or_else(|| "unterminated entity reference".to_owned())?;
        let name = &rest[1..semi];
        let ch = match name {
            "amp" => '&',
            "lt" => '<',
            "gt" => '>',
            "quot" => '"',
            "apos" => '\'',
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let code = u32::from_str_radix(&name[2..], 16)
                    .map_err(|_| format!("bad character reference &{name};"))?;
                char::from_u32(code).ok_or(format!("invalid codepoint &{name};"))?
            }
            _ if name.starts_with('#') => {
                let code = name[1..]
                    .parse::<u32>()
                    .map_err(|_| format!("bad character reference &{name};"))?;
                char::from_u32(code).ok_or(format!("invalid codepoint &{name};"))?
            }
            _ => return Err(format!("unknown entity &{name};")),
        };
        out.push(ch);
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::to_xml;

    #[test]
    fn parses_nested_elements() {
        let doc = parse_xml(r#"<resume><education val="E"><degree val="B.S."/></education></resume>"#)
            .unwrap();
        assert_eq!(doc.root_name(), "resume");
        assert_eq!(doc.element_count(), 3);
    }

    #[test]
    fn round_trips_writer_output() {
        let src = r#"<a val="x &amp; y"><b/><c val="1 &lt; 2"/>text</a>"#;
        let doc = parse_xml(src).unwrap();
        assert_eq!(to_xml(&doc), src);
    }

    #[test]
    fn skips_declaration_doctype_comments() {
        let doc = parse_xml(
            "<?xml version=\"1.0\"?><!DOCTYPE resume><!-- c --><resume/><!-- after -->",
        )
        .unwrap();
        assert_eq!(doc.root_name(), "resume");
    }

    #[test]
    fn decodes_numeric_references() {
        let doc = parse_xml("<a>&#65;&#x42;</a>").unwrap();
        let text = doc.tree.first_child(doc.root()).unwrap();
        assert_eq!(doc.tree.value(text), &XmlNode::Text("AB".into()));
    }

    #[test]
    fn rejects_mismatched_end_tag() {
        let err = parse_xml("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched end tag"), "{err}");
    }

    #[test]
    fn rejects_unterminated_element() {
        assert!(parse_xml("<a><b></b>").is_err());
    }

    #[test]
    fn rejects_unknown_entity() {
        assert!(parse_xml("<a>&nope;</a>").is_err());
    }

    #[test]
    fn rejects_trailing_content() {
        assert!(parse_xml("<a/><b/>").is_err());
    }

    #[test]
    fn rejects_unquoted_attribute() {
        assert!(parse_xml("<a val=x/>").is_err());
    }

    #[test]
    fn rejects_invalid_name() {
        assert!(parse_xml("<1a/>").is_err());
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let doc = parse_xml("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(doc.tree.child_count(doc.root()), 1);
    }

    #[test]
    fn error_display_mentions_offset() {
        let err = parse_xml("junk").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }
}
