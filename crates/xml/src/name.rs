//! XML name validation and sanitization.
//!
//! Concept names supplied by users ("programming skills", "GPA") must become
//! valid XML element names; [`sanitize`] performs the mapping the conversion
//! process applies.

/// Whether `c` may start an XML name (simplified to the ASCII subset plus
/// letters beyond ASCII, which covers every concept name we handle).
fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Whether `c` may continue an XML name.
fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.')
}

/// Whether `s` is a valid XML element/attribute name.
pub fn is_valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if is_name_start(c) => {}
        _ => return false,
    }
    if s.get(..3).is_some_and(|p| p.eq_ignore_ascii_case("xml")) {
        return false;
    }
    chars.all(is_name_char)
}

/// Maps an arbitrary concept name to a valid XML element name:
/// whitespace and invalid characters become `-`, runs are collapsed, and a
/// leading invalid start character is prefixed with `_`.
///
/// ```
/// use webre_xml::name::sanitize;
/// assert_eq!(sanitize("programming skills"), "programming-skills");
/// assert_eq!(sanitize("GPA"), "GPA");
/// assert_eq!(sanitize("3d work"), "_3d-work");
/// ```
pub fn sanitize(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 1);
    let mut last_dash = false;
    for c in raw.trim().chars() {
        if is_name_char(c) && c != '.' {
            out.push(c);
            last_dash = false;
        } else if !last_dash && !out.is_empty() {
            out.push('-');
            last_dash = true;
        }
    }
    while out.ends_with('-') {
        out.pop();
    }
    if out.is_empty() {
        return "_".into();
    }
    if !is_name_start(out.chars().next().expect("non-empty")) {
        out.insert(0, '_');
    }
    if out.get(..3).is_some_and(|p| p.eq_ignore_ascii_case("xml")) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_names() {
        assert!(is_valid_name("resume"));
        assert!(is_valid_name("date-entry"));
        assert!(is_valid_name("_private"));
        assert!(is_valid_name("GPA"));
        assert!(is_valid_name("a1.b2"));
    }

    #[test]
    fn invalid_names() {
        assert!(!is_valid_name(""));
        assert!(!is_valid_name("1abc"));
        assert!(!is_valid_name("-abc"));
        assert!(!is_valid_name("a b"));
        assert!(!is_valid_name("xmlthing"));
        assert!(!is_valid_name("XMLTHING"));
    }

    #[test]
    fn sanitize_produces_valid_names() {
        for raw in [
            "programming skills",
            "  spaced  out  ",
            "GPA",
            "3d work",
            "",
            "###",
            "a/b\\c",
            "xml-like",
            "date entry!",
        ] {
            let s = sanitize(raw);
            assert!(is_valid_name(&s), "sanitize({raw:?}) = {s:?} not valid");
        }
    }

    #[test]
    fn sanitize_specific_mappings() {
        assert_eq!(sanitize("programming skills"), "programming-skills");
        assert_eq!(sanitize("date  entry"), "date-entry");
        assert_eq!(sanitize("###"), "_");
        assert_eq!(sanitize("xmlish"), "_xmlish");
    }

    #[test]
    fn sanitize_is_idempotent_on_valid_names() {
        for n in ["resume", "date-entry", "GPA", "_x"] {
            assert_eq!(sanitize(n), n);
        }
    }
}
