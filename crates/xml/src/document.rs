//! The XML document model.
//!
//! A document is an ordered tree whose root is the document element. Per the
//! paper's convention (Section 2.3), every element carries an attribute
//! named `val` holding the text recovered for it; free-standing text nodes
//! are also supported so the model can represent general XML.

use webre_tree::{NodeId, Tree};

/// One node of an XML document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XmlNode {
    /// An element with its attributes (name/value pairs, document order).
    Element {
        name: String,
        attrs: Vec<(String, String)>,
    },
    /// A text node.
    Text(String),
}

impl XmlNode {
    /// Creates an element with no attributes.
    pub fn element(name: impl Into<String>) -> Self {
        XmlNode::Element {
            name: name.into(),
            attrs: Vec::new(),
        }
    }

    /// Creates an element with a `val` attribute (the paper's convention).
    pub fn element_with_val(name: impl Into<String>, val: impl Into<String>) -> Self {
        XmlNode::Element {
            name: name.into(),
            attrs: vec![("val".into(), val.into())],
        }
    }

    /// The element name, if this is an element.
    pub fn name(&self) -> Option<&str> {
        match self {
            XmlNode::Element { name, .. } => Some(name),
            XmlNode::Text(_) => None,
        }
    }

    /// Attribute lookup by name.
    pub fn attr(&self, key: &str) -> Option<&str> {
        match self {
            XmlNode::Element { attrs, .. } => attrs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str()),
            XmlNode::Text(_) => None,
        }
    }

    /// The `val` attribute, if present.
    pub fn val(&self) -> Option<&str> {
        self.attr("val")
    }

    /// Sets (or replaces) an attribute.
    pub fn set_attr(&mut self, key: &str, value: impl Into<String>) {
        if let XmlNode::Element { attrs, .. } = self {
            let value = value.into();
            match attrs.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => attrs.push((key.to_owned(), value)),
            }
        }
    }

    /// Appends text to the `val` attribute, separating with a single space.
    ///
    /// This implements the paper's "pass the text value to the parent node
    /// as value for the attribute val" step of the concept instance rule.
    pub fn push_val(&mut self, text: &str) {
        let text = text.trim();
        if text.is_empty() {
            return;
        }
        match self.val() {
            Some(existing) if !existing.is_empty() => {
                let merged = format!("{existing} {text}");
                self.set_attr("val", merged);
            }
            _ => self.set_attr("val", text),
        }
    }
}

/// An XML document: a tree whose root node is the document element.
#[derive(Clone, Debug)]
pub struct XmlDocument {
    pub tree: Tree<XmlNode>,
}

impl XmlDocument {
    /// Creates a document with a root element named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        XmlDocument {
            tree: Tree::new(XmlNode::element(name)),
        }
    }

    /// The document element.
    pub fn root(&self) -> NodeId {
        self.tree.root()
    }

    /// The root element's name.
    pub fn root_name(&self) -> &str {
        self.tree
            .value(self.root())
            .name()
            .expect("document root is always an element")
    }

    /// Number of element nodes.
    pub fn element_count(&self) -> usize {
        self.tree
            .descendants(self.root())
            .filter(|id| matches!(self.tree.value(*id), XmlNode::Element { .. }))
            .count()
    }

    /// All text carried by the document: `val` attributes and text nodes, in
    /// document order, space separated.
    pub fn all_text(&self) -> String {
        let mut parts: Vec<&str> = Vec::new();
        for id in self.tree.descendants(self.root()) {
            match self.tree.value(id) {
                XmlNode::Element { .. } => {
                    if let Some(v) = self.tree.value(id).val() {
                        if !v.is_empty() {
                            parts.push(v);
                        }
                    }
                }
                XmlNode::Text(t) => {
                    if !t.trim().is_empty() {
                        parts.push(t.trim());
                    }
                }
            }
        }
        parts.join(" ")
    }

    /// Returns the label (element name or `#PCDATA` for text) of a node.
    pub fn label(&self, id: NodeId) -> &str {
        match self.tree.value(id) {
            XmlNode::Element { name, .. } => name,
            XmlNode::Text(_) => "#PCDATA",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_with_val() {
        let e = XmlNode::element_with_val("INSTITUTION", "UC Davis");
        assert_eq!(e.name(), Some("INSTITUTION"));
        assert_eq!(e.val(), Some("UC Davis"));
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = XmlNode::element("a");
        e.set_attr("val", "x");
        e.set_attr("val", "y");
        assert_eq!(e.val(), Some("y"));
        e.set_attr("id", "1");
        assert_eq!(e.attr("id"), Some("1"));
    }

    #[test]
    fn push_val_accumulates_with_spaces() {
        let mut e = XmlNode::element("a");
        e.push_val("first");
        e.push_val("  second ");
        e.push_val("");
        assert_eq!(e.val(), Some("first second"));
    }

    #[test]
    fn text_node_has_no_name_or_attrs() {
        let t = XmlNode::Text("x".into());
        assert_eq!(t.name(), None);
        assert_eq!(t.val(), None);
    }

    #[test]
    fn document_basics() {
        let mut doc = XmlDocument::new("resume");
        let root = doc.root();
        let edu = doc
            .tree
            .append_child(root, XmlNode::element_with_val("education", "Education"));
        doc.tree
            .append_child(edu, XmlNode::element_with_val("degree", "B.S."));
        doc.tree.append_child(edu, XmlNode::Text("note".into()));
        assert_eq!(doc.root_name(), "resume");
        assert_eq!(doc.element_count(), 3);
        assert_eq!(doc.all_text(), "Education B.S. note");
        assert_eq!(doc.label(edu), "education");
        let text = doc.tree.last_child(edu).unwrap();
        assert_eq!(doc.label(text), "#PCDATA");
    }
}
