//! XML substrate for the `webre` workspace.
//!
//! The document conversion process of the paper produces XML documents whose
//! element names are topic concepts and whose text payload lives in a `val`
//! attribute (`<INSTITUTION val="University of California at Davis"/>`).
//! The schema discovery process then derives a DTD. This crate provides:
//!
//! * [`document`] — the XML document model (ordered tree of elements and
//!   text), with the paper's `val`-attribute conventions;
//! * [`name`] — XML name validation and sanitization of concept names into
//!   valid element names;
//! * [`writer`] — compact and pretty serialization;
//! * [`parser`] — a small strict XML parser (used for round-trips and test
//!   fixtures);
//! * [`dtd`] — the DTD model: content-model expressions
//!   (`e`, `α,β`, `α|β`, `α?`, `α*`, `α+`, `#PCDATA`), DTD text emission and
//!   parsing;
//! * [`validate`] — conformance checking of documents against a DTD via
//!   Brzozowski derivatives of content models;
//! * [`select`] — a tiny label-path query language
//!   (`resume/education/degree`, `//degree`) mirroring how schema
//!   discovery reasons about documents.

pub mod document;
pub mod dtd;
pub mod name;
pub mod parser;
pub mod select;
pub mod validate;
pub mod writer;

pub use document::{XmlDocument, XmlNode};
pub use dtd::{ContentExpr, Dtd, ElementDecl};
pub use parser::{parse_xml, XmlParseError};
pub use validate::{validate, ConformanceError};
pub use writer::{to_xml, to_xml_pretty};
