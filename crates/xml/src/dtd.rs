//! DTD model: content-model expressions, element declarations, emission and
//! parsing.
//!
//! Section 3.3 of the paper derives, for each node of the frequent-path
//! tree, a content model `α ::= e | α1|α2 | α1,α2 | α1? | α* | α+` (plus
//! `#PCDATA`, which the paper's derived DTDs use freely inside sequences,
//! e.g. `<!ELEMENT resume ((#PCDATA), contact+, objective, ...)>`). We
//! follow the paper and allow `#PCDATA` as an ordinary — always optional —
//! leaf of a content expression; [`crate::validate`] treats it as matching
//! zero or more text nodes.

use std::collections::BTreeMap;
use std::fmt;

/// A content-model expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContentExpr {
    /// `EMPTY` — no content allowed.
    Empty,
    /// `#PCDATA` — optional text.
    PcData,
    /// An element name.
    Name(String),
    /// `(a, b, c)` — ordered sequence.
    Seq(Vec<ContentExpr>),
    /// `(a | b | c)` — choice.
    Choice(Vec<ContentExpr>),
    /// `α?`
    Opt(Box<ContentExpr>),
    /// `α*`
    Star(Box<ContentExpr>),
    /// `α+`
    Plus(Box<ContentExpr>),
}

impl ContentExpr {
    /// Convenience: a sequence, flattening nested sequences and dropping
    /// `Empty` members.
    pub fn seq(items: impl IntoIterator<Item = ContentExpr>) -> ContentExpr {
        let mut out = Vec::new();
        for item in items {
            match item {
                ContentExpr::Seq(inner) => out.extend(inner),
                ContentExpr::Empty => {}
                other => out.push(other),
            }
        }
        match out.len() {
            0 => ContentExpr::Empty,
            1 => out.pop().expect("len checked"),
            _ => ContentExpr::Seq(out),
        }
    }

    /// All element names mentioned by the expression, in order of first
    /// appearance.
    pub fn names(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_names(&mut out);
        out
    }

    fn collect_names<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            ContentExpr::Name(n) => {
                if !out.contains(&n.as_str()) {
                    out.push(n);
                }
            }
            ContentExpr::Seq(items) | ContentExpr::Choice(items) => {
                for i in items {
                    i.collect_names(out);
                }
            }
            ContentExpr::Opt(i) | ContentExpr::Star(i) | ContentExpr::Plus(i) => {
                i.collect_names(out)
            }
            ContentExpr::Empty | ContentExpr::PcData => {}
        }
    }
}

impl fmt::Display for ContentExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContentExpr::Empty => write!(f, "EMPTY"),
            ContentExpr::PcData => write!(f, "(#PCDATA)"),
            ContentExpr::Name(n) => write!(f, "{n}"),
            ContentExpr::Seq(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            ContentExpr::Choice(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            ContentExpr::Opt(i) => write!(f, "{}?", Group(i)),
            ContentExpr::Star(i) => write!(f, "{}*", Group(i)),
            ContentExpr::Plus(i) => write!(f, "{}+", Group(i)),
        }
    }
}

/// Display helper for sub-expressions under a postfix operator: bare names
/// may take the operator directly (`a+`), sequences/choices already print
/// their own parentheses, but `#PCDATA` and nested unary operators must be
/// wrapped to stay parseable (`(a?)?`, `(#PCDATA)*`).
struct Group<'a>(&'a ContentExpr);

impl fmt::Display for Group<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            // Wrap anything that does not already print its own grouping
            // and would otherwise stack postfix operators ("a??").
            ContentExpr::PcData => write!(f, "(#PCDATA)"),
            inner @ (ContentExpr::Opt(_) | ContentExpr::Star(_) | ContentExpr::Plus(_)) => {
                write!(f, "({inner})")
            }
            other => write!(f, "{other}"),
        }
    }
}

/// One `<!ELEMENT name content>` declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElementDecl {
    pub name: String,
    pub content: ContentExpr,
}

impl fmt::Display for ElementDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // DTD syntax requires the content model to be parenthesized (or a
        // keyword): wrap forms that do not already print outer parens.
        match &self.content {
            c @ (ContentExpr::Name(_)
            | ContentExpr::Opt(_)
            | ContentExpr::Star(_)
            | ContentExpr::Plus(_)) => write!(f, "<!ELEMENT {} ({c})>", self.name),
            c => write!(f, "<!ELEMENT {} {c}>", self.name),
        }
    }
}

/// A document type definition: the root element name plus declarations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Dtd {
    pub root: String,
    /// Declarations keyed by element name (deterministic order).
    pub elements: BTreeMap<String, ElementDecl>,
    /// Emit `<!ATTLIST e val CDATA #IMPLIED>` for every element — the
    /// paper's convention that each element carries a `val` attribute of
    /// type CDATA holding the recovered text (Section 2.3).
    pub val_attlists: bool,
}

impl Dtd {
    /// Creates an empty DTD with the given root element.
    pub fn new(root: impl Into<String>) -> Self {
        Dtd {
            root: root.into(),
            elements: BTreeMap::new(),
            val_attlists: false,
        }
    }

    /// Enables `val` ATTLIST emission (builder style).
    pub fn with_val_attlists(mut self) -> Self {
        self.val_attlists = true;
        self
    }

    /// Adds (or replaces) an element declaration.
    pub fn declare(&mut self, name: impl Into<String>, content: ContentExpr) {
        let name = name.into();
        self.elements.insert(
            name.clone(),
            ElementDecl {
                name,
                content,
            },
        );
    }

    /// Looks up the content model for an element name.
    pub fn content_of(&self, name: &str) -> Option<&ContentExpr> {
        self.elements.get(name).map(|d| &d.content)
    }

    /// Number of declared elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the DTD declares no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Emits DTD text, root declaration first, the rest in the order the
    /// root's content mentions them (breadth-first), then alphabetically.
    pub fn to_dtd_string(&self) -> String {
        let mut out = String::new();
        let mut emitted: Vec<&str> = Vec::new();
        let mut queue: Vec<&str> = vec![&self.root];
        while let Some(name) = queue.pop() {
            if emitted.contains(&name) {
                continue;
            }
            if let Some(decl) = self.elements.get(name) {
                out.push_str(&decl.to_string());
                out.push('\n');
                if self.val_attlists {
                    out.push_str(&format!("<!ATTLIST {name} val CDATA #IMPLIED>\n"));
                }
                emitted.push(name);
                let mut next: Vec<&str> = decl.content.names();
                next.reverse();
                for n in next {
                    if !emitted.contains(&n) {
                        queue.push(n);
                    }
                }
            }
        }
        for (name, decl) in &self.elements {
            if !emitted.contains(&name.as_str()) {
                out.push_str(&decl.to_string());
                out.push('\n');
                if self.val_attlists {
                    out.push_str(&format!("<!ATTLIST {name} val CDATA #IMPLIED>\n"));
                }
            }
        }
        out
    }
}

impl fmt::Display for Dtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_dtd_string())
    }
}

/// Parses DTD text consisting of `<!ELEMENT ...>` declarations. The first
/// declaration names the root.
pub fn parse_dtd(input: &str) -> Result<Dtd, String> {
    let mut dtd = Dtd::new("");
    let mut rest = input.trim();
    // ATTLIST declarations are recognized (setting the flag) but carry no
    // further structure we track.
    if rest.contains("<!ATTLIST") {
        dtd.val_attlists = true;
    }
    while !rest.is_empty() {
        let Some(start) = rest.find("<!ELEMENT") else {
            break;
        };
        let after = &rest[start + "<!ELEMENT".len()..];
        let end = after.find('>').ok_or("unterminated <!ELEMENT")?;
        let body = after[..end].trim();
        let name_end = body
            .find(|c: char| c.is_whitespace())
            .ok_or("missing content model")?;
        let name = &body[..name_end];
        let content_src = body[name_end..].trim();
        let content = parse_content_expr(content_src)?;
        if dtd.root.is_empty() {
            dtd.root = name.to_owned();
        }
        dtd.declare(name, content);
        rest = after[end + 1..].trim();
    }
    if dtd.root.is_empty() {
        return Err("no <!ELEMENT declarations found".into());
    }
    Ok(dtd)
}

/// Parses a content-model expression like `((#PCDATA), a+, (b | c)*)`.
pub fn parse_content_expr(src: &str) -> Result<ContentExpr, String> {
    let tokens = lex_content(src)?;
    let mut pos = 0;
    let expr = parse_expr(&tokens, &mut pos)?;
    if pos != tokens.len() {
        return Err(format!("unexpected trailing tokens in content model {src:?}"));
    }
    Ok(expr)
}

#[derive(Debug, PartialEq, Eq, Clone)]
enum Tok {
    LParen,
    RParen,
    Comma,
    Pipe,
    Quest,
    Star,
    Plus,
    PcData,
    Empty,
    Name(String),
}

fn lex_content(src: &str) -> Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let mut chars = src.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        match c {
            '(' => out.push(Tok::LParen),
            ')' => out.push(Tok::RParen),
            ',' => out.push(Tok::Comma),
            '|' => out.push(Tok::Pipe),
            '?' => out.push(Tok::Quest),
            '*' => out.push(Tok::Star),
            '+' => out.push(Tok::Plus),
            c if c.is_whitespace() => {}
            '#' => {
                let rest = &src[i..];
                if rest.starts_with("#PCDATA") {
                    out.push(Tok::PcData);
                    for _ in 0.."PCDATA".len() {
                        chars.next();
                    }
                } else {
                    return Err(format!("unexpected '#' in content model {src:?}"));
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                let mut end = i + c.len_utf8();
                while let Some(&(j, d)) = chars.peek() {
                    if d.is_alphanumeric() || matches!(d, '_' | '-' | '.') {
                        end = j + d.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                let word = &src[start..end];
                if word == "EMPTY" {
                    out.push(Tok::Empty);
                } else {
                    out.push(Tok::Name(word.to_owned()));
                }
            }
            other => return Err(format!("unexpected {other:?} in content model {src:?}")),
        }
    }
    Ok(out)
}

/// expr := term (("," term)* | ("|" term)*)
fn parse_expr(tokens: &[Tok], pos: &mut usize) -> Result<ContentExpr, String> {
    let first = parse_term(tokens, pos)?;
    match tokens.get(*pos) {
        Some(Tok::Comma) => {
            let mut items = vec![first];
            while tokens.get(*pos) == Some(&Tok::Comma) {
                *pos += 1;
                items.push(parse_term(tokens, pos)?);
            }
            Ok(ContentExpr::Seq(items))
        }
        Some(Tok::Pipe) => {
            let mut items = vec![first];
            while tokens.get(*pos) == Some(&Tok::Pipe) {
                *pos += 1;
                items.push(parse_term(tokens, pos)?);
            }
            Ok(ContentExpr::Choice(items))
        }
        _ => Ok(first),
    }
}

/// term := atom ("?" | "*" | "+")?
fn parse_term(tokens: &[Tok], pos: &mut usize) -> Result<ContentExpr, String> {
    let atom = parse_atom(tokens, pos)?;
    let wrapped = match tokens.get(*pos) {
        Some(Tok::Quest) => {
            *pos += 1;
            ContentExpr::Opt(Box::new(atom))
        }
        Some(Tok::Star) => {
            *pos += 1;
            ContentExpr::Star(Box::new(atom))
        }
        Some(Tok::Plus) => {
            *pos += 1;
            ContentExpr::Plus(Box::new(atom))
        }
        _ => atom,
    };
    Ok(wrapped)
}

/// atom := name | "#PCDATA" | "EMPTY" | "(" expr ")"
fn parse_atom(tokens: &[Tok], pos: &mut usize) -> Result<ContentExpr, String> {
    match tokens.get(*pos) {
        Some(Tok::Name(n)) => {
            *pos += 1;
            Ok(ContentExpr::Name(n.clone()))
        }
        Some(Tok::PcData) => {
            *pos += 1;
            Ok(ContentExpr::PcData)
        }
        Some(Tok::Empty) => {
            *pos += 1;
            Ok(ContentExpr::Empty)
        }
        Some(Tok::LParen) => {
            *pos += 1;
            let inner = parse_expr(tokens, pos)?;
            if tokens.get(*pos) != Some(&Tok::RParen) {
                return Err("missing ')' in content model".into());
            }
            *pos += 1;
            // A parenthesized single item stays as-is; sequences/choices
            // already carry their own grouping.
            Ok(inner)
        }
        other => Err(format!("unexpected token {other:?} in content model")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(n: &str) -> ContentExpr {
        ContentExpr::Name(n.into())
    }

    #[test]
    fn display_simple_forms() {
        assert_eq!(ContentExpr::PcData.to_string(), "(#PCDATA)");
        assert_eq!(name("a").to_string(), "a");
        assert_eq!(
            ContentExpr::Plus(Box::new(name("a"))).to_string(),
            "a+"
        );
        assert_eq!(
            ContentExpr::Seq(vec![name("a"), ContentExpr::Opt(Box::new(name("b")))]).to_string(),
            "(a, b?)"
        );
        assert_eq!(
            ContentExpr::Choice(vec![name("a"), name("b")]).to_string(),
            "(a | b)"
        );
    }

    #[test]
    fn element_decl_display_matches_paper_style() {
        let decl = ElementDecl {
            name: "resume".into(),
            content: ContentExpr::Seq(vec![
                ContentExpr::PcData,
                ContentExpr::Plus(Box::new(name("contact"))),
                name("objective"),
            ]),
        };
        assert_eq!(
            decl.to_string(),
            "<!ELEMENT resume ((#PCDATA), contact+, objective)>"
        );
    }

    #[test]
    fn single_name_content_is_parenthesized() {
        let decl = ElementDecl {
            name: "a".into(),
            content: name("b"),
        };
        assert_eq!(decl.to_string(), "<!ELEMENT a (b)>");
    }

    #[test]
    fn parse_round_trip() {
        for src in [
            "(#PCDATA)",
            "(a, b, c)",
            "(a | b)",
            "(a+, b?, c*)",
            "((#PCDATA), contact+, objective)",
            "((a, b)+, c)",
            "EMPTY",
        ] {
            let expr = parse_content_expr(src).unwrap();
            let printed = expr.to_string();
            let reparsed = parse_content_expr(&printed).unwrap();
            assert_eq!(expr, reparsed, "round trip failed for {src}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_content_expr("(a,,b)").is_err());
        assert!(parse_content_expr("(a").is_err());
        assert!(parse_content_expr("a)").is_err());
        assert!(parse_content_expr("#NOTPCDATA").is_err());
    }

    #[test]
    fn dtd_emission_root_first() {
        let mut dtd = Dtd::new("resume");
        dtd.declare("contact", ContentExpr::PcData);
        dtd.declare(
            "resume",
            ContentExpr::Seq(vec![ContentExpr::Plus(Box::new(name("contact")))]),
        );
        let text = dtd.to_dtd_string();
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("<!ELEMENT resume"), "{text}");
        assert!(text.contains("<!ELEMENT contact (#PCDATA)>"));
    }

    #[test]
    fn dtd_parse_round_trip() {
        let src = "<!ELEMENT resume ((#PCDATA), contact+, education+)>\n\
                   <!ELEMENT contact (#PCDATA)>\n\
                   <!ELEMENT education ((#PCDATA), institute, date-entry)>\n\
                   <!ELEMENT institute (#PCDATA)>\n\
                   <!ELEMENT date-entry ((#PCDATA), degree)>\n\
                   <!ELEMENT degree (#PCDATA)>\n";
        let dtd = parse_dtd(src).unwrap();
        assert_eq!(dtd.root, "resume");
        assert_eq!(dtd.len(), 6);
        let again = parse_dtd(&dtd.to_dtd_string()).unwrap();
        assert_eq!(dtd, again);
    }

    #[test]
    fn val_attlists_emitted_and_round_tripped() {
        let mut dtd = Dtd::new("r").with_val_attlists();
        dtd.declare("r", ContentExpr::Seq(vec![ContentExpr::Plus(Box::new(ContentExpr::Name("a".into())))]));
        dtd.declare("a", ContentExpr::PcData);
        let text = dtd.to_dtd_string();
        assert!(text.contains("<!ATTLIST r val CDATA #IMPLIED>"), "{text}");
        assert!(text.contains("<!ATTLIST a val CDATA #IMPLIED>"), "{text}");
        let back = parse_dtd(&text).unwrap();
        // Reparsing drops redundant single-item grouping, so compare the
        // emitted text (the observable form) rather than the AST.
        assert!(back.val_attlists);
        assert_eq!(back.to_dtd_string(), text);
    }

    #[test]
    fn seq_constructor_flattens() {
        let e = ContentExpr::seq([
            name("a"),
            ContentExpr::Seq(vec![name("b"), name("c")]),
            ContentExpr::Empty,
        ]);
        assert_eq!(e, ContentExpr::Seq(vec![name("a"), name("b"), name("c")]));
        assert_eq!(ContentExpr::seq([]), ContentExpr::Empty);
        assert_eq!(ContentExpr::seq([name("x")]), name("x"));
    }

    #[test]
    fn names_in_first_appearance_order() {
        let e = parse_content_expr("((#PCDATA), b, (a | b), c+)").unwrap();
        assert_eq!(e.names(), vec!["b", "a", "c"]);
    }
}
