//! HTML tokenizer.
//!
//! Produces a flat token stream from raw HTML text. Forgiving by design:
//! anything that does not parse as markup is treated as text, matching how
//! browsers handled the hand-written pages the paper's crawler collected.

use crate::entities::decode;
use crate::node::Attribute;

/// One lexical token of an HTML document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// `<name attr="v">`; `self_closing` records a trailing `/`.
    StartTag {
        name: String,
        attrs: Vec<Attribute>,
        self_closing: bool,
    },
    /// `</name>`
    EndTag { name: String },
    /// A text run (entities decoded).
    Text(String),
    /// `<!-- ... -->`
    Comment(String),
    /// `<!DOCTYPE ...>` (content after `<!`).
    Doctype(String),
}

/// Elements whose content is raw text up to the matching end tag.
fn is_rawtext(name: &str) -> bool {
    matches!(name, "script" | "style" | "textarea" | "title" | "xmp")
}

/// Tokenizes `input` into a vector of [`Token`]s.
pub fn tokenize(input: &str) -> Vec<Token> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    input: &'a str,
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            input,
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.input.len() {
            if self.rest().starts_with('<') {
                self.lex_markup();
            } else {
                self.lex_text();
            }
        }
        self.tokens
    }

    fn lex_text(&mut self) {
        let rest = self.rest();
        let end = rest.find('<').unwrap_or(rest.len());
        let raw = &rest[..end];
        self.bump(end);
        if !raw.is_empty() {
            self.tokens.push(Token::Text(decode(raw)));
        }
    }

    fn lex_markup(&mut self) {
        let rest = self.rest();
        if rest.starts_with("<!--") {
            self.lex_comment();
        } else if rest.starts_with("<!") {
            self.lex_declaration();
        } else if rest.starts_with("<?") {
            // Bogus comment (e.g. a stray PHP tag in a saved page):
            // browsers swallow everything up to the next '>'.
            match rest.find('>') {
                Some(end) => {
                    self.tokens
                        .push(Token::Comment(rest[2..end].to_owned()));
                    self.bump(end + 1);
                }
                None => {
                    self.tokens.push(Token::Comment(rest[2..].to_owned()));
                    self.pos = self.input.len();
                }
            }
        } else if rest.starts_with("</") {
            self.lex_end_tag();
        } else if rest.len() > 1 && rest.as_bytes()[1].is_ascii_alphabetic() {
            self.lex_start_tag();
        } else {
            // A bare '<' that is not markup: emit as text.
            self.tokens.push(Token::Text("<".into()));
            self.bump(1);
        }
    }

    fn lex_comment(&mut self) {
        let rest = self.rest();
        let body_start = 4; // "<!--"
        match rest[body_start..].find("-->") {
            Some(end) => {
                self.tokens
                    .push(Token::Comment(rest[body_start..body_start + end].to_owned()));
                self.bump(body_start + end + 3);
            }
            None => {
                // Unterminated comment swallows the rest of the input.
                self.tokens.push(Token::Comment(rest[body_start..].to_owned()));
                self.pos = self.input.len();
            }
        }
    }

    fn lex_declaration(&mut self) {
        let rest = self.rest();
        match rest.find('>') {
            Some(end) => {
                self.tokens
                    .push(Token::Doctype(declaration_body(&rest[2..end])));
                self.bump(end + 1);
            }
            None => {
                self.tokens.push(Token::Doctype(declaration_body(&rest[2..])));
                self.pos = self.input.len();
            }
        }
    }

    fn lex_end_tag(&mut self) {
        let rest = self.rest();
        match rest.find('>') {
            Some(end) => {
                let name = rest[2..end]
                    .trim()
                    .trim_end_matches('/')
                    .trim()
                    .to_ascii_lowercase();
                self.bump(end + 1);
                if !name.is_empty() {
                    self.tokens.push(Token::EndTag { name });
                }
            }
            None => {
                // "</" with no closing '>': treat as text.
                self.tokens.push(Token::Text(rest.to_owned()));
                self.pos = self.input.len();
            }
        }
    }

    fn lex_start_tag(&mut self) {
        let rest = self.rest();
        let Some(gt) = find_tag_end(rest) else {
            // "<div" never closed: text.
            self.tokens.push(Token::Text(decode(rest)));
            self.pos = self.input.len();
            return;
        };
        let inner = &rest[1..gt];
        let (inner, self_closing) = match inner.strip_suffix('/') {
            Some(stripped) => (stripped, true),
            None => (inner, false),
        };
        let name_end = inner
            .find(|c: char| c.is_ascii_whitespace())
            .unwrap_or(inner.len());
        let name = inner[..name_end].to_ascii_lowercase();
        let attrs = parse_attrs(&inner[name_end..]);
        self.bump(gt + 1);
        if is_rawtext(&name) && !self_closing {
            let close = format!("</{name}");
            let body = self.rest();
            let lower = body.to_ascii_lowercase();
            let (text, consumed) = match lower.find(&close) {
                Some(i) => {
                    let after = lower[i..].find('>').map(|j| i + j + 1).unwrap_or(lower.len());
                    (&body[..i], after)
                }
                None => (body, body.len()),
            };
            self.tokens.push(Token::StartTag {
                name: name.clone(),
                attrs,
                self_closing: false,
            });
            if !text.is_empty() {
                // `title` legitimately carries document text; scripts do not.
                let decoded = if name == "title" || name == "textarea" {
                    decode(text)
                } else {
                    text.to_owned()
                };
                self.tokens.push(Token::Text(decoded));
            }
            self.tokens.push(Token::EndTag { name });
            self.bump(consumed);
        } else {
            self.tokens.push(Token::StartTag {
                name,
                attrs,
                self_closing,
            });
        }
    }
}

/// Finds the index of the `>` ending a tag that starts at `rest[0] == '<'`,
/// skipping `>` inside quoted attribute values.
fn find_tag_end(rest: &str) -> Option<usize> {
    let bytes = rest.as_bytes();
    let mut quote: Option<u8> = None;
    for (i, &b) in bytes.iter().enumerate().skip(1) {
        match quote {
            Some(q) => {
                if b == q {
                    quote = None;
                }
            }
            None => match b {
                b'"' | b'\'' => quote = Some(b),
                b'>' => return Some(i),
                _ => {}
            },
        }
    }
    None
}

/// Normalizes the content of a `<!...>` declaration. Leading dashes are
/// stripped: re-emitting a declaration that starts with `--` would produce
/// `<!--`, which re-lexes as a comment instead of a declaration.
fn declaration_body(raw: &str) -> String {
    raw.trim().trim_start_matches('-').trim_start().to_owned()
}

/// Characters that make an attribute name unusable: a quote re-lexes as a
/// value delimiter and a slash can merge with the tag close into a
/// self-closing marker, so such names cannot survive a serialize/reparse
/// round trip. The attribute is dropped, as HTML Tidy drops malformed
/// attributes.
fn name_is_garbage(name: &str) -> bool {
    name.contains(['"', '\'', '/'])
}

/// Parses the attribute list of a start tag.
fn parse_attrs(mut s: &str) -> Vec<Attribute> {
    let mut attrs = Vec::new();
    loop {
        s = s.trim_start();
        if s.is_empty() {
            return attrs;
        }
        let name_end = s
            .find(|c: char| c.is_ascii_whitespace() || c == '=')
            .unwrap_or(s.len());
        if name_end == 0 {
            // Stray '=' or similar: skip one char to guarantee progress.
            s = &s[1..];
            continue;
        }
        let name = s[..name_end].to_ascii_lowercase();
        s = s[name_end..].trim_start();
        let value = if let Some(rest) = s.strip_prefix('=') {
            let rest = rest.trim_start();
            if let Some(q) = rest.strip_prefix('"') {
                let end = q.find('"').unwrap_or(q.len());
                s = &q[(end + 1).min(q.len())..];
                decode(&q[..end])
            } else if let Some(q) = rest.strip_prefix('\'') {
                let end = q.find('\'').unwrap_or(q.len());
                s = &q[(end + 1).min(q.len())..];
                decode(&q[..end])
            } else {
                let end = rest
                    .find(|c: char| c.is_ascii_whitespace())
                    .unwrap_or(rest.len());
                s = &rest[end..];
                decode(&rest[..end])
            }
        } else {
            // Boolean attribute like `checked`.
            String::new()
        };
        if !name_is_garbage(&name) {
            attrs.push(Attribute { name, value });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(name: &str) -> Token {
        Token::StartTag {
            name: name.into(),
            attrs: vec![],
            self_closing: false,
        }
    }

    fn end(name: &str) -> Token {
        Token::EndTag { name: name.into() }
    }

    #[test]
    fn simple_element() {
        let toks = tokenize("<p>hi</p>");
        assert_eq!(toks, vec![start("p"), Token::Text("hi".into()), end("p")]);
    }

    #[test]
    fn tag_names_lowercased() {
        let toks = tokenize("<DIV></DiV>");
        assert_eq!(toks, vec![start("div"), end("div")]);
    }

    #[test]
    fn attributes_quoted_unquoted_boolean() {
        let toks = tokenize(r#"<input type="text" value='a b' checked size=4>"#);
        let Token::StartTag { name, attrs, .. } = &toks[0] else {
            panic!("expected start tag");
        };
        assert_eq!(name, "input");
        let get = |n: &str| attrs.iter().find(|a| a.name == n).map(|a| a.value.as_str());
        assert_eq!(get("type"), Some("text"));
        assert_eq!(get("value"), Some("a b"));
        assert_eq!(get("checked"), Some(""));
        assert_eq!(get("size"), Some("4"));
    }

    #[test]
    fn self_closing_flag() {
        let toks = tokenize("<br/><hr />");
        assert!(matches!(
            &toks[0],
            Token::StartTag { self_closing: true, name, .. } if name == "br"
        ));
        assert!(matches!(
            &toks[1],
            Token::StartTag { self_closing: true, name, .. } if name == "hr"
        ));
    }

    #[test]
    fn entities_decoded_in_text_and_attrs() {
        let toks = tokenize(r#"<a title="Fish &amp; Chips">R&amp;D</a>"#);
        assert!(matches!(&toks[1], Token::Text(t) if t == "R&D"));
        let Token::StartTag { attrs, .. } = &toks[0] else {
            panic!()
        };
        assert_eq!(attrs[0].value, "Fish & Chips");
    }

    #[test]
    fn comments_and_doctype() {
        let toks = tokenize("<!DOCTYPE html><!-- note -->x");
        assert_eq!(toks[0], Token::Doctype("DOCTYPE html".into()));
        assert_eq!(toks[1], Token::Comment(" note ".into()));
        assert_eq!(toks[2], Token::Text("x".into()));
    }

    #[test]
    fn unterminated_comment_swallows_rest() {
        let toks = tokenize("a<!-- open forever");
        assert_eq!(toks[0], Token::Text("a".into()));
        assert_eq!(toks[1], Token::Comment(" open forever".into()));
    }

    #[test]
    fn script_content_is_raw() {
        let toks = tokenize("<script>if (a<b) { x(); }</script>after");
        assert_eq!(toks[0], start("script"));
        assert_eq!(toks[1], Token::Text("if (a<b) { x(); }".into()));
        assert_eq!(toks[2], end("script"));
        assert_eq!(toks[3], Token::Text("after".into()));
    }

    #[test]
    fn title_content_is_text_until_close() {
        let toks = tokenize("<title>My <Resume></title>");
        assert_eq!(toks[1], Token::Text("My <Resume>".into()));
    }

    #[test]
    fn rawtext_close_tag_case_insensitive() {
        let toks = tokenize("<STYLE>.x{}</Style>z");
        assert_eq!(toks[0], start("style"));
        assert_eq!(toks[1], Token::Text(".x{}".into()));
        assert_eq!(toks[2], end("style"));
        assert_eq!(toks[3], Token::Text("z".into()));
    }

    #[test]
    fn php_tag_is_bogus_comment() {
        let toks = tokenize("a<?php echo 1; ?>b");
        assert_eq!(toks[0], Token::Text("a".into()));
        assert!(matches!(&toks[1], Token::Comment(c) if c.contains("php")));
        assert_eq!(toks[2], Token::Text("b".into()));
    }

    #[test]
    fn bare_less_than_is_text() {
        let toks = tokenize("a < b");
        assert_eq!(
            toks,
            vec![
                Token::Text("a ".into()),
                Token::Text("<".into()),
                Token::Text(" b".into())
            ]
        );
    }

    #[test]
    fn gt_inside_quoted_attr_does_not_end_tag() {
        let toks = tokenize(r#"<img alt="x > y">"#);
        let Token::StartTag { name, attrs, .. } = &toks[0] else {
            panic!()
        };
        assert_eq!(name, "img");
        assert_eq!(attrs[0].value, "x > y");
        assert_eq!(toks.len(), 1);
    }

    #[test]
    fn unclosed_tag_at_eof_is_text() {
        let toks = tokenize("text <div class=");
        assert_eq!(toks[0], Token::Text("text ".into()));
        assert!(matches!(&toks[1], Token::Text(t) if t.starts_with("<div")));
    }

    #[test]
    fn end_tag_with_whitespace() {
        let toks = tokenize("<b>x</b >");
        assert_eq!(toks[2], end("b"));
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(tokenize("").is_empty());
    }
}
