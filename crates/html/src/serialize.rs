//! Serialization of HTML trees back to markup text.
//!
//! Used by the corpus generator (to materialize synthetic documents), by
//! tests (parse → serialize → parse stability) and for debugging.

use crate::node::{HtmlDocument, HtmlNode};
use crate::entities::{escape_attr, escape_text};
use crate::taxonomy::is_void;
use webre_tree::{Edge, NodeId};

/// Elements whose text content the lexer keeps verbatim (no entity
/// decoding). Their content must be emitted raw: escaping it would not be
/// undone on reparse. `title`/`textarea` are raw-text too but *are*
/// decoded by the lexer, so they take the normal escaped path.
fn is_raw_content(name: &str) -> bool {
    matches!(name, "script" | "style" | "xmp")
}

/// Serializes the subtree rooted at `id` to HTML text.
pub fn subtree_to_html(doc: &HtmlDocument, id: NodeId) -> String {
    let mut out = String::new();
    let mut raw_depth = 0usize;
    for edge in doc.tree.traverse(id) {
        match edge {
            Edge::Open(node) => match doc.tree.value(node) {
                HtmlNode::Document => {}
                HtmlNode::Element { name, attrs } => {
                    if is_raw_content(name) {
                        raw_depth += 1;
                    }
                    out.push('<');
                    out.push_str(name);
                    for a in attrs {
                        out.push(' ');
                        out.push_str(&a.name);
                        if !a.value.is_empty() {
                            out.push_str("=\"");
                            out.push_str(&escape_attr(&a.value));
                            out.push('"');
                        }
                    }
                    out.push('>');
                }
                HtmlNode::Text(t) => {
                    if raw_depth > 0 {
                        out.push_str(t);
                    } else {
                        out.push_str(&escape_text(t));
                    }
                }
                HtmlNode::Comment(c) => {
                    out.push_str("<!--");
                    out.push_str(c);
                    out.push_str("-->");
                }
                HtmlNode::Doctype(d) => {
                    out.push_str("<!");
                    out.push_str(d);
                    out.push('>');
                }
            },
            Edge::Close(node) => {
                if let HtmlNode::Element { name, .. } = doc.tree.value(node) {
                    if is_raw_content(name) {
                        raw_depth -= 1;
                    }
                    if !is_void(name) {
                        out.push_str("</");
                        out.push_str(name);
                        out.push('>');
                    }
                }
            }
        }
    }
    out
}

/// Serializes the whole document.
pub fn to_html(doc: &HtmlDocument) -> String {
    subtree_to_html(doc, doc.tree.root())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn round_trips_simple_markup() {
        let html = "<div class=\"x\"><p>one</p><p>two &amp; three</p></div>";
        let doc = parse(html);
        assert_eq!(to_html(&doc), html);
    }

    #[test]
    fn void_elements_not_closed() {
        let doc = parse("<p>a<br>b</p>");
        assert_eq!(to_html(&doc), "<p>a<br>b</p>");
    }

    #[test]
    fn boolean_attrs_render_bare() {
        let doc = parse("<input checked>");
        assert_eq!(to_html(&doc), "<input checked>");
    }

    #[test]
    fn escapes_special_chars() {
        let doc = parse("<p>a &lt; b</p>");
        assert_eq!(to_html(&doc), "<p>a &lt; b</p>");
    }

    #[test]
    fn script_content_round_trips_raw() {
        let html = "<script>if (a &lt; b) x();</script>";
        let doc = parse(html);
        // The lexer kept the content verbatim (no decode)…
        assert_eq!(to_html(&doc), html);
        // …and reparsing yields the same tree.
        let twice = parse(&to_html(&doc));
        assert!(doc
            .tree
            .subtree_eq(doc.tree.root(), &twice.tree, twice.tree.root()));
    }

    #[test]
    fn title_content_round_trips_escaped() {
        let doc = parse("<title>R&amp;D</title>");
        assert_eq!(to_html(&doc), "<title>R&amp;D</title>");
        let twice = parse(&to_html(&doc));
        assert!(doc
            .tree
            .subtree_eq(doc.tree.root(), &twice.tree, twice.tree.root()));
    }

    #[test]
    fn garbage_attr_names_do_not_poison_round_trip() {
        // The unquoted `title` value swallows `<"a`, leaving quote-bearing
        // junk attribute names behind; the lexer drops those so the
        // serialized form re-lexes to the same tree.
        let html = r#"<i class="x y" title=<"a &amp; b < c">page</i>"#;
        let once = parse(html);
        let twice = parse(&to_html(&once));
        assert!(once
            .tree
            .subtree_eq(once.tree.root(), &twice.tree, twice.tree.root()));
        assert_eq!(to_html(&once), to_html(&twice));
    }

    #[test]
    fn declaration_with_leading_dashes_round_trips() {
        // `<! --x>` must not serialize to `<!--x>` (a comment).
        let once = parse("<! --x>a");
        let twice = parse(&to_html(&once));
        assert!(once
            .tree
            .subtree_eq(once.tree.root(), &twice.tree, twice.tree.root()));
    }

    #[test]
    fn reparse_is_stable() {
        let html = "<ul><li>a<li>b</ul><table><tr><td>x</table>";
        let once = parse(html);
        let twice = parse(&to_html(&once));
        assert!(once
            .tree
            .subtree_eq(once.tree.root(), &twice.tree, twice.tree.root()));
    }
}
