//! Serialization of HTML trees back to markup text.
//!
//! Used by the corpus generator (to materialize synthetic documents), by
//! tests (parse → serialize → parse stability) and for debugging.

use crate::node::{HtmlDocument, HtmlNode};
use crate::entities::{escape_attr, escape_text};
use crate::taxonomy::is_void;
use webre_tree::{Edge, NodeId};

/// Serializes the subtree rooted at `id` to HTML text.
pub fn subtree_to_html(doc: &HtmlDocument, id: NodeId) -> String {
    let mut out = String::new();
    for edge in doc.tree.traverse(id) {
        match edge {
            Edge::Open(node) => match doc.tree.value(node) {
                HtmlNode::Document => {}
                HtmlNode::Element { name, attrs } => {
                    out.push('<');
                    out.push_str(name);
                    for a in attrs {
                        out.push(' ');
                        out.push_str(&a.name);
                        if !a.value.is_empty() {
                            out.push_str("=\"");
                            out.push_str(&escape_attr(&a.value));
                            out.push('"');
                        }
                    }
                    out.push('>');
                }
                HtmlNode::Text(t) => out.push_str(&escape_text(t)),
                HtmlNode::Comment(c) => {
                    out.push_str("<!--");
                    out.push_str(c);
                    out.push_str("-->");
                }
                HtmlNode::Doctype(d) => {
                    out.push_str("<!");
                    out.push_str(d);
                    out.push('>');
                }
            },
            Edge::Close(node) => {
                if let HtmlNode::Element { name, .. } = doc.tree.value(node) {
                    if !is_void(name) {
                        out.push_str("</");
                        out.push_str(name);
                        out.push('>');
                    }
                }
            }
        }
    }
    out
}

/// Serializes the whole document.
pub fn to_html(doc: &HtmlDocument) -> String {
    subtree_to_html(doc, doc.tree.root())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn round_trips_simple_markup() {
        let html = "<div class=\"x\"><p>one</p><p>two &amp; three</p></div>";
        let doc = parse(html);
        assert_eq!(to_html(&doc), html);
    }

    #[test]
    fn void_elements_not_closed() {
        let doc = parse("<p>a<br>b</p>");
        assert_eq!(to_html(&doc), "<p>a<br>b</p>");
    }

    #[test]
    fn boolean_attrs_render_bare() {
        let doc = parse("<input checked>");
        assert_eq!(to_html(&doc), "<input checked>");
    }

    #[test]
    fn escapes_special_chars() {
        let doc = parse("<p>a &lt; b</p>");
        assert_eq!(to_html(&doc), "<p>a &lt; b</p>");
    }

    #[test]
    fn reparse_is_stable() {
        let html = "<ul><li>a<li>b</ul><table><tr><td>x</table>";
        let once = parse(html);
        let twice = parse(&to_html(&once));
        assert!(once
            .tree
            .subtree_eq(once.tree.root(), &twice.tree, twice.tree.root()));
    }
}
