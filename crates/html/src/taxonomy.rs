//! Element taxonomy: the domain-independent HTML knowledge the paper's
//! restructuring rules consume.
//!
//! Section 2.1 of the paper splits HTML elements into *block level* elements
//! (document structure: headings, lists, text containers, tables) and *text
//! level* elements (font markup inside blocks). Section 4 then fixes the
//! exact annotation used in the experiments:
//!
//! * group tags `{h1..h6, div, p, tr, dt, dd, li, title, u, strong, b, em, i}`
//!   — used by the grouping rule, with heading tags carrying higher priority
//!   than paragraph-level tags at the same tree level;
//! * list tags `{body, table, dl, ul, ol, dir, menu}` — elements known to
//!   exhibit a list structure, used by the consolidation rule's push-up case.

/// Coarse classification of an element name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElementClass {
    /// Structures the document: headings, paragraphs, lists, tables, ...
    Block,
    /// Marks up text inside blocks: `b`, `i`, `font`, `span`, ...
    Text,
    /// Everything else (head-only metadata, form controls, unknown tags).
    Other,
}

/// Block level elements (HTML 4 block content plus structural table/list
/// internals, which the paper treats as structure carriers).
const BLOCK: &[&str] = &[
    "address", "blockquote", "body", "caption", "center", "col", "colgroup", "dd", "dir", "div",
    "dl", "dt", "fieldset", "form", "h1", "h2", "h3", "h4", "h5", "h6", "head", "hr", "html",
    "li", "menu", "noframes", "noscript", "ol", "p", "pre", "table", "tbody", "td", "tfoot",
    "th", "thead", "title", "tr", "ul",
];

/// Text level elements.
const TEXT_LEVEL: &[&str] = &[
    "a", "abbr", "acronym", "b", "basefont", "bdo", "big", "br", "cite", "code", "dfn", "em",
    "font", "i", "kbd", "q", "s", "samp", "small", "span", "strike", "strong", "sub", "sup",
    "tt", "u", "var",
];

/// Void elements: never have children.
const VOID: &[&str] = &[
    "area", "base", "basefont", "br", "col", "embed", "frame", "hr", "img", "input", "isindex",
    "link", "meta", "param", "source", "track", "wbr",
];

/// The paper's list tags: elements known to exhibit a list structure, whose
/// children are likely objects at the same level of abstraction. The paper
/// lists `{body, table, dl, ul, ol, dir, menu}`; we additionally treat the
/// `html` wrapper itself as a list container — it plays the same pure
/// container role as `body`, and without it the consolidation rule would
/// nest every top-level section under the first concept of a full page.
const LIST_TAGS: &[&str] = &["html", "body", "table", "dl", "ul", "ol", "dir", "menu"];

/// Elements whose subtree carries no document information and is dropped by
/// the tidy pass.
const DROP: &[&str] = &["script", "style", "object", "applet", "iframe", "frameset", "frame", "map"];

/// Classifies an element name (must already be lowercase).
pub fn classify(name: &str) -> ElementClass {
    if BLOCK.contains(&name) {
        ElementClass::Block
    } else if TEXT_LEVEL.contains(&name) {
        ElementClass::Text
    } else {
        ElementClass::Other
    }
}

/// Whether `name` is a block level element.
pub fn is_block_level(name: &str) -> bool {
    classify(name) == ElementClass::Block
}

/// Whether `name` is a text level element.
pub fn is_text_level(name: &str) -> bool {
    classify(name) == ElementClass::Text
}

/// Whether `name` is a void element (no children ever).
pub fn is_void(name: &str) -> bool {
    VOID.contains(&name)
}

/// Whether `name` is one of the paper's list tags.
pub fn is_list_tag(name: &str) -> bool {
    LIST_TAGS.contains(&name)
}

/// Whether `name`'s subtree should be discarded during tidy.
pub fn is_dropped(name: &str) -> bool {
    DROP.contains(&name)
}

/// The grouping-rule priority of a tag, or `None` if the tag is not a group
/// tag.
///
/// Higher weights group first: grouping right siblings of an `h1` run takes
/// priority over grouping right siblings of `p` nodes at the same level
/// (Section 2.3.2). Since each group sinks down and the rule operates
/// top-down, lower-priority group tags are then handled at the next lower
/// level.
pub fn group_tag_weight(name: &str) -> Option<u32> {
    let w = match name {
        "h1" => 100,
        "h2" => 95,
        "h3" => 90,
        "h4" => 85,
        "h5" => 80,
        "h6" => 75,
        "title" => 70,
        "div" => 60,
        "p" => 55,
        "tr" => 50,
        "li" => 45,
        "dt" => 42,
        "dd" => 40,
        "u" => 30,
        "strong" => 28,
        "b" => 26,
        "em" => 24,
        "i" => 22,
        _ => return None,
    };
    Some(w)
}

/// Whether `name` is one of the paper's group tags.
pub fn is_group_tag(name: &str) -> bool {
    group_tag_weight(name).is_some()
}

/// Heading level for `h1`..`h6`, or `None`.
pub fn heading_level(name: &str) -> Option<u8> {
    match name.as_bytes() {
        [b'h', d @ b'1'..=b'6'] => Some(d - b'0'),
        _ => None,
    }
}

/// Start tags that implicitly close an open element with tag `open` when a
/// new `incoming` start tag arrives (tag-soup recovery, HTML 4 optional end
/// tags).
pub fn implies_end(open: &str, incoming: &str) -> bool {
    match open {
        "p" => is_block_level(incoming),
        "li" => incoming == "li",
        "dt" | "dd" => incoming == "dt" || incoming == "dd",
        "tr" => incoming == "tr",
        "td" | "th" => matches!(incoming, "td" | "th" | "tr"),
        "thead" | "tbody" | "tfoot" => matches!(incoming, "thead" | "tbody" | "tfoot"),
        "option" => incoming == "option",
        "head" => incoming == "body",
        // Legacy pages frequently write <h2>A<h2>B — repair by closing the
        // open heading (the paper's "nesting of heading elements" example).
        _ => heading_level(open).is_some() && heading_level(incoming).is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_paper_examples() {
        assert!(is_block_level("p"));
        assert!(is_block_level("h1"));
        assert!(is_block_level("table"));
        assert!(is_block_level("dl"));
        assert!(is_text_level("b"));
        assert!(is_text_level("font"));
        assert_eq!(classify("meta"), ElementClass::Other);
    }

    #[test]
    fn paper_group_tag_set() {
        for t in [
            "h1", "h2", "h3", "h4", "h5", "h6", "div", "p", "tr", "dt", "dd", "li", "title", "u",
            "strong", "b", "em", "i",
        ] {
            assert!(is_group_tag(t), "{t} should be a group tag");
        }
        assert!(!is_group_tag("table"));
        assert!(!is_group_tag("span"));
    }

    #[test]
    fn paper_list_tag_set() {
        for t in ["body", "table", "dl", "ul", "ol", "dir", "menu"] {
            assert!(is_list_tag(t), "{t} should be a list tag");
        }
        // Our one extension to the paper's set (see LIST_TAGS docs).
        assert!(is_list_tag("html"));
        assert!(!is_list_tag("p"));
    }

    #[test]
    fn headings_outrank_paragraphs() {
        assert!(group_tag_weight("h1").unwrap() > group_tag_weight("p").unwrap());
        assert!(group_tag_weight("p").unwrap() > group_tag_weight("b").unwrap());
        assert!(group_tag_weight("h1").unwrap() > group_tag_weight("h2").unwrap());
    }

    #[test]
    fn heading_levels() {
        assert_eq!(heading_level("h1"), Some(1));
        assert_eq!(heading_level("h6"), Some(6));
        assert_eq!(heading_level("h7"), None);
        assert_eq!(heading_level("hr"), None);
    }

    #[test]
    fn void_elements() {
        assert!(is_void("br"));
        assert!(is_void("img"));
        assert!(!is_void("div"));
    }

    #[test]
    fn implied_ends() {
        assert!(implies_end("p", "p"));
        assert!(implies_end("p", "div"));
        assert!(!implies_end("p", "b"));
        assert!(implies_end("li", "li"));
        assert!(!implies_end("li", "p"));
        assert!(implies_end("td", "td"));
        assert!(implies_end("td", "tr"));
        assert!(implies_end("dt", "dd"));
        assert!(implies_end("h2", "h2"));
        assert!(implies_end("h2", "h3"));
        assert!(!implies_end("div", "div"));
    }
}
