//! HTML-Tidy-like cleanup pass.
//!
//! Section 2.4 of the paper notes that applying HTML cleansing tools (such
//! as HTML Tidy) before the restructuring rules improves the accuracy of the
//! resulting XML documents. This pass performs the subset of that cleansing
//! that matters to the conversion process:
//!
//! * drop comments, doctypes and information-free subtrees
//!   (`script`, `style`, `iframe`, ...);
//! * drop `head`-only metadata elements (`meta`, `link`, `base`) while
//!   keeping `title` (it carries the document's topic sentence);
//! * collapse runs of whitespace in text nodes and remove text nodes that
//!   are whitespace-only between block elements;
//! * remove empty elements that carry no text and no attributes of interest;
//! * unwrap redundant single-child nesting of the *same* text-level tag
//!   (`<b><b>x</b></b>`).

use crate::node::{HtmlDocument, HtmlNode};
use crate::taxonomy::{is_block_level, is_dropped, is_text_level, is_void};
use webre_tree::NodeId;

/// Metadata elements that are dropped together with their subtree.
fn is_metadata(name: &str) -> bool {
    matches!(name, "meta" | "link" | "base" | "basefont" | "isindex")
}

/// Collapses internal whitespace runs to single spaces.
fn collapse_ws(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_ws = false;
    for ch in text.chars() {
        // Treat NBSP as layout whitespace: legacy pages pad with &nbsp;.
        if ch.is_whitespace() || ch == '\u{a0}' {
            if !in_ws {
                out.push(' ');
            }
            in_ws = true;
        } else {
            out.push(ch);
            in_ws = false;
        }
    }
    out
}

/// Whether `collapse_ws` would return `text` unchanged — true for the
/// common pre-collapsed text node, which then needs no new allocation.
fn is_collapsed(text: &str) -> bool {
    let mut prev_space = false;
    for ch in text.chars() {
        if ch == ' ' {
            if prev_space {
                return false;
            }
            prev_space = true;
        } else if ch.is_whitespace() || ch == '\u{a0}' {
            return false;
        } else {
            prev_space = false;
        }
    }
    true
}

/// What the main pass decided to do with a node; decisions are computed
/// against a borrowed value so clean nodes cost no allocation.
enum Action {
    Keep,
    Detach,
    SetText(String),
    UnwrapChild(NodeId),
}

/// Runs the cleanup pass in place.
pub fn tidy(doc: &mut HtmlDocument) {
    let root = doc.tree.root();
    // Collect post-order so children are processed before their parents and
    // ids stay valid while we mutate (detached nodes simply stop mattering).
    let order: Vec<NodeId> = doc.tree.post_order(root).collect();
    for id in order {
        if id == root || !doc.tree.is_attached(id) {
            continue;
        }
        let action = match doc.tree.value(id) {
            HtmlNode::Comment(_) | HtmlNode::Doctype(_) => Action::Detach,
            HtmlNode::Text(text) => {
                if is_collapsed(text) {
                    if text.trim().is_empty() {
                        Action::Detach
                    } else {
                        Action::Keep
                    }
                } else {
                    let collapsed = collapse_ws(text);
                    if collapsed.trim().is_empty() {
                        Action::Detach
                    } else {
                        Action::SetText(collapsed)
                    }
                }
            }
            HtmlNode::Element { name, .. } => {
                if is_dropped(name) || is_metadata(name) {
                    Action::Detach
                } else if doc.tree.is_leaf(id) && !is_void(name) {
                    // Empty non-void element: contributes nothing.
                    Action::Detach
                } else if is_text_level(name) && doc.tree.child_count(id) == 1 {
                    let child = doc.tree.first_child(id).unwrap();
                    if doc.tree.value(child).is_element(name) {
                        // <b><b>x</b></b> → <b>x</b>
                        Action::UnwrapChild(child)
                    } else {
                        Action::Keep
                    }
                } else {
                    Action::Keep
                }
            }
            HtmlNode::Document => Action::Keep,
        };
        match action {
            Action::Keep => {}
            Action::Detach => doc.tree.detach(id),
            Action::SetText(text) => *doc.tree.value_mut(id) = HtmlNode::Text(text),
            Action::UnwrapChild(child) => doc.tree.replace_with_children(child),
        }
    }
    trim_block_boundaries(doc);
}

/// Trims leading/trailing spaces of text nodes that sit at block boundaries
/// (first/last child of a block element), where the space is layout-only.
fn trim_block_boundaries(doc: &mut HtmlDocument) {
    let root = doc.tree.root();
    let ids: Vec<NodeId> = doc.tree.descendants(root).collect();
    let mut emptied: Vec<NodeId> = Vec::new();
    for id in ids {
        let Some(parent) = doc.tree.parent(id) else {
            continue;
        };
        let parent_is_block = match doc.tree.value(parent) {
            HtmlNode::Document => true,
            HtmlNode::Element { name, .. } => is_block_level(name),
            _ => false,
        };
        if !parent_is_block {
            continue;
        }
        let is_first = doc.tree.prev_sibling(id).is_none();
        let is_last = doc.tree.next_sibling(id).is_none();
        if let HtmlNode::Text(t) = doc.tree.value_mut(id) {
            if is_last {
                // In-place: dropping a tail never moves the head.
                t.truncate(t.trim_end().len());
            }
            if is_first {
                let lead = t.len() - t.trim_start().len();
                if lead > 0 {
                    t.drain(..lead);
                }
            }
            if t.is_empty() {
                emptied.push(id);
            }
        }
    }
    // Trimming may have produced empty text nodes. The sweep stays a
    // separate pass: detaching mid-loop would promote neighbours to
    // first/last and trim them more aggressively than one pass should.
    for id in emptied {
        doc.tree.detach(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn tidied(html: &str) -> HtmlDocument {
        let mut doc = parse(html);
        tidy(&mut doc);
        doc
    }

    #[test]
    fn drops_comments_and_doctype() {
        let doc = tidied("<!DOCTYPE html><!-- x --><p>text</p>");
        assert_eq!(doc.tree.child_count(doc.tree.root()), 1);
        assert_eq!(doc.text_content(), "text");
    }

    #[test]
    fn drops_script_and_style_subtrees() {
        let doc = tidied("<p>keep</p><script>var x;</script><style>.a{}</style>");
        assert_eq!(doc.text_content(), "keep");
        assert_eq!(doc.element_count(), 1);
    }

    #[test]
    fn drops_metadata_keeps_title() {
        let doc = tidied("<head><meta charset=x><link href=y><title>Resume</title></head>");
        assert_eq!(doc.text_content(), "Resume");
    }

    #[test]
    fn collapses_whitespace() {
        let doc = tidied("<p>a\n   b\t c</p>");
        assert_eq!(doc.text_content(), "a b c");
    }

    #[test]
    fn nbsp_treated_as_space() {
        let doc = tidied("<p>a\u{a0}\u{a0}b</p>");
        assert_eq!(doc.text_content(), "a b");
    }

    #[test]
    fn removes_whitespace_only_text_between_blocks() {
        let doc = tidied("<div>\n  <p>a</p>\n  <p>b</p>\n</div>");
        let div = doc.tree.first_child(doc.tree.root()).unwrap();
        assert_eq!(doc.tree.child_count(div), 2);
    }

    #[test]
    fn removes_empty_elements_recursively() {
        let doc = tidied("<div><p></p><span>  </span></div><p>x</p>");
        // The inner p and span vanish, then the now-empty div vanishes too.
        assert_eq!(doc.element_count(), 1);
        assert_eq!(doc.text_content(), "x");
    }

    #[test]
    fn keeps_void_elements() {
        let doc = tidied("<p>a<br>b</p>");
        assert_eq!(doc.element_count(), 2);
    }

    #[test]
    fn unwraps_doubled_inline_tags() {
        let doc = tidied("<p><b><b>bold</b></b></p>");
        let p = doc.tree.first_child(doc.tree.root()).unwrap();
        let b = doc.tree.first_child(p).unwrap();
        assert!(doc.tree.value(b).is_element("b"));
        let inner = doc.tree.first_child(b).unwrap();
        assert_eq!(doc.tree.value(inner).as_text(), Some("bold"));
    }

    #[test]
    fn trims_text_at_block_boundaries() {
        let doc = tidied("<p> hello world </p>");
        assert_eq!(doc.text_content(), "hello world");
    }

    #[test]
    fn keeps_interword_space_around_inline() {
        let doc = tidied("<p>one <b>two</b> three</p>");
        assert_eq!(doc.text_content(), "one two three");
    }

    #[test]
    fn integrity_after_tidy() {
        let doc = tidied(
            "<html><head><meta x=y><title>T</title></head><body>\
             <!-- c --><div> <p></p> <ul><li>a</li></ul></div></body></html>",
        );
        doc.tree.check_integrity().unwrap();
    }
}
