//! HTML character reference (entity) decoding and encoding.
//!
//! Legacy resume pages lean heavily on `&nbsp;`, `&amp;` and friends; the
//! lexer decodes them in text and attribute values so that downstream
//! concept matching sees plain characters. The table covers the named
//! entities that actually occur in 1990s/2000s-era HTML plus full numeric
//! (`&#123;` / `&#x1F;`) support.

/// Named entities supported by [`decode`]. Sorted for binary search.
const NAMED: &[(&str, char)] = &[
    ("AElig", 'Æ'),
    ("Aacute", 'Á'),
    ("Agrave", 'À'),
    ("Auml", 'Ä'),
    ("Ccedil", 'Ç'),
    ("Eacute", 'É'),
    ("Egrave", 'È'),
    ("Ntilde", 'Ñ'),
    ("Ouml", 'Ö'),
    ("Uuml", 'Ü'),
    ("aacute", 'á'),
    ("agrave", 'à'),
    ("amp", '&'),
    ("apos", '\''),
    ("auml", 'ä'),
    ("bull", '•'),
    ("ccedil", 'ç'),
    ("cent", '¢'),
    ("copy", '©'),
    ("deg", '°'),
    ("eacute", 'é'),
    ("egrave", 'è'),
    ("euml", 'ë'),
    ("euro", '€'),
    ("gt", '>'),
    ("hellip", '…'),
    ("iacute", 'í'),
    ("laquo", '«'),
    ("ldquo", '“'),
    ("lsquo", '‘'),
    ("lt", '<'),
    ("mdash", '—'),
    ("middot", '·'),
    ("nbsp", '\u{a0}'),
    ("ndash", '–'),
    ("ntilde", 'ñ'),
    ("oacute", 'ó'),
    ("ouml", 'ö'),
    ("para", '¶'),
    ("pound", '£'),
    ("quot", '"'),
    ("raquo", '»'),
    ("rdquo", '”'),
    ("reg", '®'),
    ("rsquo", '’'),
    ("sect", '§'),
    ("shy", '\u{ad}'),
    ("times", '×'),
    ("trade", '™'),
    ("uacute", 'ú'),
    ("uuml", 'ü'),
    ("yen", '¥'),
];

fn lookup_named(name: &str) -> Option<char> {
    NAMED
        .binary_search_by(|(n, _)| n.cmp(&name))
        .ok()
        .map(|i| NAMED[i].1)
}

/// Decodes all character references in `input`.
///
/// Unknown or malformed references are passed through verbatim, matching
/// browser behaviour for legacy pages. The terminating `;` is optional for
/// named references (common in old hand-written HTML) but required to be a
/// clean word boundary in that case.
pub fn decode(input: &str) -> String {
    if !input.contains('&') {
        return input.to_owned();
    }
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            let start = i;
            while i < bytes.len() && bytes[i] != b'&' {
                i += 1;
            }
            out.push_str(&input[start..i]);
            continue;
        }
        match decode_reference(&input[i..]) {
            Some((ch, len)) => {
                out.push(ch);
                i += len;
            }
            None => {
                out.push('&');
                i += 1;
            }
        }
    }
    out
}

/// Attempts to decode one reference at the start of `s` (which begins with
/// `&`). Returns the decoded char and the number of input bytes consumed.
fn decode_reference(s: &str) -> Option<(char, usize)> {
    let rest = &s[1..];
    if let Some(num) = rest.strip_prefix('#') {
        let (digits, radix) = match num.strip_prefix(['x', 'X']) {
            Some(hex) => (hex, 16),
            None => (num, 10),
        };
        let end = digits
            .find(|c: char| !c.is_ascii_hexdigit())
            .unwrap_or(digits.len());
        let end = digits[..end]
            .find(|c: char| !c.is_digit(radix))
            .unwrap_or(end);
        if end == 0 {
            return None;
        }
        let code = u32::from_str_radix(&digits[..end], radix).ok()?;
        let ch = char::from_u32(code).unwrap_or('\u{fffd}');
        // 1 for '&', 1 for '#', maybe 1 for 'x'.
        let mut len = 2 + end + if radix == 16 { 1 } else { 0 };
        if s.as_bytes().get(len) == Some(&b';') {
            len += 1;
        }
        return Some((ch, len));
    }
    let end = rest
        .find(|c: char| !c.is_ascii_alphanumeric())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    let name = &rest[..end];
    let ch = lookup_named(name)?;
    let mut len = 1 + end;
    if s.as_bytes().get(len) == Some(&b';') {
        len += 1;
    }
    Some((ch, len))
}

/// Escapes text content for HTML/XML output (`& < >`).
pub fn escape_text(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for ch in input.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Escapes an attribute value for double-quoted output (`& < > "`).
pub fn escape_attr(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for ch in input.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_table_is_sorted() {
        for w in NAMED.windows(2) {
            assert!(w[0].0 < w[1].0, "{} >= {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn decodes_common_named_entities() {
        assert_eq!(decode("Fish &amp; Chips"), "Fish & Chips");
        assert_eq!(decode("&lt;b&gt;"), "<b>");
        assert_eq!(decode("a&nbsp;b"), "a\u{a0}b");
        assert_eq!(decode("&copy; 2001"), "© 2001");
    }

    #[test]
    fn decodes_without_trailing_semicolon() {
        assert_eq!(decode("Fish &amp Chips"), "Fish & Chips");
        assert_eq!(decode("R&amp;D"), "R&D");
    }

    #[test]
    fn decodes_numeric_references() {
        assert_eq!(decode("&#65;&#66;"), "AB");
        assert_eq!(decode("&#x41;"), "A");
        assert_eq!(decode("&#X41;"), "A");
        assert_eq!(decode("&#233;"), "é");
    }

    #[test]
    fn invalid_codepoint_becomes_replacement() {
        assert_eq!(decode("&#xD800;"), "\u{fffd}");
    }

    #[test]
    fn unknown_references_pass_through() {
        assert_eq!(decode("&bogus;"), "&bogus;");
        assert_eq!(decode("a & b"), "a & b");
        assert_eq!(decode("&"), "&");
        assert_eq!(decode("&#;"), "&#;");
    }

    #[test]
    fn escape_text_round_trips_via_decode() {
        let raw = "a < b & c > d";
        assert_eq!(decode(&escape_text(raw)), raw);
    }

    #[test]
    fn escape_attr_escapes_quotes() {
        assert_eq!(escape_attr(r#"say "hi""#), "say &quot;hi&quot;");
        assert_eq!(decode(&escape_attr(r#"a"b<c"#)), r#"a"b<c"#);
    }

    #[test]
    fn decode_is_noop_without_ampersand() {
        assert_eq!(decode("plain text"), "plain text");
    }
}
