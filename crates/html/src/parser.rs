//! Tag-soup parser: token stream → ordered tree.
//!
//! Recovery strategies, in the spirit of what browsers (and HTML Tidy) did
//! for the legacy pages the paper targets:
//!
//! * optional end tags are implied ([`taxonomy::implies_end`]): `<li>`
//!   closes an open `<li>`, a block element closes an open `<p>`, table
//!   cells close each other, headings close headings;
//! * void elements never open a scope;
//! * an end tag with no matching open element is ignored;
//! * an end tag that matches a non-top open element closes everything above
//!   it (misnested formatting collapses inward);
//! * anything left open at EOF is closed implicitly.

use crate::lexer::{tokenize, Token};
use crate::node::{HtmlDocument, HtmlNode};
use crate::taxonomy::{implies_end, is_void};
use webre_tree::{NodeId, Tree};

/// Parses HTML text into an [`HtmlDocument`].
pub fn parse(input: &str) -> HtmlDocument {
    let tokens = tokenize(input);
    let mut tree = Tree::with_capacity(HtmlNode::Document, tokens.len() + 1);
    // Stack of open elements; index 0 is the document root.
    let mut stack: Vec<(NodeId, String)> = vec![(tree.root(), String::new())];

    for token in tokens {
        match token {
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                // Imply end tags for elements the incoming tag closes.
                while stack.len() > 1 && implies_end(&stack.last().unwrap().1, &name) {
                    stack.pop();
                }
                let parent = stack.last().unwrap().0;
                let node = tree.append_child(
                    parent,
                    HtmlNode::Element {
                        name: name.clone(),
                        attrs,
                    },
                );
                if !self_closing && !is_void(&name) {
                    stack.push((node, name));
                }
            }
            Token::EndTag { name } => {
                if let Some(pos) = stack.iter().rposition(|(_, n)| *n == name) {
                    if pos > 0 {
                        stack.truncate(pos);
                    }
                }
                // No match: stray end tag, ignored.
            }
            Token::Text(text) => {
                let parent = stack.last().unwrap().0;
                // Merge with a preceding text node to keep text runs whole
                // even when split by entity decoding or stray markup.
                if let Some(last) = tree.last_child(parent) {
                    if let HtmlNode::Text(existing) = tree.value_mut(last) {
                        existing.push_str(&text);
                        continue;
                    }
                }
                tree.append_child(parent, HtmlNode::Text(text));
            }
            Token::Comment(c) => {
                let parent = stack.last().unwrap().0;
                tree.append_child(parent, HtmlNode::Comment(c));
            }
            Token::Doctype(d) => {
                let parent = stack.last().unwrap().0;
                tree.append_child(parent, HtmlNode::Doctype(d));
            }
        }
    }

    HtmlDocument { tree }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(doc: &HtmlDocument, id: NodeId) -> Vec<String> {
        doc.tree
            .children(id)
            .map(|c| match doc.tree.value(c) {
                HtmlNode::Element { name, .. } => name.clone(),
                HtmlNode::Text(t) => format!("#{t}"),
                HtmlNode::Comment(_) => "#comment".into(),
                HtmlNode::Doctype(_) => "#doctype".into(),
                HtmlNode::Document => "#doc".into(),
            })
            .collect()
    }

    #[test]
    fn nested_elements() {
        let doc = parse("<div><p>one</p><p>two</p></div>");
        let root = doc.tree.root();
        assert_eq!(names(&doc, root), ["div"]);
        let div = doc.tree.first_child(root).unwrap();
        assert_eq!(names(&doc, div), ["p", "p"]);
        assert_eq!(doc.text_content(), "onetwo");
    }

    #[test]
    fn implied_li_end_tags() {
        let doc = parse("<ul><li>a<li>b<li>c</ul>");
        let ul = doc.tree.first_child(doc.tree.root()).unwrap();
        assert_eq!(names(&doc, ul), ["li", "li", "li"]);
    }

    #[test]
    fn block_element_closes_p() {
        let doc = parse("<p>intro<div>body</div>");
        let root = doc.tree.root();
        assert_eq!(names(&doc, root), ["p", "div"]);
    }

    #[test]
    fn inline_does_not_close_p() {
        let doc = parse("<p>a<b>c</b></p>");
        let p = doc.tree.first_child(doc.tree.root()).unwrap();
        assert_eq!(names(&doc, p), ["#a", "b"]);
    }

    #[test]
    fn table_cells_imply_ends() {
        let doc = parse("<table><tr><td>a<td>b<tr><td>c</table>");
        let table = doc.tree.first_child(doc.tree.root()).unwrap();
        assert_eq!(names(&doc, table), ["tr", "tr"]);
        let tr1 = doc.tree.first_child(table).unwrap();
        assert_eq!(names(&doc, tr1), ["td", "td"]);
    }

    #[test]
    fn dt_dd_alternate() {
        let doc = parse("<dl><dt>term<dd>def<dt>term2<dd>def2</dl>");
        let dl = doc.tree.first_child(doc.tree.root()).unwrap();
        assert_eq!(names(&doc, dl), ["dt", "dd", "dt", "dd"]);
    }

    #[test]
    fn heading_soup_repaired() {
        // The paper's "nesting of heading elements" malformation.
        let doc = parse("<h2>Education<h2>Experience");
        let root = doc.tree.root();
        assert_eq!(names(&doc, root), ["h2", "h2"]);
    }

    #[test]
    fn stray_end_tag_ignored() {
        let doc = parse("a</b>c");
        assert_eq!(doc.text_content(), "ac");
        assert_eq!(doc.element_count(), 0);
    }

    #[test]
    fn misnested_end_closes_through() {
        let doc = parse("<b><i>x</b>y");
        // </b> closes both <i> and <b>; y lands at top level.
        let root = doc.tree.root();
        assert_eq!(names(&doc, root), ["b", "#y"]);
    }

    #[test]
    fn void_elements_have_no_children() {
        let doc = parse("<p>a<br>b</p>");
        let p = doc.tree.first_child(doc.tree.root()).unwrap();
        assert_eq!(names(&doc, p), ["#a", "br", "#b"]);
    }

    #[test]
    fn hr_closes_open_paragraph() {
        // <hr> is block level, so it implicitly ends the <p> (browser rule).
        let doc = parse("<p>a<hr>c");
        let root = doc.tree.root();
        assert_eq!(names(&doc, root), ["p", "hr", "#c"]);
    }

    #[test]
    fn unclosed_elements_closed_at_eof() {
        let doc = parse("<div><p>text");
        let div = doc.tree.first_child(doc.tree.root()).unwrap();
        let p = doc.tree.first_child(div).unwrap();
        assert_eq!(doc.tree.value(p).name(), Some("p"));
        assert_eq!(doc.text_content(), "text");
    }

    #[test]
    fn adjacent_text_merged() {
        let doc = parse("a&amp;b");
        let root = doc.tree.root();
        assert_eq!(doc.tree.child_count(root), 1);
        assert_eq!(doc.text_content(), "a&b");
    }

    #[test]
    fn full_page_structure() {
        let doc = parse(
            "<!DOCTYPE html><html><head><title>Resume</title></head>\
             <body><h1>Jane</h1><p>Objective</p></body></html>",
        );
        let root = doc.tree.root();
        assert_eq!(names(&doc, root), ["#doctype", "html"]);
        assert!(doc.text_content().contains("Jane"));
        doc.tree.check_integrity().unwrap();
    }

    #[test]
    fn empty_input() {
        let doc = parse("");
        assert!(doc.tree.is_leaf(doc.tree.root()));
    }
}
