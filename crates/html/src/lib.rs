//! HTML substrate for the `webre` workspace.
//!
//! The paper consumes "legacy" HTML gathered by a topic crawler: tag soup
//! written by many different authors, marked up for visual rendering only.
//! This crate provides everything the document conversion process needs from
//! the HTML side:
//!
//! * [`lexer`] — a tokenizer producing start/end tags, text, comments and
//!   doctypes, with entity decoding and RAWTEXT handling for
//!   `<script>`/`<style>`.
//! * [`parser`] — a forgiving tag-soup parser building an ordered
//!   [`webre_tree::Tree`] of [`HtmlNode`]s: implied end tags (`<p>`, `<li>`,
//!   table cells, …), void elements, stray end tags.
//! * [`taxonomy`] — the element classification the restructuring rules rely
//!   on: block-level vs text-level elements, the paper's *group tags* with
//!   their priorities, and its *list tags*.
//! * [`tidy`] — an HTML-Tidy-like cleanup pass (drop comments/scripts,
//!   normalize whitespace, repair heading nesting) that the paper reports
//!   improves extraction accuracy.
//! * [`serialize`] — render a tree back to HTML text.
//!
//! # Example
//!
//! ```
//! use webre_html::parse;
//!
//! let doc = parse("<ul><li>B.S. <b>Computer Science</b><li>GPA 3.8</ul>");
//! let root = doc.tree.root();
//! // Both <li> elements were closed implicitly.
//! let ul = doc.tree.first_child(root).unwrap();
//! assert_eq!(doc.tree.children(ul).count(), 2);
//! ```

pub mod entities;
pub mod lexer;
pub mod node;
pub mod parser;
pub mod serialize;
pub mod taxonomy;
pub mod tidy;

pub use node::{Attribute, HtmlDocument, HtmlNode};
pub use parser::parse;
pub use serialize::to_html;
pub use taxonomy::{
    group_tag_weight, is_block_level, is_group_tag, is_list_tag, is_void, ElementClass,
};
pub use tidy::tidy;
