//! Node types for parsed HTML documents.

use webre_tree::Tree;

/// A single `name="value"` attribute. Names are lowercased by the lexer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribute {
    pub name: String,
    pub value: String,
}

/// One node of a parsed HTML document tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HtmlNode {
    /// Synthetic root of every document.
    Document,
    /// An element; the tag name is ASCII-lowercased.
    Element { name: String, attrs: Vec<Attribute> },
    /// A text run with entities already decoded.
    Text(String),
    /// `<!-- ... -->`
    Comment(String),
    /// `<!DOCTYPE ...>` content.
    Doctype(String),
}

impl HtmlNode {
    /// Creates an element node with no attributes.
    pub fn element(name: &str) -> Self {
        HtmlNode::Element {
            name: name.to_ascii_lowercase(),
            attrs: Vec::new(),
        }
    }

    /// Creates a text node.
    pub fn text(content: impl Into<String>) -> Self {
        HtmlNode::Text(content.into())
    }

    /// The element name, if this is an element.
    pub fn name(&self) -> Option<&str> {
        match self {
            HtmlNode::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Whether this node is an element named `name` (must be lowercase).
    pub fn is_element(&self, name: &str) -> bool {
        self.name() == Some(name)
    }

    /// The text content, if this is a text node.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            HtmlNode::Text(t) => Some(t),
            _ => None,
        }
    }

    /// Looks up an attribute value by (lowercase) name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        match self {
            HtmlNode::Element { attrs, .. } => attrs
                .iter()
                .find(|a| a.name == name)
                .map(|a| a.value.as_str()),
            _ => None,
        }
    }
}

/// A parsed HTML document: a [`Tree`] whose root is [`HtmlNode::Document`].
#[derive(Clone, Debug)]
pub struct HtmlDocument {
    pub tree: Tree<HtmlNode>,
}

impl HtmlDocument {
    /// Concatenated text of the whole document (no separators inserted).
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        for id in self.tree.descendants(self.tree.root()) {
            if let HtmlNode::Text(t) = self.tree.value(id) {
                out.push_str(t);
            }
        }
        out
    }

    /// Number of element nodes in the document.
    pub fn element_count(&self) -> usize {
        self.tree
            .descendants(self.tree.root())
            .filter(|id| matches!(self.tree.value(*id), HtmlNode::Element { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_constructor_lowercases() {
        let e = HtmlNode::element("DIV");
        assert_eq!(e.name(), Some("div"));
        assert!(e.is_element("div"));
        assert!(!e.is_element("span"));
    }

    #[test]
    fn attr_lookup() {
        let e = HtmlNode::Element {
            name: "a".into(),
            attrs: vec![Attribute {
                name: "href".into(),
                value: "/x".into(),
            }],
        };
        assert_eq!(e.attr("href"), Some("/x"));
        assert_eq!(e.attr("id"), None);
        assert_eq!(HtmlNode::text("t").attr("href"), None);
    }

    #[test]
    fn text_accessors() {
        let t = HtmlNode::text("hello");
        assert_eq!(t.as_text(), Some("hello"));
        assert_eq!(t.name(), None);
    }
}
