//! Property tests for the HTML substrate.

use proptest::prelude::*;
use webre_html::{entities, parse, to_html, tidy};

/// Random text without markup-significant characters.
fn plain_text() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 .,;:()]{0,24}"
}

/// Strategy producing random (well-formed-ish) HTML fragments.
fn html_fragment(depth: u32) -> BoxedStrategy<String> {
    let leaf = plain_text();
    if depth == 0 {
        return leaf.boxed();
    }
    let tag = prop_oneof![
        Just("p"),
        Just("div"),
        Just("b"),
        Just("i"),
        Just("span"),
        Just("h2"),
        Just("ul"),
        Just("li"),
        Just("em"),
    ];
    let inner = proptest::collection::vec(html_fragment(depth - 1), 0..3);
    (tag, inner)
        .prop_map(|(t, parts)| format!("<{t}>{}</{t}>", parts.concat()))
        .boxed()
}

proptest! {
    #[test]
    fn entity_decode_never_panics(s in ".{0,64}") {
        let _ = entities::decode(&s);
    }

    #[test]
    fn entity_escape_decode_round_trip(s in "[ -~]{0,64}") {
        prop_assert_eq!(entities::decode(&entities::escape_text(&s)), s.clone());
        prop_assert_eq!(entities::decode(&entities::escape_attr(&s)), s);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in ".{0,256}") {
        let doc = parse(&s);
        prop_assert!(doc.tree.check_integrity().is_ok());
    }

    #[test]
    fn parse_serialize_parse_is_stable(frag in html_fragment(3)) {
        let once = parse(&frag);
        let rendered = to_html(&once);
        let twice = parse(&rendered);
        prop_assert!(
            once.tree.subtree_eq(once.tree.root(), &twice.tree, twice.tree.root()),
            "unstable round trip for {frag:?} -> {rendered:?}"
        );
    }

    #[test]
    fn text_content_preserved_by_parsing(texts in proptest::collection::vec("[a-z]{1,8}", 1..5)) {
        let html: String = texts.iter().map(|t| format!("<p>{t}</p>")).collect();
        let doc = parse(&html);
        prop_assert_eq!(doc.text_content(), texts.concat());
    }

    #[test]
    fn tidy_preserves_integrity_and_non_ws_text(frag in html_fragment(3)) {
        let mut doc = parse(&frag);
        tidy(&mut doc);
        prop_assert!(doc.tree.check_integrity().is_ok());
        // Tidy must never invent text.
        let before: String = parse(&frag).text_content().split_whitespace().collect();
        let after: String = doc.text_content().split_whitespace().collect();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn tidy_is_idempotent(frag in html_fragment(3)) {
        let mut doc = parse(&frag);
        tidy(&mut doc);
        let once = doc.clone();
        tidy(&mut doc);
        prop_assert!(once.tree.subtree_eq(once.tree.root(), &doc.tree, doc.tree.root()));
    }
}
