//! Property tests for the HTML substrate.

use webre_substrate::prop::{self, Gen};
use webre_substrate::{prop_assert, prop_assert_eq};
use webre_html::{entities, parse, tidy, to_html};

/// Random text without markup-significant characters.
fn plain_text(g: &mut Gen) -> String {
    g.chars_in(
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,;:()",
        0,
        24,
    )
}

const TAGS: &[&str] = &["p", "div", "b", "i", "span", "h2", "ul", "li", "em"];

/// Generates a random (well-formed-ish) HTML fragment.
fn html_fragment(g: &mut Gen, depth: u32) -> String {
    if depth == 0 {
        return plain_text(g);
    }
    let tag = *g.pick(TAGS);
    let parts = g.vec(0, 2, |g| html_fragment(g, depth - 1));
    format!("<{tag}>{}</{tag}>", parts.concat())
}

#[test]
fn entity_decode_never_panics() {
    prop::check("entity_decode_never_panics", |g| {
        let s = g.arbitrary_text(0, 64);
        let _ = entities::decode(&s);
        Ok(())
    });
}

#[test]
fn entity_escape_decode_round_trip() {
    prop::check("entity_escape_decode_round_trip", |g| {
        let s = g.printable_ascii(0, 64);
        prop_assert_eq!(entities::decode(&entities::escape_text(&s)), s.clone());
        prop_assert_eq!(entities::decode(&entities::escape_attr(&s)), s);
        Ok(())
    });
}

#[test]
fn parser_never_panics_on_arbitrary_input() {
    prop::check("parser_never_panics_on_arbitrary_input", |g| {
        let s = g.arbitrary_text(0, 256);
        let doc = parse(&s);
        prop_assert!(doc.tree.check_integrity().is_ok());
        Ok(())
    });
}

#[test]
fn parse_serialize_parse_is_stable() {
    prop::check("parse_serialize_parse_is_stable", |g| {
        let frag = html_fragment(g, 3);
        let once = parse(&frag);
        let rendered = to_html(&once);
        let twice = parse(&rendered);
        prop_assert!(
            once.tree
                .subtree_eq(once.tree.root(), &twice.tree, twice.tree.root()),
            "unstable round trip for {frag:?} -> {rendered:?}"
        );
        Ok(())
    });
}

#[test]
fn text_content_preserved_by_parsing() {
    prop::check("text_content_preserved_by_parsing", |g| {
        let texts = g.vec(1, 4, |g| g.chars_in("abcdefghijklmnopqrstuvwxyz", 1, 8));
        let html: String = texts.iter().map(|t| format!("<p>{t}</p>")).collect();
        let doc = parse(&html);
        prop_assert_eq!(doc.text_content(), texts.concat());
        Ok(())
    });
}

#[test]
fn tidy_preserves_integrity_and_non_ws_text() {
    prop::check("tidy_preserves_integrity_and_non_ws_text", |g| {
        let frag = html_fragment(g, 3);
        let mut doc = parse(&frag);
        tidy(&mut doc);
        prop_assert!(doc.tree.check_integrity().is_ok());
        // Tidy must never invent text.
        let before: String = parse(&frag).text_content().split_whitespace().collect();
        let after: String = doc.text_content().split_whitespace().collect();
        prop_assert_eq!(before, after);
        Ok(())
    });
}

#[test]
fn tidy_is_idempotent() {
    prop::check("tidy_is_idempotent", |g| {
        let frag = html_fragment(g, 3);
        let mut doc = parse(&frag);
        tidy(&mut doc);
        let once = doc.clone();
        tidy(&mut doc);
        prop_assert!(once
            .tree
            .subtree_eq(once.tree.root(), &doc.tree, doc.tree.root()));
        Ok(())
    });
}
