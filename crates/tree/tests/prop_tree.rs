//! Property-based tests for the arena tree: random edit sequences must keep
//! the doubly-linked structure consistent and the traversals coherent.

use webre_substrate::prop::{self, Gen};
use webre_substrate::{prop_assert, prop_assert_eq};
use webre_tree::{Edge, NodeId, Tree};

/// A randomly generated structural edit, applied against the list of ids
/// allocated so far (indices are taken modulo the list length).
#[derive(Clone, Debug)]
enum Op {
    AppendChild(usize),
    PrependChild(usize),
    InsertAfter(usize),
    Detach(usize),
    ReplaceWithChildren(usize),
    Reattach(usize, usize),
}

fn gen_op(g: &mut Gen) -> Op {
    match g.int(0..6u32) {
        0 => Op::AppendChild(g.int(0usize..64)),
        1 => Op::PrependChild(g.int(0usize..64)),
        2 => Op::InsertAfter(g.int(0usize..64)),
        3 => Op::Detach(g.int(0usize..64)),
        4 => Op::ReplaceWithChildren(g.int(0usize..64)),
        _ => Op::Reattach(g.int(0usize..64), g.int(0usize..64)),
    }
}

fn gen_ops(g: &mut Gen, hi: usize) -> Vec<Op> {
    g.vec(1, hi, gen_op)
}

fn apply(tree: &mut Tree<u32>, ids: &mut Vec<NodeId>, op: &Op, counter: &mut u32) {
    let pick = |i: usize, ids: &[NodeId]| ids[i % ids.len()];
    match *op {
        Op::AppendChild(i) => {
            let target = pick(i, ids);
            if tree.is_attached(target) {
                *counter += 1;
                ids.push(tree.append_child(target, *counter));
            }
        }
        Op::PrependChild(i) => {
            let target = pick(i, ids);
            if tree.is_attached(target) {
                *counter += 1;
                ids.push(tree.prepend_child(target, *counter));
            }
        }
        Op::InsertAfter(i) => {
            let target = pick(i, ids);
            if tree.is_attached(target) && target != tree.root() {
                *counter += 1;
                let n = tree.orphan(*counter);
                tree.insert_after(target, n);
                ids.push(n);
            }
        }
        Op::Detach(i) => {
            let target = pick(i, ids);
            if target != tree.root() {
                tree.detach(target);
            }
        }
        Op::ReplaceWithChildren(i) => {
            let target = pick(i, ids);
            if target != tree.root() && tree.is_attached(target) {
                tree.replace_with_children(target);
            }
        }
        Op::Reattach(i, j) => {
            let node = pick(i, ids);
            let parent = pick(j, ids);
            if node != tree.root()
                && !tree.is_attached(node)
                && tree.is_attached(parent)
                && !tree.is_ancestor_of(node, parent)
                && node != parent
            {
                tree.append(parent, node);
            }
        }
    }
}

fn build(ops: &[Op]) -> Tree<u32> {
    let mut tree = Tree::new(0u32);
    let mut ids = vec![tree.root()];
    let mut counter = 0u32;
    for op in ops {
        apply(&mut tree, &mut ids, op, &mut counter);
    }
    tree
}

#[test]
fn random_edits_preserve_integrity() {
    prop::check("random_edits_preserve_integrity", |g| {
        let ops = gen_ops(g, 120);
        let mut tree = Tree::new(0u32);
        let mut ids = vec![tree.root()];
        let mut counter = 0u32;
        for op in &ops {
            apply(&mut tree, &mut ids, op, &mut counter);
            prop_assert!(
                tree.check_integrity().is_ok(),
                "integrity violated after {op:?}"
            );
        }
        Ok(())
    });
}

#[test]
fn traversal_counts_agree() {
    prop::check("traversal_counts_agree", |g| {
        let tree = build(&gen_ops(g, 120));
        let pre = tree.descendants(tree.root()).count();
        let post = tree.post_order(tree.root()).count();
        let opens = tree
            .traverse(tree.root())
            .filter(|e| matches!(e, Edge::Open(_)))
            .count();
        prop_assert_eq!(pre, post);
        prop_assert_eq!(pre, opens);
        prop_assert_eq!(pre, tree.subtree_size(tree.root()));
        Ok(())
    });
}

#[test]
fn every_attached_node_reaches_root() {
    prop::check("every_attached_node_reaches_root", |g| {
        let tree = build(&gen_ops(g, 120));
        for id in tree.descendants(tree.root()).collect::<Vec<_>>() {
            if id != tree.root() {
                prop_assert!(tree.ancestors(id).last() == Some(tree.root()));
                prop_assert_eq!(tree.depth(id), tree.ancestors(id).count());
            }
        }
        Ok(())
    });
}

#[test]
fn extract_subtree_round_trips() {
    prop::check("extract_subtree_round_trips", |g| {
        let tree = build(&gen_ops(g, 80));
        let copy = tree.extract_subtree(tree.root());
        prop_assert!(tree.subtree_eq(tree.root(), &copy, copy.root()));
        prop_assert_eq!(
            tree.subtree_size(tree.root()),
            copy.subtree_size(copy.root())
        );
        Ok(())
    });
}

#[test]
fn sibling_index_matches_position() {
    prop::check("sibling_index_matches_position", |g| {
        let tree = build(&gen_ops(g, 80));
        for parent in tree.descendants(tree.root()).collect::<Vec<_>>() {
            for (i, child) in tree.children(parent).enumerate() {
                prop_assert_eq!(tree.sibling_index(child), i);
            }
        }
        Ok(())
    });
}
