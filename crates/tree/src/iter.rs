//! Traversal iterators over [`Tree`].
//!
//! All iterators borrow the tree immutably and allocate at most O(1); the
//! restructuring passes instead collect ids up front when they need to
//! mutate while walking.

use crate::{NodeId, Tree};

/// Iterator over the direct children of a node, in document order.
pub struct Children<'a, T> {
    tree: &'a Tree<T>,
    next: Option<NodeId>,
}

impl<T> Iterator for Children<'_, T> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.tree.next_sibling(id);
        Some(id)
    }
}

/// Iterator over the following siblings of a node (exclusive of the node).
pub struct Siblings<'a, T> {
    tree: &'a Tree<T>,
    next: Option<NodeId>,
}

impl<T> Iterator for Siblings<'_, T> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.tree.next_sibling(id);
        Some(id)
    }
}

/// Iterator over the strict ancestors of a node, closest first.
pub struct Ancestors<'a, T> {
    tree: &'a Tree<T>,
    next: Option<NodeId>,
}

impl<T> Iterator for Ancestors<'_, T> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.tree.parent(id);
        Some(id)
    }
}

/// One side of a node visit during a depth-first walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Edge {
    /// The walk enters the node (before its children).
    Open(NodeId),
    /// The walk leaves the node (after its children).
    Close(NodeId),
}

/// Depth-first walk yielding [`Edge::Open`]/[`Edge::Close`] pairs.
pub struct Traverse<'a, T> {
    tree: &'a Tree<T>,
    scope: NodeId,
    next: Option<Edge>,
}

impl<T> Iterator for Traverse<'_, T> {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        let current = self.next?;
        self.next = match current {
            Edge::Open(id) => match self.tree.first_child(id) {
                Some(child) => Some(Edge::Open(child)),
                None => Some(Edge::Close(id)),
            },
            Edge::Close(id) => {
                if id == self.scope {
                    None
                } else if let Some(sib) = self.tree.next_sibling(id) {
                    Some(Edge::Open(sib))
                } else {
                    // Within the scope every non-scope node has a parent.
                    Some(Edge::Close(self.tree.parent(id).expect("in scope")))
                }
            }
        };
        Some(current)
    }
}

/// Pre-order (document order) iterator over a subtree, including its root.
pub struct Descendants<'a, T>(Traverse<'a, T>);

impl<T> Iterator for Descendants<'_, T> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            match self.0.next()? {
                Edge::Open(id) => return Some(id),
                Edge::Close(_) => continue,
            }
        }
    }
}

/// Post-order iterator over a subtree, including its root (yielded last).
pub struct PostOrder<'a, T>(Traverse<'a, T>);

impl<T> Iterator for PostOrder<'_, T> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            match self.0.next()? {
                Edge::Close(id) => return Some(id),
                Edge::Open(_) => continue,
            }
        }
    }
}

impl<T> Tree<T> {
    /// Iterates over the direct children of `id` in order.
    pub fn children(&self, id: NodeId) -> Children<'_, T> {
        Children {
            tree: self,
            next: self.first_child(id),
        }
    }

    /// Collects the children of `id` into a vector (handy before mutation).
    pub fn children_vec(&self, id: NodeId) -> Vec<NodeId> {
        self.children(id).collect()
    }

    /// Iterates over the siblings after `id` (exclusive).
    pub fn following_siblings(&self, id: NodeId) -> Siblings<'_, T> {
        Siblings {
            tree: self,
            next: self.next_sibling(id),
        }
    }

    /// Iterates over the strict ancestors of `id`, closest first.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_, T> {
        Ancestors {
            tree: self,
            next: self.parent(id),
        }
    }

    /// Depth-first walk over the subtree at `id` with open/close edges.
    pub fn traverse(&self, id: NodeId) -> Traverse<'_, T> {
        Traverse {
            tree: self,
            scope: id,
            next: Some(Edge::Open(id)),
        }
    }

    /// Pre-order iterator over the subtree rooted at `id` (inclusive).
    pub fn descendants(&self, id: NodeId) -> Descendants<'_, T> {
        Descendants(self.traverse(id))
    }

    /// Post-order iterator over the subtree rooted at `id` (inclusive).
    pub fn post_order(&self, id: NodeId) -> PostOrder<'_, T> {
        PostOrder(self.traverse(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// root -> (a -> (c, d), b -> (e))
    fn sample() -> (Tree<&'static str>, [NodeId; 6]) {
        let mut t = Tree::new("root");
        let root = t.root();
        let a = t.append_child(root, "a");
        let b = t.append_child(root, "b");
        let c = t.append_child(a, "c");
        let d = t.append_child(a, "d");
        let e = t.append_child(b, "e");
        (t, [root, a, b, c, d, e])
    }

    fn labels(t: &Tree<&'static str>, ids: impl Iterator<Item = NodeId>) -> Vec<&'static str> {
        ids.map(|n| *t.value(n)).collect()
    }

    #[test]
    fn children_in_order() {
        let (t, [root, ..]) = sample();
        assert_eq!(labels(&t, t.children(root)), ["a", "b"]);
    }

    #[test]
    fn children_of_leaf_empty() {
        let (t, [.., e]) = sample();
        assert_eq!(t.children(e).count(), 0);
    }

    #[test]
    fn descendants_pre_order() {
        let (t, [root, ..]) = sample();
        assert_eq!(
            labels(&t, t.descendants(root)),
            ["root", "a", "c", "d", "b", "e"]
        );
    }

    #[test]
    fn descendants_of_subtree() {
        let (t, [_, a, ..]) = sample();
        assert_eq!(labels(&t, t.descendants(a)), ["a", "c", "d"]);
    }

    #[test]
    fn post_order_children_before_parents() {
        let (t, [root, ..]) = sample();
        assert_eq!(
            labels(&t, t.post_order(root)),
            ["c", "d", "a", "e", "b", "root"]
        );
    }

    #[test]
    fn ancestors_closest_first() {
        let (t, [_, _, _, c, ..]) = sample();
        assert_eq!(labels(&t, t.ancestors(c)), ["a", "root"]);
    }

    #[test]
    fn following_siblings_exclusive() {
        let (t, [_, a, ..]) = sample();
        assert_eq!(labels(&t, t.following_siblings(a)), ["b"]);
        let (t2, [_, _, b2, ..]) = sample();
        assert_eq!(t2.following_siblings(b2).count(), 0);
    }

    #[test]
    fn traverse_opens_and_closes_balanced() {
        let (t, [root, ..]) = sample();
        let mut depth = 0usize;
        let mut max_depth = 0usize;
        for edge in t.traverse(root) {
            match edge {
                Edge::Open(_) => {
                    depth += 1;
                    max_depth = max_depth.max(depth);
                }
                Edge::Close(_) => depth -= 1,
            }
        }
        assert_eq!(depth, 0);
        assert_eq!(max_depth, 3);
    }

    #[test]
    fn traverse_single_node() {
        let t = Tree::new("x");
        let edges: Vec<_> = t.traverse(t.root()).collect();
        assert_eq!(edges, [Edge::Open(t.root()), Edge::Close(t.root())]);
    }
}
