//! The arena itself: node storage, links, and structural mutation.

use std::fmt;
use std::num::NonZeroU32;

/// Handle to a node inside a [`Tree`].
///
/// `NodeId`s are small copyable indices; they stay valid for the lifetime of
/// the tree (nodes are never deallocated, only detached) but must not be used
/// with a different tree than the one that created them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(NonZeroU32);

impl NodeId {
    fn new(index: usize) -> Self {
        let raw = u32::try_from(index + 1).expect("tree arena exceeds u32 capacity");
        // Safety by construction: index + 1 >= 1.
        NodeId(NonZeroU32::new(raw).unwrap())
    }

    pub(crate) fn index(self) -> usize {
        self.0.get() as usize - 1
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.index())
    }
}

#[derive(Clone, Debug)]
pub(crate) struct NodeData<T> {
    pub(crate) parent: Option<NodeId>,
    pub(crate) prev_sibling: Option<NodeId>,
    pub(crate) next_sibling: Option<NodeId>,
    pub(crate) first_child: Option<NodeId>,
    pub(crate) last_child: Option<NodeId>,
    pub(crate) value: T,
}

impl<T> NodeData<T> {
    fn new(value: T) -> Self {
        NodeData {
            parent: None,
            prev_sibling: None,
            next_sibling: None,
            first_child: None,
            last_child: None,
            value,
        }
    }
}

/// An ordered tree of `T` values stored in an arena.
///
/// Every tree always has a root node (created by [`Tree::new`]); the root can
/// never be detached. All structural operations are O(1) except the ones that
/// are inherently proportional to the amount of structure they move or visit.
#[derive(Clone, Debug)]
pub struct Tree<T> {
    pub(crate) nodes: Vec<NodeData<T>>,
    pub(crate) root: NodeId,
}

impl<T> Tree<T> {
    /// Creates a tree containing only a root node holding `value`.
    pub fn new(value: T) -> Self {
        Tree {
            nodes: vec![NodeData::new(value)],
            root: NodeId::new(0),
        }
    }

    /// Creates a tree with capacity for `capacity` nodes pre-allocated.
    pub fn with_capacity(value: T, capacity: usize) -> Self {
        let mut nodes = Vec::with_capacity(capacity.max(1));
        nodes.push(NodeData::new(value));
        Tree {
            nodes,
            root: NodeId::new(0),
        }
    }

    /// The root node. Never detachable.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of node records in the arena, including detached ones.
    ///
    /// Use [`Tree::subtree_size`] of [`Tree::root`] for the number of nodes
    /// currently attached to the tree.
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    pub(crate) fn node(&self, id: NodeId) -> &NodeData<T> {
        &self.nodes[id.index()]
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut NodeData<T> {
        &mut self.nodes[id.index()]
    }

    /// Shared access to a node's value.
    pub fn value(&self, id: NodeId) -> &T {
        &self.node(id).value
    }

    /// Mutable access to a node's value.
    pub fn value_mut(&mut self, id: NodeId) -> &mut T {
        &mut self.node_mut(id).value
    }

    /// Replaces a node's value, returning the previous one.
    pub fn replace_value(&mut self, id: NodeId, value: T) -> T {
        std::mem::replace(&mut self.node_mut(id).value, value)
    }

    /// The parent of `id`, or `None` for the root and detached nodes.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// First child, if any.
    pub fn first_child(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).first_child
    }

    /// Last child, if any.
    pub fn last_child(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).last_child
    }

    /// Previous sibling, if any.
    pub fn prev_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).prev_sibling
    }

    /// Next sibling, if any.
    pub fn next_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).next_sibling
    }

    /// Whether `id` has no children.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.node(id).first_child.is_none()
    }

    /// Whether `id` is currently attached to the tree (the root always is).
    pub fn is_attached(&self, id: NodeId) -> bool {
        id == self.root || self.node(id).parent.is_some()
    }

    /// Number of children of `id`.
    pub fn child_count(&self, id: NodeId) -> usize {
        self.children(id).count()
    }

    /// Allocates a new detached node holding `value`.
    pub fn orphan(&mut self, value: T) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(NodeData::new(value));
        id
    }

    /// Appends a new node holding `value` as the last child of `parent`.
    pub fn append_child(&mut self, parent: NodeId, value: T) -> NodeId {
        let child = self.orphan(value);
        self.append(parent, child);
        child
    }

    /// Prepends a new node holding `value` as the first child of `parent`.
    pub fn prepend_child(&mut self, parent: NodeId, value: T) -> NodeId {
        let child = self.orphan(value);
        self.prepend(parent, child);
        child
    }

    /// Attaches the detached node `child` as the last child of `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `child` is still attached, equals `parent`, or is an
    /// ancestor of `parent` (which would create a cycle).
    pub fn append(&mut self, parent: NodeId, child: NodeId) {
        self.assert_attachable(parent, child);
        let prev = self.node(parent).last_child;
        self.node_mut(child).parent = Some(parent);
        self.node_mut(child).prev_sibling = prev;
        match prev {
            Some(prev) => self.node_mut(prev).next_sibling = Some(child),
            None => self.node_mut(parent).first_child = Some(child),
        }
        self.node_mut(parent).last_child = Some(child);
    }

    /// Attaches the detached node `child` as the first child of `parent`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Tree::append`].
    pub fn prepend(&mut self, parent: NodeId, child: NodeId) {
        self.assert_attachable(parent, child);
        let next = self.node(parent).first_child;
        self.node_mut(child).parent = Some(parent);
        self.node_mut(child).next_sibling = next;
        match next {
            Some(next) => self.node_mut(next).prev_sibling = Some(child),
            None => self.node_mut(parent).last_child = Some(child),
        }
        self.node_mut(parent).first_child = Some(child);
    }

    /// Attaches the detached node `node` immediately before `sibling`.
    ///
    /// # Panics
    ///
    /// Panics if `sibling` is detached or the root, or if `node` is attached
    /// or an ancestor of `sibling`.
    pub fn insert_before(&mut self, sibling: NodeId, node: NodeId) {
        let parent = self
            .node(sibling)
            .parent
            .expect("insert_before target must be attached and not the root");
        self.assert_attachable(parent, node);
        let prev = self.node(sibling).prev_sibling;
        self.node_mut(node).parent = Some(parent);
        self.node_mut(node).prev_sibling = prev;
        self.node_mut(node).next_sibling = Some(sibling);
        self.node_mut(sibling).prev_sibling = Some(node);
        match prev {
            Some(prev) => self.node_mut(prev).next_sibling = Some(node),
            None => self.node_mut(parent).first_child = Some(node),
        }
    }

    /// Attaches the detached node `node` immediately after `sibling`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Tree::insert_before`].
    pub fn insert_after(&mut self, sibling: NodeId, node: NodeId) {
        let parent = self
            .node(sibling)
            .parent
            .expect("insert_after target must be attached and not the root");
        self.assert_attachable(parent, node);
        let next = self.node(sibling).next_sibling;
        self.node_mut(node).parent = Some(parent);
        self.node_mut(node).prev_sibling = Some(sibling);
        self.node_mut(node).next_sibling = next;
        self.node_mut(sibling).next_sibling = Some(node);
        match next {
            Some(next) => self.node_mut(next).prev_sibling = Some(node),
            None => self.node_mut(parent).last_child = Some(node),
        }
    }

    /// Detaches `id` (with its whole subtree) from its parent.
    ///
    /// The subtree stays intact and can be re-attached later. Detaching an
    /// already-detached node is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `id` is the root.
    pub fn detach(&mut self, id: NodeId) {
        assert!(id != self.root, "the root node cannot be detached");
        let (parent, prev, next) = {
            let n = self.node(id);
            (n.parent, n.prev_sibling, n.next_sibling)
        };
        let Some(parent) = parent else { return };
        match prev {
            Some(prev) => self.node_mut(prev).next_sibling = next,
            None => self.node_mut(parent).first_child = next,
        }
        match next {
            Some(next) => self.node_mut(next).prev_sibling = prev,
            None => self.node_mut(parent).last_child = prev,
        }
        let n = self.node_mut(id);
        n.parent = None;
        n.prev_sibling = None;
        n.next_sibling = None;
    }

    fn assert_attachable(&self, parent: NodeId, child: NodeId) {
        assert!(
            self.node(child).parent.is_none() && child != self.root,
            "node to attach must be detached"
        );
        assert!(parent != child, "a node cannot be its own parent");
        debug_assert!(
            !self.is_ancestor_of(child, parent),
            "attaching a node under its own descendant would create a cycle"
        );
    }

    /// Whether `ancestor` lies on the parent chain of `node` (strictly).
    pub fn is_ancestor_of(&self, ancestor: NodeId, node: NodeId) -> bool {
        let mut cur = self.node(node).parent;
        while let Some(id) = cur {
            if id == ancestor {
                return true;
            }
            cur = self.node(id).parent;
        }
        false
    }

    /// Depth of `id`: the root has depth 0.
    pub fn depth(&self, id: NodeId) -> usize {
        self.ancestors(id).count()
    }

    /// 0-based position of `id` among its siblings.
    pub fn sibling_index(&self, id: NodeId) -> usize {
        let mut idx = 0;
        let mut cur = self.node(id).prev_sibling;
        while let Some(prev) = cur {
            idx += 1;
            cur = self.node(prev).prev_sibling;
        }
        idx
    }

    /// Number of nodes in the subtree rooted at `id` (including `id`).
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.descendants(id).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Tree<&'static str>, NodeId, NodeId, NodeId, NodeId) {
        let mut t = Tree::new("root");
        let a = t.append_child(t.root(), "a");
        let b = t.append_child(t.root(), "b");
        let c = t.append_child(a, "c");
        let root = t.root();
        (t, root, a, b, c)
    }

    #[test]
    fn new_tree_has_only_root() {
        let t = Tree::new(1);
        assert_eq!(t.arena_len(), 1);
        assert_eq!(*t.value(t.root()), 1);
        assert!(t.is_leaf(t.root()));
        assert!(t.is_attached(t.root()));
        assert_eq!(t.parent(t.root()), None);
    }

    #[test]
    fn append_and_links() {
        let (t, root, a, b, c) = sample();
        assert_eq!(t.first_child(root), Some(a));
        assert_eq!(t.last_child(root), Some(b));
        assert_eq!(t.next_sibling(a), Some(b));
        assert_eq!(t.prev_sibling(b), Some(a));
        assert_eq!(t.parent(c), Some(a));
        assert_eq!(t.depth(c), 2);
        assert_eq!(t.sibling_index(b), 1);
    }

    #[test]
    fn prepend_child_goes_first() {
        let (mut t, root, a, ..) = sample();
        let z = t.prepend_child(root, "z");
        assert_eq!(t.first_child(root), Some(z));
        assert_eq!(t.next_sibling(z), Some(a));
        assert_eq!(t.prev_sibling(a), Some(z));
    }

    #[test]
    fn insert_before_and_after() {
        let (mut t, root, a, b, _) = sample();
        let x = t.orphan("x");
        t.insert_before(b, x);
        let y = t.orphan("y");
        t.insert_after(a, y);
        let order: Vec<_> = t.children(root).map(|n| *t.value(n)).collect();
        assert_eq!(order, ["a", "y", "x", "b"]);
    }

    #[test]
    fn detach_middle_child_relinks_siblings() {
        let (mut t, root, a, b, _) = sample();
        let x = t.orphan("x");
        t.insert_after(a, x);
        t.detach(x);
        assert!(!t.is_attached(x));
        let order: Vec<_> = t.children(root).map(|n| *t.value(n)).collect();
        assert_eq!(order, ["a", "b"]);
        assert_eq!(t.next_sibling(a), Some(b));
        assert_eq!(t.prev_sibling(b), Some(a));
    }

    #[test]
    fn detach_first_and_last_update_parent_links() {
        let (mut t, root, a, b, _) = sample();
        t.detach(a);
        assert_eq!(t.first_child(root), Some(b));
        t.detach(b);
        assert_eq!(t.first_child(root), None);
        assert_eq!(t.last_child(root), None);
        assert!(t.is_leaf(root));
    }

    #[test]
    fn detach_is_idempotent() {
        let (mut t, _, a, ..) = sample();
        t.detach(a);
        t.detach(a);
        assert!(!t.is_attached(a));
    }

    #[test]
    fn reattach_detached_subtree() {
        let (mut t, _, a, b, c) = sample();
        t.detach(a);
        t.append(b, a);
        assert_eq!(t.parent(a), Some(b));
        assert_eq!(t.parent(c), Some(a), "subtree stays intact across moves");
        assert_eq!(t.depth(c), 3);
    }

    #[test]
    #[should_panic(expected = "root node cannot be detached")]
    fn detach_root_panics() {
        let (mut t, root, ..) = sample();
        t.detach(root);
    }

    #[test]
    #[should_panic(expected = "must be detached")]
    fn append_attached_panics() {
        let (mut t, _, a, b, _) = sample();
        t.append(b, a);
    }

    #[test]
    fn is_ancestor_of() {
        let (t, root, a, b, c) = sample();
        assert!(t.is_ancestor_of(root, c));
        assert!(t.is_ancestor_of(a, c));
        assert!(!t.is_ancestor_of(b, c));
        assert!(!t.is_ancestor_of(c, c), "ancestry is strict");
    }

    #[test]
    fn replace_value_returns_old() {
        let (mut t, _, a, ..) = sample();
        let old = t.replace_value(a, "new");
        assert_eq!(old, "a");
        assert_eq!(*t.value(a), "new");
    }

    #[test]
    fn subtree_size_counts_self() {
        let (t, root, a, b, _) = sample();
        assert_eq!(t.subtree_size(root), 4);
        assert_eq!(t.subtree_size(a), 2);
        assert_eq!(t.subtree_size(b), 1);
    }
}
