//! Higher-level restructuring operations built on the O(1) link edits.
//!
//! These are the primitives the paper's grouping and consolidation rules are
//! expressed in: wrapping sibling runs under new nodes, replacing a node by
//! its children ("push up"), replacing a node by one designated child, and
//! copying subtrees between trees.

use crate::{Edge, NodeId, Tree};

impl<T> Tree<T> {
    /// Replaces `node` by its own children: the children are spliced into
    /// `node`'s position among its siblings (preserving their order) and
    /// `node` is detached.
    ///
    /// This is the consolidation rule's "push up" step.
    ///
    /// # Panics
    ///
    /// Panics if `node` is the root or detached.
    pub fn replace_with_children(&mut self, node: NodeId) {
        assert!(
            self.parent(node).is_some(),
            "replace_with_children requires an attached non-root node"
        );
        let children = self.children_vec(node);
        let mut anchor = node;
        for child in children {
            self.detach(child);
            self.insert_after(anchor, child);
            anchor = child;
        }
        self.detach(node);
    }

    /// Replaces `node` by the subtree rooted at `replacement`, detaching
    /// `node` (with the rest of its children).
    ///
    /// `replacement` may be a descendant of `node`; it is detached first.
    ///
    /// # Panics
    ///
    /// Panics if `node` is the root or detached.
    pub fn replace_with(&mut self, node: NodeId, replacement: NodeId) {
        assert!(
            self.parent(node).is_some(),
            "replace_with requires an attached non-root node"
        );
        self.detach(replacement);
        self.insert_after(node, replacement);
        self.detach(node);
    }

    /// Moves the children of `from` to the end of `to`'s child list,
    /// preserving their order. `from` keeps its own position in the tree.
    pub fn reparent_children(&mut self, from: NodeId, to: NodeId) {
        assert!(from != to, "cannot reparent children onto the same node");
        for child in self.children_vec(from) {
            self.detach(child);
            self.append(to, child);
        }
    }

    /// Wraps the contiguous sibling run starting at `first` and spanning
    /// `count` nodes under a fresh node holding `value`. The new node takes
    /// the run's position. Returns the new wrapper node.
    ///
    /// # Panics
    ///
    /// Panics if the run is empty, leaves the sibling list early, or `first`
    /// is detached/root.
    pub fn wrap_run(&mut self, first: NodeId, count: usize, value: T) -> NodeId {
        assert!(count > 0, "wrap_run needs a non-empty run");
        assert!(
            self.parent(first).is_some(),
            "wrap_run requires an attached non-root node"
        );
        let mut run = Vec::with_capacity(count);
        let mut cur = Some(first);
        for _ in 0..count {
            let id = cur.expect("sibling run shorter than requested count");
            run.push(id);
            cur = self.next_sibling(id);
        }
        let wrapper = self.orphan(value);
        self.insert_before(first, wrapper);
        for id in run {
            self.detach(id);
            self.append(wrapper, id);
        }
        wrapper
    }

    /// Deep-copies the subtree rooted at `src` in `source` into `self`,
    /// appending it under `parent`. Returns the id of the copied root.
    pub fn copy_subtree_from(&mut self, source: &Tree<T>, src: NodeId, parent: NodeId) -> NodeId
    where
        T: Clone,
    {
        let mut stack = vec![parent];
        let mut copied_root = None;
        for edge in source.traverse(src) {
            match edge {
                Edge::Open(id) => {
                    let here = self.append_child(*stack.last().expect("stack"), source.value(id).clone());
                    if copied_root.is_none() {
                        copied_root = Some(here);
                    }
                    stack.push(here);
                }
                Edge::Close(_) => {
                    stack.pop();
                }
            }
        }
        copied_root.expect("traverse yields at least the subtree root")
    }

    /// Builds a new tree whose root is a clone of the subtree at `src`.
    pub fn extract_subtree(&self, src: NodeId) -> Tree<T>
    where
        T: Clone,
    {
        let mut out = Tree::with_capacity(self.value(src).clone(), self.subtree_size(src));
        let root = out.root();
        for child in self.children(src) {
            out.copy_subtree_from(self, child, root);
        }
        out
    }

    /// Maps every value in the tree, preserving structure and arena layout
    /// (so `NodeId`s remain valid across the mapping).
    pub fn map<U>(&self, mut f: impl FnMut(&T) -> U) -> Tree<U> {
        let nodes = self
            .nodes
            .iter()
            .map(|n| crate::arena::NodeData {
                parent: n.parent,
                prev_sibling: n.prev_sibling,
                next_sibling: n.next_sibling,
                first_child: n.first_child,
                last_child: n.last_child,
                value: f(&n.value),
            })
            .collect();
        Tree {
            nodes,
            root: self.root(),
        }
    }

    /// Structural equality of two subtrees: same shape and equal values.
    pub fn subtree_eq(&self, a: NodeId, other: &Tree<T>, b: NodeId) -> bool
    where
        T: PartialEq,
    {
        if self.value(a) != other.value(b) {
            return false;
        }
        let mut ca = self.first_child(a);
        let mut cb = other.first_child(b);
        loop {
            match (ca, cb) {
                (None, None) => return true,
                (Some(x), Some(y)) => {
                    if !self.subtree_eq(x, other, y) {
                        return false;
                    }
                    ca = self.next_sibling(x);
                    cb = other.next_sibling(y);
                }
                _ => return false,
            }
        }
    }

    /// Validates the arena's doubly-linked invariants for the attached tree.
    ///
    /// Used by tests and debug assertions; returns a description of the
    /// first violation found, if any.
    pub fn check_integrity(&self) -> Result<(), String> {
        for id in self.descendants(self.root()).collect::<Vec<_>>() {
            let mut prev = None;
            for child in self.children(id) {
                if self.parent(child) != Some(id) {
                    return Err(format!("{child:?} has wrong parent link"));
                }
                if self.prev_sibling(child) != prev {
                    return Err(format!("{child:?} has wrong prev_sibling link"));
                }
                prev = Some(child);
            }
            if self.last_child(id) != prev {
                return Err(format!("{id:?} has wrong last_child link"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(t: &Tree<&'static str>, id: NodeId) -> Vec<&'static str> {
        t.descendants(id).map(|n| *t.value(n)).collect()
    }

    #[test]
    fn replace_with_children_splices_in_place() {
        let mut t = Tree::new("root");
        let root = t.root();
        t.append_child(root, "x");
        let mid = t.append_child(root, "mid");
        t.append_child(root, "y");
        t.append_child(mid, "a");
        t.append_child(mid, "b");
        t.replace_with_children(mid);
        assert_eq!(labels(&t, root), ["root", "x", "a", "b", "y"]);
        assert!(!t.is_attached(mid));
        t.check_integrity().unwrap();
    }

    #[test]
    fn replace_with_children_of_leaf_just_removes() {
        let mut t = Tree::new("root");
        let leaf = t.append_child(t.root(), "leaf");
        t.replace_with_children(leaf);
        assert!(t.is_leaf(t.root()));
        t.check_integrity().unwrap();
    }

    #[test]
    fn replace_with_descendant_child() {
        // The consolidation rule replaces an HTML node by its first concept
        // child — the replacement is a child of the node being replaced.
        let mut t = Tree::new("root");
        let h2 = t.append_child(t.root(), "h2");
        let edu = t.append_child(h2, "education");
        t.append_child(h2, "noise");
        t.replace_with(h2, edu);
        assert_eq!(labels(&t, t.root()), ["root", "education"]);
        assert!(!t.is_attached(h2));
        t.check_integrity().unwrap();
    }

    #[test]
    fn wrap_run_wraps_exact_span() {
        let mut t = Tree::new("root");
        let root = t.root();
        let a = t.append_child(root, "a");
        t.append_child(root, "b");
        t.append_child(root, "c");
        t.append_child(root, "d");
        let b = t.next_sibling(a).unwrap();
        let g = t.wrap_run(b, 2, "GROUP");
        assert_eq!(labels(&t, root), ["root", "a", "GROUP", "b", "c", "d"]);
        assert_eq!(t.parent(g), Some(root));
        t.check_integrity().unwrap();
    }

    #[test]
    fn wrap_run_whole_child_list() {
        let mut t = Tree::new("root");
        let a = t.append_child(t.root(), "a");
        t.append_child(t.root(), "b");
        t.wrap_run(a, 2, "G");
        assert_eq!(labels(&t, t.root()), ["root", "G", "a", "b"]);
        t.check_integrity().unwrap();
    }

    #[test]
    #[should_panic(expected = "shorter than requested")]
    fn wrap_run_too_long_panics() {
        let mut t = Tree::new("root");
        let a = t.append_child(t.root(), "a");
        t.wrap_run(a, 3, "G");
    }

    #[test]
    fn reparent_children_moves_all_in_order() {
        let mut t = Tree::new("root");
        let from = t.append_child(t.root(), "from");
        let to = t.append_child(t.root(), "to");
        t.append_child(from, "a");
        t.append_child(from, "b");
        t.append_child(to, "z");
        t.reparent_children(from, to);
        assert!(t.is_leaf(from));
        let kids: Vec<_> = t.children(to).map(|n| *t.value(n)).collect();
        assert_eq!(kids, ["z", "a", "b"]);
        t.check_integrity().unwrap();
    }

    #[test]
    fn copy_subtree_between_trees() {
        let mut src = Tree::new("s");
        let a = src.append_child(src.root(), "a");
        src.append_child(a, "b");
        let mut dst = Tree::new("d");
        let root = dst.root();
        let copied = dst.copy_subtree_from(&src, a, root);
        assert_eq!(labels(&dst, root), ["d", "a", "b"]);
        assert_eq!(*dst.value(copied), "a");
        dst.check_integrity().unwrap();
    }

    #[test]
    fn extract_subtree_clones_shape() {
        let mut t = Tree::new("root");
        let a = t.append_child(t.root(), "a");
        t.append_child(a, "b");
        t.append_child(a, "c");
        let sub = t.extract_subtree(a);
        assert_eq!(labels(&sub, sub.root()), ["a", "b", "c"]);
        assert!(t.subtree_eq(a, &sub, sub.root()));
    }

    #[test]
    fn map_preserves_ids() {
        let mut t = Tree::new(1);
        let a = t.append_child(t.root(), 2);
        let mapped = t.map(|v| v * 10);
        assert_eq!(*mapped.value(a), 20);
        assert_eq!(mapped.parent(a), Some(t.root()));
    }

    #[test]
    fn subtree_eq_detects_value_and_shape_differences() {
        let mut a = Tree::new("r");
        a.append_child(a.root(), "x");
        let mut b = Tree::new("r");
        b.append_child(b.root(), "x");
        assert!(a.subtree_eq(a.root(), &b, b.root()));
        b.append_child(b.root(), "y");
        assert!(!a.subtree_eq(a.root(), &b, b.root()));
        let mut c = Tree::new("r");
        c.append_child(c.root(), "z");
        assert!(!a.subtree_eq(a.root(), &c, c.root()));
    }
}
