//! Debug rendering of trees as indented ASCII, used in error messages,
//! examples and the experiment harnesses.

use crate::{Edge, NodeId, Tree};

/// Renders the subtree at `root` with two-space indentation, formatting each
/// node through `fmt`.
///
/// ```
/// use webre_tree::{render_with, Tree};
/// let mut t = Tree::new("a");
/// t.append_child(t.root(), "b");
/// assert_eq!(render_with(&t, t.root(), |v| v.to_string()), "a\n  b\n");
/// ```
pub fn render_with<T>(tree: &Tree<T>, root: NodeId, mut fmt: impl FnMut(&T) -> String) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    for edge in tree.traverse(root) {
        match edge {
            Edge::Open(id) => {
                for _ in 0..depth {
                    out.push_str("  ");
                }
                out.push_str(&fmt(tree.value(id)));
                out.push('\n');
                depth += 1;
            }
            Edge::Close(_) => depth -= 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let mut t = Tree::new("root");
        let a = t.append_child(t.root(), "a");
        t.append_child(a, "b");
        t.append_child(t.root(), "c");
        let s = render_with(&t, t.root(), |v| v.to_string());
        assert_eq!(s, "root\n  a\n    b\n  c\n");
    }

    #[test]
    fn renders_subtree_only() {
        let mut t = Tree::new("root");
        let a = t.append_child(t.root(), "a");
        t.append_child(a, "b");
        let s = render_with(&t, a, |v| v.to_string());
        assert_eq!(s, "a\n  b\n");
    }
}
