//! Generic ordered arena tree shared by every crate in the `webre` workspace.
//!
//! HTML documents, XML documents, majority-schema tries and ground-truth
//! trees are all ordered trees; this crate provides the single tree
//! implementation they build on.
//!
//! # Design
//!
//! Nodes live in a [`Tree`] arena (a `Vec` of node records) and are addressed
//! by copyable [`NodeId`] handles, the standard idiom for trees in Rust that
//! avoids `Rc<RefCell<..>>` cycles. Detaching a node removes it from its
//! parent's child list but keeps the record in the arena; detached subtrees
//! can be re-attached anywhere in the same tree. First/last-child plus
//! prev/next-sibling links give O(1) structural edits and allocation-free
//! sibling iteration — the restructuring rules of the paper (grouping,
//! consolidation) are sequences of exactly such edits.
//!
//! # Example
//!
//! ```
//! use webre_tree::Tree;
//!
//! let mut tree = Tree::new("resume");
//! let root = tree.root();
//! let edu = tree.append_child(root, "education");
//! tree.append_child(edu, "degree");
//! tree.append_child(edu, "institution");
//!
//! let labels: Vec<_> = tree.descendants(root).map(|n| *tree.value(n)).collect();
//! assert_eq!(labels, ["resume", "education", "degree", "institution"]);
//! ```

mod arena;
mod iter;
mod ops;
mod render;

pub use arena::{NodeId, Tree};
pub use iter::{Ancestors, Children, Descendants, Edge, PostOrder, Siblings, Traverse};
pub use render::render_with;
