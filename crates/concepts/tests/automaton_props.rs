//! Property tests for the Aho–Corasick concept matcher: randomized
//! catalogues with deliberately overlapping / prefix / suffix instances,
//! unicode and empty-token edges, and the metamorphic invariant that a
//! concept which never matches cannot change existing matches.
//!
//! The differential half (automaton vs naive scanner on fuzzed streams
//! and golden fixtures) lives in `webre-check`'s `matcher-vs-naive`
//! oracle; these tests probe the automaton's own guarantees.

use webre_concepts::{find_matches, Concept, ConceptMatcher, ConceptRole, ConceptSet};
use webre_substrate::prop::{self, Gen};
use webre_substrate::{prop_assert, prop_assert_eq};

const CASES: u32 = 96;

/// Instance pool chosen so random catalogues are dense with overlaps:
/// `uni` is a prefix of `university`, `versity` a suffix; `science`
/// embeds in `bachelor of science`; `1996` in `june 1996`; plus
/// unicode (dotted capital İ lowercases to two chars, `é` is
/// multi-byte) and punctuation-only entries.
const INSTANCES: &[&str] = &[
    "uni",
    "university",
    "universality",
    "versity",
    "college",
    "state college",
    "b.s.",
    "b.s. degree",
    "degree",
    "science",
    "bachelor of science",
    "june",
    "june 1996",
    "1996",
    "gpa",
    "c++",
    "résumé",
    "sumé",
    "istanbul",
    "İstanbul",
];

/// Filler that shares prefixes/suffixes with the instance pool without
/// ever matching it at a word boundary.
const NOISE: &[&str] = &[
    "zorp", "the", "of", "at", ",", ";", " ", "  ", "universit", "ollege", "",
];

fn gen_set(g: &mut Gen) -> ConceptSet {
    let concepts = g.vec(1, 4, |g| {
        g.vec(1, 4, |g| (*g.pick(INSTANCES)).to_owned())
    });
    let mut set = ConceptSet::new();
    for (i, instances) in concepts.into_iter().enumerate() {
        set.add(Concept::new(
            format!("concept{i}"),
            ConceptRole::Content,
            instances,
        ));
    }
    set
}

fn gen_text(g: &mut Gen) -> String {
    let pieces = g.vec(0, 7, |g| {
        let piece = if g.bool(0.6) {
            *g.pick(INSTANCES)
        } else {
            *g.pick(NOISE)
        };
        // Random casing exercises the shared lowercase mapping.
        if g.bool(0.3) {
            piece.to_uppercase()
        } else {
            piece.to_owned()
        }
    });
    pieces.join(" ")
}

/// Structural sanity every match set must satisfy, independent of the
/// naive reference: in-bounds char-aligned spans, sorted and
/// non-overlapping, each span actually equal (case-insensitively) to the
/// instance it claims, and each concept/instance pair present in the set.
fn assert_well_formed(
    set: &ConceptSet,
    text: &str,
    matches: &[webre_concepts::ConceptMatch],
) -> Result<(), String> {
    let mut prev_end = 0usize;
    for m in matches {
        prop_assert!(m.len > 0, "empty match span");
        prop_assert!(m.end() <= text.len(), "span out of bounds");
        prop_assert!(
            text.is_char_boundary(m.start) && text.is_char_boundary(m.end()),
            "span not char-aligned in {text:?}: {m:?}"
        );
        prop_assert!(
            m.start >= prev_end,
            "overlapping/unsorted matches in {text:?}: {matches:?}"
        );
        prev_end = m.end();
        let span = &text[m.start..m.end()];
        prop_assert_eq!(
            span.to_lowercase(),
            m.instance.to_lowercase(),
            "span text disagrees with claimed instance in {:?}",
            text
        );
        let concept = set
            .get(&m.concept)
            .ok_or_else(|| format!("match names unknown concept {:?}", m.concept))?;
        prop_assert!(
            concept
                .instances
                .iter()
                .any(|i| i.eq_ignore_ascii_case(&m.instance) || *i == m.instance),
            "instance {:?} not in concept {:?}",
            m.instance,
            m.concept
        );
    }
    Ok(())
}

#[test]
fn matches_are_well_formed() {
    prop::check_cases("matches_are_well_formed", CASES, |g| {
        let set = gen_set(g);
        let matcher = ConceptMatcher::new(&set);
        let text = gen_text(g);
        assert_well_formed(&set, &text, &matcher.find_matches(&text))
    });
}

/// The automaton agrees with the naive scanner on catalogues built to
/// maximize prefix/suffix overlap between patterns.
#[test]
fn agrees_with_naive_on_overlapping_catalogues() {
    prop::check_cases("agrees_with_naive_on_overlapping_catalogues", CASES, |g| {
        let set = gen_set(g);
        let matcher = ConceptMatcher::new(&set);
        let text = gen_text(g);
        prop_assert_eq!(
            matcher.find_matches(&text),
            find_matches(&set, &text),
            "divergence on {:?}",
            text
        );
        Ok(())
    });
}

/// Adding a concept whose instances never occur in the text (at a word
/// boundary or otherwise) never changes the existing matches.
#[test]
fn unmatched_concept_is_inert() {
    prop::check_cases("unmatched_concept_is_inert", CASES, |g| {
        let mut set = gen_set(g);
        let text = gen_text(g);
        let before = ConceptMatcher::new(&set).find_matches(&text);
        // `qq` cannot occur: no pool entry contains a double q.
        let inert = g.vec(1, 3, |g| format!("qq{}", g.int(0u32..1000)));
        set.add(Concept::new("inert", ConceptRole::Content, inert));
        let after = ConceptMatcher::new(&set).find_matches(&text);
        prop_assert_eq!(after, before, "inert concept changed matches on {:?}", text);
        Ok(())
    });
}

/// Empty and whitespace-only tokens yield no matches, and catalogues with
/// empty instance strings behave as if those instances were absent.
#[test]
fn empty_edges_are_no_ops() {
    prop::check_cases("empty_edges_are_no_ops", CASES, |g| {
        let set = gen_set(g);
        let matcher = ConceptMatcher::new(&set);
        for text in ["", " ", "\t\n", "   "] {
            prop_assert!(
                matcher.find_matches(text).is_empty(),
                "matches in blank text {:?}",
                text
            );
        }
        // Splice empty instances into every concept; the compiled matcher
        // must be unaffected.
        let text = gen_text(g);
        let before = matcher.find_matches(&text);
        let concepts: Vec<Concept> = set.iter().cloned().collect();
        let mut padded = ConceptSet::new();
        for mut c in concepts {
            c.instances.insert(0, String::new());
            c.instances.push(String::new());
            padded.add(c);
        }
        let after = ConceptMatcher::new(&padded).find_matches(&text);
        prop_assert_eq!(after, before, "empty instances changed matches");
        Ok(())
    });
}

/// Unicode-heavy inputs: multi-byte characters, case folding that grows
/// byte length (İ → i̇), and arbitrary generated text never panic and
/// produce char-aligned spans.
#[test]
fn unicode_never_panics_and_spans_align() {
    prop::check_cases("unicode_never_panics_and_spans_align", CASES, |g| {
        let set = gen_set(g);
        let matcher = ConceptMatcher::new(&set);
        let mut text = g.arbitrary_text(0, 40);
        if g.bool(0.5) {
            text.push_str(" İstanbul résumé ");
            text.push_str(*g.pick(INSTANCES));
        }
        let matches = matcher.find_matches(&text);
        assert_well_formed(&set, &text, &matches)?;
        prop_assert_eq!(matches, find_matches(&set, &text), "divergence on {:?}", text);
        Ok(())
    });
}

/// A pattern that is a strict prefix or suffix of a longer pattern in the
/// same catalogue loses to the longer pattern when both match at an
/// overlapping position — pinned deterministically for the canonical
/// prefix (`uni`/`university`) and suffix (`degree`/`b.s. degree`) pairs.
#[test]
fn longest_match_wins_for_nested_patterns() {
    let mut set = ConceptSet::new();
    set.add(Concept::new("short", ConceptRole::Content, ["uni", "degree"]));
    set.add(Concept::new(
        "long",
        ConceptRole::Content,
        ["university", "b.s. degree"],
    ));
    let matcher = ConceptMatcher::new(&set);

    let m = matcher.find_matches("university");
    assert_eq!(m.len(), 1);
    assert_eq!(m[0].concept, "long");
    assert_eq!(m[0].instance, "university");

    let m = matcher.find_matches("a B.S. degree holder");
    assert_eq!(m.len(), 1);
    assert_eq!(m[0].concept, "long");
    assert_eq!(m[0].instance, "b.s. degree");

    // Standing alone, the short patterns still match.
    let m = matcher.find_matches("uni degree");
    assert_eq!(m.len(), 2);
    assert!(m.iter().all(|x| x.concept == "short"));
}
