//! Aho–Corasick concept-instance matching: the cold-conversion fast path.
//!
//! [`crate::matcher::find_matches`] scans the text once *per concept
//! instance* — O(instances × text) — which made concept matching the
//! dominant cost of document conversion (the resume domain carries 233
//! instances, so every token was scanned 233 times). [`ConceptMatcher`]
//! compiles the whole catalogue into a byte-level Aho–Corasick automaton
//! **once per concept set** and then matches every document with a single
//! pass over the lowered text: one DFA transition per byte, independent of
//! how many instances the catalogue holds.
//!
//! The contract is strict: for every input, [`ConceptMatcher::find_matches`]
//! returns a `Vec<ConceptMatch>` **identical** to the naive scanner's —
//! same positions, same concept attributions, same resolution of
//! overlapping and equal-span candidates. The tie-break order of the naive
//! scanner is reproduced exactly (see [`ConceptMatcher::find_matches`]),
//! and the `matcher-vs-naive` differential oracle in `webre-check` holds
//! the equivalence over fuzzed concept sets, fuzzed token streams and all
//! golden fixtures.

use crate::concept::ConceptSet;
use crate::matcher::{is_word_char, lower_with_map, ConceptMatch};

/// Transition target meaning "no trie edge" during construction. The
/// finished automaton is a complete DFA and never contains this value.
const NONE: u32 = u32::MAX;

/// Per-pattern metadata carried out of the build.
#[derive(Clone, Debug)]
struct Pattern {
    /// Concept this instance belongs to.
    concept: String,
    /// The instance text as authored (not lowercased).
    instance: String,
    /// Byte length of the *lowercased* pattern (match spans in the
    /// lowered text always have exactly this length).
    len: usize,
    /// Whether the lowered pattern starts with a word character — decides
    /// whether a word character *before* a match vetoes it.
    first_is_word: bool,
    /// Whether the lowered pattern ends with a word character — decides
    /// whether a word character *after* a match vetoes it.
    last_is_word: bool,
}

/// One candidate occurrence, pre-tie-break.
struct Candidate {
    /// Byte offset in the original text.
    start: usize,
    /// Byte length in the original text.
    len: usize,
    /// Pattern index, in (concept, instance) declaration order.
    pattern: u32,
    /// Byte offset in the lowered text (final tie-break key).
    lower_begin: usize,
}

/// A concept catalogue compiled into an Aho–Corasick automaton.
///
/// Build once per [`ConceptSet`] (the converter does this at
/// construction), reuse across every document and token. Matching is a
/// single pass over the lowered text regardless of catalogue size.
///
/// The transition table is compressed over *byte equivalence classes*:
/// every byte that appears in no pattern behaves identically in every
/// state (its edge always leads wherever the failure chain's root edge
/// leads), so all such bytes share class 0 and each distinct pattern
/// byte gets its own class. The resume catalogue uses ~40 distinct
/// bytes, shrinking the table ~6× versus a 256-wide row per state —
/// small enough to stay cache-resident while a document streams through.
#[derive(Clone)]
pub struct ConceptMatcher {
    /// Byte → equivalence class. Class 0 is "appears in no pattern";
    /// `u16` because a pathological catalogue can use all 256 bytes,
    /// which needs 257 classes.
    classes: [u16; 256],
    /// Number of equivalence classes (row width of `next`).
    class_count: usize,
    /// Complete DFA: `next[state * class_count + class]` is always a
    /// valid state.
    next: Vec<u32>,
    /// Patterns ending at each state (own + failure chain), ascending by
    /// pattern index so candidate emission respects declaration order.
    outputs: Vec<Vec<u32>>,
    patterns: Vec<Pattern>,
}

impl std::fmt::Debug for ConceptMatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConceptMatcher")
            .field("states", &(self.next.len() / self.class_count.max(1)))
            .field("classes", &self.class_count)
            .field("patterns", &self.patterns.len())
            .finish()
    }
}

impl ConceptMatcher {
    /// Compiles every non-empty instance of every concept in `set`.
    ///
    /// Patterns are numbered in `(concept, instance)` declaration order —
    /// the same order the naive scanner visits them — because that order
    /// is the equal-span tie-break.
    pub fn new(set: &ConceptSet) -> Self {
        let mut patterns = Vec::new();
        let mut lowered: Vec<String> = Vec::new();
        for concept in set.iter() {
            for instance in &concept.instances {
                let pat = instance.to_lowercase();
                if pat.is_empty() {
                    continue;
                }
                patterns.push(Pattern {
                    concept: concept.name.clone(),
                    instance: instance.clone(),
                    len: pat.len(),
                    first_is_word: pat.chars().next().is_some_and(is_word_char),
                    last_is_word: pat.chars().next_back().is_some_and(is_word_char),
                });
                lowered.push(pat);
            }
        }

        // Byte equivalence classes: distinct classes for bytes used by
        // some pattern, one shared class for every other byte.
        let mut classes = [0u16; 256];
        let mut class_count = 1usize;
        for pat in &lowered {
            for &b in pat.as_bytes() {
                if classes[b as usize] == 0 {
                    classes[b as usize] = class_count as u16;
                    class_count += 1;
                }
            }
        }

        // Trie construction over pattern byte classes.
        let mut next: Vec<u32> = vec![NONE; class_count];
        let mut own: Vec<Vec<u32>> = vec![Vec::new()];
        for (id, pat) in lowered.iter().enumerate() {
            let mut state = 0usize;
            for &b in pat.as_bytes() {
                let slot = state * class_count + classes[b as usize] as usize;
                if next[slot] == NONE {
                    let new_state = own.len() as u32;
                    next.extend(std::iter::repeat(NONE).take(class_count));
                    own.push(Vec::new());
                    next[slot] = new_state;
                }
                state = next[slot] as usize;
            }
            own[state].push(id as u32);
        }

        // Breadth-first failure-link pass, folded directly into a complete
        // DFA: missing edges are redirected along the failure chain, and
        // each state's output list absorbs its failure state's outputs
        // (kept sorted by pattern index — both sides are already sorted,
        // so a merge suffices, but `sort_unstable` on the small combined
        // list is simpler and runs once at build time).
        let state_count = own.len();
        let mut fail: Vec<u32> = vec![0; state_count];
        let mut outputs: Vec<Vec<u32>> = own;
        let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        for c in 0..class_count {
            match next[c] {
                NONE => next[c] = 0,
                s => {
                    fail[s as usize] = 0;
                    queue.push_back(s);
                }
            }
        }
        while let Some(state) = queue.pop_front() {
            let f = fail[state as usize];
            if !outputs[f as usize].is_empty() {
                let inherited = outputs[f as usize].clone();
                let list = &mut outputs[state as usize];
                list.extend(inherited);
                list.sort_unstable();
            }
            for c in 0..class_count {
                let slot = state as usize * class_count + c;
                match next[slot] {
                    NONE => next[slot] = next[f as usize * class_count + c],
                    child => {
                        fail[child as usize] = next[f as usize * class_count + c];
                        queue.push_back(child);
                    }
                }
            }
        }

        ConceptMatcher {
            classes,
            class_count,
            next,
            outputs,
            patterns,
        }
    }

    /// Number of compiled patterns (non-empty instances).
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the catalogue compiled to nothing (no non-empty instances).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Finds every word-boundary occurrence of every compiled instance in
    /// `text`, byte-identically to [`crate::matcher::find_matches`] over
    /// the originating [`ConceptSet`].
    ///
    /// Candidates are ordered by `(start asc, len desc, pattern asc,
    /// lower offset asc)` before the greedy non-overlap sweep. The first
    /// two keys are the naive scanner's explicit sort; the last two
    /// reproduce its *stable-sort insertion order* (instances visited in
    /// declaration order, occurrences of one instance found left to
    /// right), so equal-span ties resolve identically.
    pub fn find_matches(&self, text: &str) -> Vec<ConceptMatch> {
        if self.patterns.is_empty() || text.is_empty() {
            return Vec::new();
        }
        let candidates = if text.is_ascii() {
            self.ascii_candidates(text)
        } else {
            self.unicode_candidates(text)
        };
        self.resolve(candidates)
    }

    /// Fast path for ASCII text (virtually every token in practice):
    /// ASCII lowercasing is byte-for-byte, so lowered offsets *are*
    /// original offsets — no lowered copy, no offset map, and zero
    /// allocation for the common token with no matches.
    ///
    /// Equivalence with the generic path: for ASCII input,
    /// `lower_with_map` produces `to_ascii_lowercase` bytes with an
    /// identity offset map, ASCII case folding never changes
    /// alphanumeric-ness, and `char::is_alphanumeric` agrees with
    /// `u8::is_ascii_alphanumeric` on ASCII — so the DFA sees the same
    /// byte stream and the boundary checks the same answers.
    fn ascii_candidates(&self, text: &str) -> Vec<Candidate> {
        let bytes = text.as_bytes();
        let cc = self.class_count;
        let mut candidates: Vec<Candidate> = Vec::new();
        let mut state = 0u32;
        for (i, &raw) in bytes.iter().enumerate() {
            let class = self.classes[raw.to_ascii_lowercase() as usize];
            state = self.next[state as usize * cc + class as usize];
            if self.outputs[state as usize].is_empty() {
                continue;
            }
            for &id in &self.outputs[state as usize] {
                let pattern = &self.patterns[id as usize];
                let end = i + 1;
                let begin = end - pattern.len;
                let before_ok = begin == 0
                    || !pattern.first_is_word
                    || !bytes[begin - 1].is_ascii_alphanumeric();
                let after_ok = end == bytes.len()
                    || !pattern.last_is_word
                    || !bytes[end].is_ascii_alphanumeric();
                if before_ok && after_ok {
                    candidates.push(Candidate {
                        start: begin,
                        len: pattern.len,
                        pattern: id,
                        lower_begin: begin,
                    });
                }
            }
        }
        candidates
    }

    /// Generic path: lowercase with an offset map (shared with the naive
    /// scanner) and walk the lowered bytes.
    fn unicode_candidates(&self, text: &str) -> Vec<Candidate> {
        let (lower, map) = lower_with_map(text);
        let cc = self.class_count;
        let mut candidates: Vec<Candidate> = Vec::new();
        let mut state = 0u32;
        for (i, b) in lower.bytes().enumerate() {
            let class = self.classes[b as usize];
            state = self.next[state as usize * cc + class as usize];
            for &id in &self.outputs[state as usize] {
                let pattern = &self.patterns[id as usize];
                let end = i + 1;
                let begin = end - pattern.len;
                let before_ok = begin == 0
                    || !pattern.first_is_word
                    || !lower[..begin]
                        .chars()
                        .next_back()
                        .is_some_and(is_word_char);
                let after_ok = end == lower.len()
                    || !pattern.last_is_word
                    || !lower[end..].chars().next().is_some_and(is_word_char);
                if before_ok && after_ok {
                    let orig_start = map[begin];
                    candidates.push(Candidate {
                        start: orig_start,
                        len: map[end] - orig_start,
                        pattern: id,
                        lower_begin: begin,
                    });
                }
            }
        }
        candidates
    }

    /// Tie-break sort and greedy non-overlap sweep shared by both paths.
    fn resolve(&self, mut candidates: Vec<Candidate>) -> Vec<ConceptMatch> {
        candidates.sort_unstable_by(|a, b| {
            a.start
                .cmp(&b.start)
                .then(b.len.cmp(&a.len))
                .then(a.pattern.cmp(&b.pattern))
                .then(a.lower_begin.cmp(&b.lower_begin))
        });
        let mut out: Vec<ConceptMatch> = Vec::new();
        for c in candidates {
            if out.last().is_none_or(|prev| c.start >= prev.end()) {
                let pattern = &self.patterns[c.pattern as usize];
                out.push(ConceptMatch {
                    concept: pattern.concept.clone(),
                    instance: pattern.instance.clone(),
                    start: c.start,
                    len: c.len,
                });
            }
        }
        out
    }

    /// The distinct concept names matched in `text`, in match order —
    /// the automaton counterpart of [`crate::matcher::matched_concepts`].
    pub fn matched_concepts(&self, text: &str) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for m in self.find_matches(text) {
            if !out.contains(&m.concept) {
                out.push(m.concept);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::{Concept, ConceptRole};
    use crate::matcher::find_matches;

    fn set() -> ConceptSet {
        [
            Concept::new(
                "institution",
                ConceptRole::Content,
                ["University", "College", "Institute"],
            ),
            Concept::new(
                "degree",
                ConceptRole::Content,
                ["B.S.", "M.S.", "Ph.D.", "Bachelor of Science"],
            ),
            Concept::new(
                "date",
                ConceptRole::Content,
                ["January", "June", "1996", "1998"],
            ),
            Concept::new("gpa", ConceptRole::Content, ["GPA"]),
        ]
        .into_iter()
        .collect()
    }

    fn assert_agrees(set: &ConceptSet, text: &str) {
        let automaton = ConceptMatcher::new(set);
        assert_eq!(
            automaton.find_matches(text),
            find_matches(set, text),
            "automaton diverges from naive scanner on {text:?}"
        );
    }

    #[test]
    fn agrees_with_naive_on_paper_sentence() {
        assert_agrees(
            &set(),
            "University of California at Davis, B.S.(Computer Science), June 1996, GPA 3.8/4.0",
        );
    }

    #[test]
    fn agrees_on_word_boundaries_and_case() {
        for text in [
            "Universality is nice",
            "State College.",
            "UNIVERSITY education",
            "collegestudent",
            "",
            "University and University",
        ] {
            assert_agrees(&set(), text);
        }
    }

    #[test]
    fn overlapping_instances_resolve_longest_first() {
        let s: ConceptSet = [
            Concept::new("degree", ConceptRole::Content, ["Bachelor of Science"]),
            Concept::new("major", ConceptRole::Content, ["Science"]),
        ]
        .into_iter()
        .collect();
        let m = ConceptMatcher::new(&s);
        let ms = m.find_matches("Bachelor of Science");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].concept, "degree");
        assert_agrees(&s, "Bachelor of Science");
        assert_agrees(&s, "Science of Bachelor of Science");
    }

    #[test]
    fn equal_span_tie_goes_to_earlier_concept() {
        let s: ConceptSet = [
            Concept::new("a", ConceptRole::Content, ["shared"]),
            Concept::new("b", ConceptRole::Content, ["shared"]),
        ]
        .into_iter()
        .collect();
        let m = ConceptMatcher::new(&s);
        let ms = m.find_matches("shared words");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].concept, "a");
        assert_agrees(&s, "shared words shared");
    }

    #[test]
    fn prefix_and_suffix_patterns_coexist() {
        let s: ConceptSet = [
            Concept::new("x", ConceptRole::Content, ["uni", "university", "versity"]),
        ]
        .into_iter()
        .collect();
        for text in ["uni", "university", "uni versity", "the university."] {
            assert_agrees(&s, text);
        }
    }

    #[test]
    fn unicode_offsets_match_naive() {
        let s: ConceptSet = [Concept::new("date", ConceptRole::Content, ["june"])]
            .into_iter()
            .collect();
        let text = "İİ résumé June 1996";
        let m = ConceptMatcher::new(&s);
        let ms = m.find_matches(text);
        assert_eq!(ms.len(), 1);
        assert_eq!(&text[ms[0].start..ms[0].end()], "June");
        assert_agrees(&s, text);
    }

    #[test]
    fn empty_set_and_empty_instances_compile_to_nothing() {
        let empty = ConceptSet::new();
        let m = ConceptMatcher::new(&empty);
        assert!(m.is_empty());
        assert!(m.find_matches("University").is_empty());

        let mut c = Concept::new("x", ConceptRole::Content, ["keep"]);
        c.instances.push(String::new());
        let s: ConceptSet = [c].into_iter().collect();
        let m = ConceptMatcher::new(&s);
        assert_eq!(m.pattern_count(), 2, "x + keep, empty skipped");
        assert_agrees(&s, "keep x");
    }

    #[test]
    fn matched_concepts_agrees_with_naive() {
        let text = "B.S. June 1996 GPA 3.8";
        let m = ConceptMatcher::new(&set());
        assert_eq!(
            m.matched_concepts(text),
            crate::matcher::matched_concepts(&set(), text)
        );
    }

    #[test]
    fn repeated_occurrences_found_like_naive() {
        let s: ConceptSet = [Concept::new("x", ConceptRole::Content, ["aa", "aba"])]
            .into_iter()
            .collect();
        for text in ["aaa", "ababa", "aa aa aa", "aabaa"] {
            assert_agrees(&s, text);
        }
    }
}
