//! Topic concepts, concept instances and concept constraints.
//!
//! Section 2.2 of the paper: the only mandatory user input to document
//! conversion is a set of *topic concepts*; each concept carries *concept
//! instances* (text patterns/keywords, always including the concept name
//! itself). Optional *concept constraints* — `parent(c1, c2)`,
//! `sibling(c1, c2)`, `depth(c) ⊙ d`, all negatable — describe how concepts
//! can be structured and are used to prune the schema-discovery search
//! space (Section 4.2).
//!
//! * [`concept`] — [`Concept`], [`ConceptSet`] and roles (title vs content
//!   names, Section 4.2's split);
//! * [`matcher`] — position-aware instance matching inside tokens, the
//!   engine of the concept instance rule (including the multi-instance
//!   decomposition case);
//! * [`automaton`] — the Aho–Corasick fast path: the whole catalogue
//!   compiled once into a byte-level DFA, match-equivalent to [`matcher`]
//!   (enforced by the `matcher-vs-naive` oracle);
//! * [`constraints`] — the constraint algebra and path admission checks;
//! * [`discovery`] — automatic extraction of new concept instances from
//!   labeled tokens (the paper's Section 5 future work);
//! * [`resume`] — the built-in resume domain used by the experiments:
//!   24 concepts, 233 instances, 11 title names and 13 content names,
//!   mirroring the paper's setup.

pub mod automaton;
pub mod concept;
pub mod constraints;
pub mod discovery;
pub mod matcher;
pub mod resume;

pub use automaton::ConceptMatcher;
pub use concept::{Concept, ConceptRole, ConceptSet, Domain};
pub use constraints::{Comparator, Constraint, ConstraintSet};
pub use matcher::{find_matches, ConceptMatch};
