//! Automatic discovery of concept instances from labeled examples.
//!
//! Section 5 of the paper: "we are currently investigating more
//! sophisticated heuristics and automated discovery methods for concepts
//! and concept instances from HTML documents. In particular, we are
//! developing different methods to automatically extract concept instances
//! from a training set of HTML documents and thus to further automate the
//! process."
//!
//! The method implemented here is the natural statistical one: from tokens
//! labeled with their concept (hand-labeled in the paper's setting; any
//! source works), score every word by how *precisely* it predicts a
//! concept and how often it occurs, and promote high-precision,
//! well-supported words to new concept instances. The new instances then
//! feed straight back into synonym matching — closing the bootstrap loop
//! the paper sketches.

use crate::concept::ConceptSet;
use std::collections::HashMap;
use webre_text::tokenize::words;

/// Thresholds for instance discovery.
#[derive(Clone, Copy, Debug)]
pub struct DiscoveryConfig {
    /// A word must occur in at least this many labeled tokens.
    pub min_support: usize,
    /// Fraction of the word's occurrences that must carry the concept's
    /// label (precision).
    pub min_precision: f64,
    /// At most this many new instances are proposed per concept.
    pub max_per_concept: usize,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            min_support: 3,
            min_precision: 0.9,
            max_per_concept: 10,
        }
    }
}

/// A proposed concept instance with its evidence.
#[derive(Clone, Debug, PartialEq)]
pub struct ProposedInstance {
    pub concept: String,
    pub instance: String,
    /// Labeled tokens containing the word with this concept's label.
    pub support: usize,
    /// support / total occurrences of the word.
    pub precision: f64,
}

/// Mines instance candidates from `(label, token text)` examples.
///
/// Tokens labeled with `unknown_label` count against precision (a word
/// that also appears in unlabeled noise is a poor instance) but never
/// produce proposals.
pub fn discover_instances(
    examples: &[(String, String)],
    unknown_label: &str,
    config: &DiscoveryConfig,
) -> Vec<ProposedInstance> {
    // word → (label → count, total)
    let mut stats: HashMap<String, (HashMap<&str, usize>, usize)> = HashMap::new();
    for (label, text) in examples {
        let mut seen_in_token: Vec<String> = Vec::new();
        for w in words(text) {
            // Words shorter than three characters are overwhelmingly
            // stopwords/particles ("en", "de", "of") — never good instances.
            if w == "#num" || w.len() < 3 || seen_in_token.contains(&w) {
                continue;
            }
            seen_in_token.push(w.clone());
            let entry = stats.entry(w).or_default();
            *entry.0.entry(label.as_str()).or_insert(0) += 1;
            entry.1 += 1;
        }
    }

    let mut proposals: Vec<ProposedInstance> = Vec::new();
    for (word, (by_label, total)) in stats {
        let Some((label, count)) = by_label
            .iter()
            .max_by_key(|(l, c)| (**c, std::cmp::Reverse(*l)))
            .map(|(l, c)| (*l, *c))
        else {
            continue;
        };
        if label == unknown_label || count < config.min_support {
            continue;
        }
        let precision = count as f64 / total as f64;
        if precision < config.min_precision {
            continue;
        }
        proposals.push(ProposedInstance {
            concept: label.to_owned(),
            instance: word,
            support: count,
            precision,
        });
    }
    // Strongest evidence first; deterministic tie-break on the word.
    proposals.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then(b.precision.partial_cmp(&a.precision).expect("finite"))
            .then(a.instance.cmp(&b.instance))
    });

    // Cap per concept.
    let mut taken: HashMap<String, usize> = HashMap::new();
    proposals.retain(|p| {
        let slot = taken.entry(p.concept.clone()).or_insert(0);
        *slot += 1;
        *slot <= config.max_per_concept
    });
    proposals
}

/// Adds discovered instances to the concept set, skipping words already
/// covered by an existing instance of the same concept. Returns how many
/// instances were added.
pub fn augment(set: &mut ConceptSet, proposals: &[ProposedInstance]) -> usize {
    let mut added = 0;
    for p in proposals {
        let Some(concept) = set.get(&p.concept) else {
            continue;
        };
        let already = concept
            .instances
            .iter()
            .any(|i| i.eq_ignore_ascii_case(&p.instance) || webre_text::tokenize::contains_word(i, &p.instance));
        if already {
            continue;
        }
        let mut updated = concept.clone();
        updated.instances.push(p.instance.clone());
        set.add(updated);
        added += 1;
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::{Concept, ConceptRole};

    fn ex(label: &str, text: &str) -> (String, String) {
        (label.to_owned(), text.to_owned())
    }

    #[test]
    fn discovers_precise_frequent_words() {
        let examples = vec![
            ex("institution", "Universidad de Chile"),
            ex("institution", "Universidad de Buenos Aires"),
            ex("institution", "Universidad Nacional"),
            ex("degree", "Licenciatura en Fisica"),
            ex("degree", "Licenciatura en Quimica"),
            ex("degree", "Licenciatura en Historia"),
            ex("unknown", "random words here"),
        ];
        let found = discover_instances(&examples, "unknown", &DiscoveryConfig::default());
        let words: Vec<(&str, &str)> = found
            .iter()
            .map(|p| (p.concept.as_str(), p.instance.as_str()))
            .collect();
        assert!(words.contains(&("institution", "universidad")), "{words:?}");
        assert!(words.contains(&("degree", "licenciatura")), "{words:?}");
        // Short particles ("en", "de") are filtered by the length floor.
        assert!(!words.iter().any(|(_, w)| *w == "en"), "{words:?}");
        assert!(!words.iter().any(|(_, w)| *w == "de"), "{words:?}");
    }

    #[test]
    fn imprecise_words_rejected() {
        let examples = vec![
            ex("a", "shared token one"),
            ex("a", "shared token two"),
            ex("a", "shared token three"),
            ex("b", "shared other thing"),
            ex("b", "shared another thing"),
            ex("b", "shared third thing"),
        ];
        let found = discover_instances(&examples, "unknown", &DiscoveryConfig::default());
        assert!(
            !found.iter().any(|p| p.instance == "shared"),
            "{found:?}"
        );
    }

    #[test]
    fn unknown_label_never_proposed_and_hurts_precision() {
        let examples = vec![
            ex("unknown", "filler filler filler"),
            ex("unknown", "filler again"),
            ex("unknown", "more filler"),
            // "mixed" appears under a label 3 times but also in noise twice.
            ex("a", "mixed alpha"),
            ex("a", "mixed beta"),
            ex("a", "mixed gamma"),
            ex("unknown", "mixed junk"),
            ex("unknown", "mixed noise"),
        ];
        let found = discover_instances(&examples, "unknown", &DiscoveryConfig::default());
        assert!(!found.iter().any(|p| p.concept == "unknown"));
        // precision of "mixed" for a = 3/5 < 0.9.
        assert!(!found.iter().any(|p| p.instance == "mixed"), "{found:?}");
    }

    #[test]
    fn per_concept_cap_respected() {
        let mut examples = Vec::new();
        for i in 0..20 {
            for _ in 0..3 {
                examples.push(ex("a", &format!("uniqueword{i}")));
            }
        }
        let config = DiscoveryConfig {
            max_per_concept: 5,
            ..DiscoveryConfig::default()
        };
        let found = discover_instances(&examples, "unknown", &config);
        assert_eq!(found.len(), 5);
    }

    #[test]
    fn augment_skips_covered_instances() {
        let mut set: ConceptSet = [Concept::new(
            "institution",
            ConceptRole::Content,
            ["university"],
        )]
        .into_iter()
        .collect();
        let proposals = vec![
            ProposedInstance {
                concept: "institution".into(),
                instance: "university".into(), // duplicate
                support: 5,
                precision: 1.0,
            },
            ProposedInstance {
                concept: "institution".into(),
                instance: "universidad".into(), // new
                support: 4,
                precision: 1.0,
            },
            ProposedInstance {
                concept: "nope".into(), // unknown concept
                instance: "x".into(),
                support: 4,
                precision: 1.0,
            },
        ];
        let added = augment(&mut set, &proposals);
        assert_eq!(added, 1);
        let inst = &set.get("institution").unwrap().instances;
        assert!(inst.contains(&"universidad".to_owned()));
        assert_eq!(inst.iter().filter(|i| *i == "university").count(), 1);
    }

    #[test]
    fn discovery_is_deterministic() {
        let examples: Vec<_> = (0..30)
            .map(|i| ex(if i % 2 == 0 { "a" } else { "b" }, &format!("w{} common{}", i % 4, i % 2)))
            .collect();
        let a = discover_instances(&examples, "unknown", &DiscoveryConfig { min_support: 2, min_precision: 0.5, max_per_concept: 10 });
        let b = discover_instances(&examples, "unknown", &DiscoveryConfig { min_support: 2, min_precision: 0.5, max_per_concept: 10 });
        assert_eq!(a, b);
    }
}
