//! The built-in resume domain.
//!
//! Section 4 of the paper: "There are 24 concept names and a total of 233
//! concept instances specified as domain knowledge. [...] Out of the 24
//! concept names, 11 are title names and 13 are content names. We also
//! specified that no concept can occur at a depth greater than 4."
//!
//! The paper does not publish its concept table, so this module
//! reconstructs an equivalent one for the same topic with exactly the same
//! shape: 24 concepts (11 title + 13 content), 233 instances in total, and
//! a synthetic `resume` document root that is not itself a concept (which
//! is what makes the Section 4.2 node arithmetic 1 + 11 + 11*13 + 11*13*12
//! work out), plus
//! the Section 4.2 constraint classes (no repeated concept along a path,
//! title names at depth 1, content names at depth > 1, maximum depth 4).

use crate::concept::{Concept, ConceptRole, ConceptSet};
use crate::constraints::{Comparator, Constraint, ConstraintSet};

/// Number of concepts in the paper's experimental setup.
pub const CONCEPT_COUNT: usize = 24;
/// Number of concept instances in the paper's experimental setup.
pub const INSTANCE_COUNT: usize = 233;
/// Title-name count (Section 4.2).
pub const TITLE_COUNT: usize = 11;
/// Content-name count (Section 4.2).
pub const CONTENT_COUNT: usize = 13;
/// Maximum concept depth (Section 4.2).
pub const MAX_DEPTH: usize = 4;

/// The 11 title-name concepts: likely titles of resume sections, only
/// occurring as first-level nodes.
fn title_concepts() -> Vec<Concept> {
    let t = |name: &str, instances: &[&str]| {
        Concept::new(name, ConceptRole::Title, instances.iter().copied())
    };
    vec![
        t(
            "publications",
            &["publications", "papers", "journal articles", "conference papers", "patents"],
        ),
        t(
            "contact",
            &[
                "contact",
                "contact information",
                "personal information",
                "personal data",
                "personal details",
            ],
        ),
        t(
            "objective",
            &[
                "objective",
                "career objective",
                "professional objective",
                "employment objective",
                "career goal",
                "goal",
            ],
        ),
        t(
            "summary",
            &[
                "summary",
                "profile",
                "professional summary",
                "summary of qualifications",
                "qualifications",
                "highlights",
                "overview",
            ],
        ),
        t(
            "education",
            &[
                "education",
                "educational background",
                "academic background",
                "academics",
                "academic history",
                "schooling",
                "degrees",
            ],
        ),
        t(
            "experience",
            &[
                "experience",
                "work experience",
                "employment",
                "employment history",
                "professional experience",
                "work history",
                "career history",
                "positions held",
                "relevant experience",
            ],
        ),
        t(
            "skills",
            &[
                "skills",
                "technical skills",
                "computer skills",
                "programming skills",
                "skill set",
                "programming languages",
                "expertise",
                "toolkits",
                "competencies",
                "proficiencies",
            ],
        ),
        t(
            "awards",
            &[
                "awards",
                "honors",
                "achievements",
                "distinctions",
                "scholarships",
                "fellowships",
                "recognition",
                "prizes",
            ],
        ),
        t(
            "activities",
            &[
                "activities",
                "extracurricular activities",
                "interests",
                "hobbies",
                "volunteer work",
                "community service",
                "leadership",
                "memberships",
                "affiliations",
            ],
        ),
        t(
            "reference",
            &[
                "reference",
                "references",
                "referees",
                "recommendations",
                "references available upon request",
            ],
        ),
        t(
            "courses",
            &[
                "courses",
                "coursework",
                "relevant courses",
                "relevant coursework",
                "selected courses",
                "classes",
            ],
        ),
    ]
}

/// The 13 content-name concepts: they describe the content of title names
/// and occur at depth > 1.
fn content_concepts() -> Vec<Concept> {
    let c = |name: &str, instances: &[&str]| {
        Concept::new(name, ConceptRole::Content, instances.iter().copied())
    };
    vec![
        c(
            "name",
            &["name", "full name", "first name", "last name", "mr.", "ms.", "mrs.", "dr."],
        ),
        c(
            "address",
            &[
                "address",
                "street",
                "avenue",
                "boulevard",
                "apt",
                "apartment",
                "suite",
                "p.o. box",
                "road",
                "lane",
                "drive",
                "city",
                "zip",
            ],
        ),
        c(
            "phone",
            &[
                "phone",
                "telephone",
                "tel",
                "fax",
                "mobile",
                "cell",
                "pager",
                "home phone",
                "work phone",
                "phone number",
            ],
        ),
        c(
            "email",
            &["email", "e-mail", "electronic mail", "mailto", "email address"],
        ),
        c(
            "url",
            &["url", "homepage", "home page", "website", "web site", "web page", "http", "www"],
        ),
        c(
            "institution",
            &[
                "institution",
                "university",
                "college",
                "institute",
                "school",
                "academy",
                "polytechnic",
                "state university",
                "community college",
                "graduate school",
                "high school",
            ],
        ),
        c(
            "degree",
            &[
                "degree",
                "b.s.",
                "bs",
                "b.a.",
                "ba",
                "m.s.",
                "m.a.",
                "ph.d.",
                "phd",
                "mba",
                "b.sc.",
                "m.sc.",
                "bachelor",
                "bachelors",
                "master",
                "masters",
                "doctorate",
                "doctoral",
                "diploma",
                "certificate",
                "associate",
                "minor",
            ],
        ),
        c(
            "date",
            &[
                "date",
                "january",
                "february",
                "march",
                "april",
                "may",
                "june",
                "july",
                "august",
                "september",
                "october",
                "november",
                "december",
                "jan",
                "feb",
                "mar",
                "apr",
                "jun",
                "jul",
                "aug",
                "sep",
                "sept",
                "oct",
                "nov",
                "dec",
                "spring",
                "summer",
                "fall",
                "winter",
                "present",
                "current",
            ],
        ),
        c(
            "gpa",
            &[
                "gpa",
                "g.p.a.",
                "grade point average",
                "cumulative gpa",
                "overall gpa",
                "cum laude",
                "magna cum laude",
                "summa cum laude",
            ],
        ),
        c(
            "major",
            &["major", "concentration", "specialization", "emphasis", "field of study"],
        ),
        c(
            "employer",
            &[
                "employer",
                "company",
                "corporation",
                "inc",
                "corp",
                "llc",
                "ltd",
                "organization",
                "firm",
                "agency",
                "laboratories",
                "labs",
                "enterprises",
                "technologies",
            ],
        ),
        c(
            "position",
            &[
                "position",
                "title",
                "job title",
                "engineer",
                "developer",
                "programmer",
                "analyst",
                "manager",
                "consultant",
                "intern",
                "assistant",
                "administrator",
                "architect",
                "specialist",
                "coordinator",
                "director",
                "researcher",
            ],
        ),
        c("location", &["location", "located in", "based in", "relocate"]),
    ]
}

/// The full resume concept set: 24 concepts, 233 instances.
pub fn concepts() -> ConceptSet {
    title_concepts()
        .into_iter()
        .chain(content_concepts())
        .collect()
}

/// The Section 4.2 constraint set: no concept repeats along a path, title
/// names occur exactly at depth 1, content names at depth > 1, and no
/// concept occurs deeper than [`MAX_DEPTH`].
pub fn constraints() -> ConstraintSet {
    let set = concepts();
    let mut out = ConstraintSet::new();
    out.add(Constraint::NoRepeat);
    out.add(Constraint::MaxDepth(MAX_DEPTH));
    for name in set.names_with_role(ConceptRole::Title) {
        out.add(Constraint::depth(name, Comparator::Eq, 1));
    }
    for name in set.names_with_role(ConceptRole::Content) {
        out.add(Constraint::depth(name, Comparator::Gt, 1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cardinalities() {
        let set = concepts();
        assert_eq!(set.len(), CONCEPT_COUNT, "24 concept names");
        assert_eq!(
            set.total_instances(),
            INSTANCE_COUNT,
            "233 concept instances"
        );
        assert_eq!(set.names_with_role(ConceptRole::Title).len(), TITLE_COUNT);
        assert_eq!(
            set.names_with_role(ConceptRole::Content).len(),
            CONTENT_COUNT
        );
    }

    #[test]
    fn every_concept_name_is_its_own_instance() {
        for c in concepts().iter() {
            assert!(
                c.instances.iter().any(|i| i.eq_ignore_ascii_case(&c.name)),
                "{} missing self-instance",
                c.name
            );
        }
    }

    #[test]
    fn instances_unique_within_concept() {
        for c in concepts().iter() {
            let mut seen: Vec<&str> = Vec::new();
            for i in &c.instances {
                assert!(!seen.contains(&i.as_str()), "{}: duplicate {i}", c.name);
                seen.push(i);
            }
        }
    }

    #[test]
    fn constraints_accept_canonical_paths() {
        let cs = constraints();
        assert!(cs.admits_path(&["resume", "education", "institution"]));
        assert!(cs.admits_path(&["resume", "education", "date", "degree"]));
        assert!(cs.admits_path(&["resume", "contact"]));
    }

    #[test]
    fn constraints_reject_paper_violations() {
        let cs = constraints();
        // Title name below depth 1.
        assert!(!cs.admits_path(&["resume", "education", "skills"]));
        // Content name at depth 1.
        assert!(!cs.admits_path(&["resume", "degree"]));
        // Repetition along a path.
        assert!(!cs.admits_path(&["resume", "education", "date", "date"]));
        // Too deep.
        assert!(!cs.admits_path(&[
            "resume",
            "education",
            "date",
            "degree",
            "institution",
            "gpa"
        ]));
    }

    #[test]
    fn matcher_identifies_paper_topic_sentence() {
        use crate::matcher::matched_concepts;
        let set = concepts();
        let found = matched_concepts(
            &set,
            "University of California at Davis, B.S.(Computer Science), June 1996, GPA 3.8/4.0",
        );
        assert!(found.contains(&"institution".to_owned()));
        assert!(found.contains(&"degree".to_owned()));
        assert!(found.contains(&"date".to_owned()));
        assert!(found.contains(&"gpa".to_owned()));
    }
}
