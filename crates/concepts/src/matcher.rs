//! Position-aware concept-instance matching inside tokens.
//!
//! The concept instance rule needs more than a yes/no answer: when more
//! than one concept instance is found in a token, the token is decomposed
//! at the instance positions (Section 2.3.1, case 1). [`find_matches`]
//! therefore reports *where* each instance matched, in byte offsets of the
//! original token text, so the converter can split
//! `text1 C1 text3 C2 text5` into `<C1 val="C1 text3"/><C2 val="C2 text5"/>`
//! with `text1` passed to the parent.

use crate::concept::ConceptSet;

/// One concept-instance match inside a token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConceptMatch {
    /// The matched concept's name.
    pub concept: String,
    /// The instance text that matched.
    pub instance: String,
    /// Byte offset of the match in the original token text.
    pub start: usize,
    /// Byte length of the matched region in the original token text.
    pub len: usize,
}

impl ConceptMatch {
    /// Byte offset one past the end of the match.
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// Lowercases `text` while keeping a map from each byte of the lowered
/// string back to the byte offset of the originating character in `text`.
/// Shared with the automaton fast path so both matchers see the exact
/// same lowered text and offset mapping.
pub(crate) fn lower_with_map(text: &str) -> (String, Vec<usize>) {
    let mut lower = String::with_capacity(text.len());
    let mut map = Vec::with_capacity(text.len());
    for (orig_idx, ch) in text.char_indices() {
        for lc in ch.to_lowercase() {
            let before = lower.len();
            lower.push(lc);
            for _ in before..lower.len() {
                map.push(orig_idx);
            }
        }
    }
    map.push(text.len()); // sentinel for end-of-string mapping
    (lower, map)
}

pub(crate) fn is_word_char(c: char) -> bool {
    c.is_alphanumeric()
}

/// Finds every word-boundary occurrence of every instance of every concept
/// in `text`. Matches are returned sorted by start position; overlapping
/// matches are resolved longest-first (so `"B.S. degree"` beats `"degree"`),
/// and at equal spans the earlier concept in the set wins.
///
/// This is the *naive* per-instance scanner: every instance of every
/// concept is searched independently, which is O(instances × text). The
/// conversion hot path uses [`crate::automaton::ConceptMatcher`] instead
/// (one automaton pass over the text); this scanner is retained as the
/// independent reference the `matcher-vs-naive` differential oracle
/// checks the automaton against.
pub fn find_matches(set: &ConceptSet, text: &str) -> Vec<ConceptMatch> {
    let (lower, map) = lower_with_map(text);
    let mut candidates: Vec<ConceptMatch> = Vec::new();
    for concept in set.iter() {
        for instance in &concept.instances {
            let pat = instance.to_lowercase();
            if pat.is_empty() {
                continue;
            }
            let mut from = 0;
            while let Some(found) = lower[from..].find(&pat) {
                let begin = from + found;
                let end = begin + pat.len();
                let before_ok = begin == 0
                    || !lower[..begin]
                        .chars()
                        .next_back()
                        .is_some_and(is_word_char)
                    || !pat.chars().next().is_some_and(is_word_char);
                let after_ok = end == lower.len()
                    || !lower[end..].chars().next().is_some_and(is_word_char)
                    || !pat.chars().next_back().is_some_and(is_word_char);
                if before_ok && after_ok {
                    let orig_start = map[begin];
                    let orig_end = map[end];
                    candidates.push(ConceptMatch {
                        concept: concept.name.clone(),
                        instance: instance.clone(),
                        start: orig_start,
                        len: orig_end - orig_start,
                    });
                }
                // Advance by one whole character to stay on a boundary.
                from = begin
                    + lower[begin..]
                        .chars()
                        .next()
                        .map_or(1, char::len_utf8);
            }
        }
    }
    // Longest-first at the same start; then greedy non-overlapping sweep.
    candidates.sort_by(|a, b| a.start.cmp(&b.start).then(b.len.cmp(&a.len)));
    let mut out: Vec<ConceptMatch> = Vec::new();
    for m in candidates {
        if out.last().is_none_or(|prev| m.start >= prev.end()) {
            out.push(m);
        }
    }
    out
}

/// The distinct concept names matched in `text`, in match order.
pub fn matched_concepts(set: &ConceptSet, text: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for m in find_matches(set, text) {
        if !out.contains(&m.concept) {
            out.push(m.concept);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::{Concept, ConceptRole};

    fn set() -> ConceptSet {
        [
            Concept::new(
                "institution",
                ConceptRole::Content,
                ["University", "College", "Institute"],
            ),
            Concept::new(
                "degree",
                ConceptRole::Content,
                ["B.S.", "M.S.", "Ph.D.", "Bachelor of Science"],
            ),
            Concept::new(
                "date",
                ConceptRole::Content,
                ["January", "June", "1996", "1998"],
            ),
            Concept::new("gpa", ConceptRole::Content, ["GPA"]),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn finds_single_instance() {
        let ms = find_matches(&set(), "University of California at Davis");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].concept, "institution");
        assert_eq!(ms[0].start, 0);
        assert_eq!(&"University of California at Davis"[ms[0].start..ms[0].end()], "University");
    }

    #[test]
    fn case_insensitive_matching() {
        let ms = find_matches(&set(), "UNIVERSITY education");
        assert_eq!(ms[0].concept, "institution");
    }

    #[test]
    fn word_boundary_respected() {
        assert!(find_matches(&set(), "Universality is nice").is_empty());
        assert!(!find_matches(&set(), "State College.").is_empty());
    }

    #[test]
    fn multiple_concepts_in_order() {
        let text = "B.S. June 1996 GPA 3.8";
        let concepts = matched_concepts(&set(), text);
        assert_eq!(concepts, ["degree", "date", "gpa"]);
    }

    #[test]
    fn longest_instance_wins_overlap() {
        let s: ConceptSet = [
            Concept::new("degree", ConceptRole::Content, ["Bachelor of Science"]),
            Concept::new("major", ConceptRole::Content, ["Science"]),
        ]
        .into_iter()
        .collect();
        let ms = find_matches(&s, "Bachelor of Science");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].concept, "degree");
    }

    #[test]
    fn repeated_instance_matches_each_occurrence() {
        let ms = find_matches(&set(), "University and University");
        assert_eq!(ms.len(), 2);
        assert!(ms[0].start < ms[1].start);
    }

    #[test]
    fn punctuation_in_instance_is_matched_literally() {
        let ms = find_matches(&set(), "earned a B.S. in 1996");
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].concept, "degree");
        assert_eq!(ms[1].concept, "date");
    }

    #[test]
    fn empty_text_no_matches() {
        assert!(find_matches(&set(), "").is_empty());
    }

    #[test]
    fn offsets_are_original_bytes_with_unicode() {
        // 'É' lowercases to 'é' with the same utf-8 length, and 'İ' (Turkish
        // dotted I) lowercases to two chars — offsets must stay valid.
        let s: ConceptSet = [Concept::new("date", ConceptRole::Content, ["june"])]
            .into_iter()
            .collect();
        let text = "İİ résumé June 1996";
        let ms = find_matches(&s, text);
        assert_eq!(ms.len(), 1);
        assert_eq!(&text[ms[0].start..ms[0].end()], "June");
    }
}
