//! Concept constraints and label-path admission.
//!
//! Section 2.2: for `c1, c2 ∈ Con`, the constraints `parent(c1, c2)`,
//! `sibling(c1, c2)` and `depth(c1) ⊙ d` (`⊙ ∈ {=, <, >}`) state that `c1`
//! is a (not necessarily direct) parent of `c2`, that `c1` and `c2` are
//! siblings, and that `c1` may only occur at a certain depth. All
//! predicates can be negated. Constraints are optional and need not be
//! complete.
//!
//! Section 4.2 adds two experiment-level constraint classes we also model:
//! a concept name cannot appear more than once along any label path
//! ([`Constraint::NoRepeat`]), and a global maximum depth
//! ([`Constraint::MaxDepth`]).

use webre_substrate::json::{FromJson, Json, JsonError, ToJson};
use webre_substrate::{impl_json_enum_unit, impl_json_struct};

/// Depth comparator for `depth(c) ⊙ d`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Comparator {
    Eq,
    Lt,
    Gt,
}

impl_json_enum_unit!(Comparator { Eq, Lt, Gt });

impl Comparator {
    fn test(self, lhs: usize, rhs: usize) -> bool {
        match self {
            Comparator::Eq => lhs == rhs,
            Comparator::Lt => lhs < rhs,
            Comparator::Gt => lhs > rhs,
        }
    }
}

/// One concept constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Constraint {
    /// `parent(ancestor, descendant)`: on any label path containing
    /// `descendant`, `ancestor` must occur earlier (negated: must not).
    Parent {
        ancestor: String,
        descendant: String,
        negated: bool,
    },
    /// `sibling(a, b)`: `a` and `b` occur at the same level of abstraction.
    /// Sibling constraints do not restrict label paths; they guide token
    /// decomposition and grouping (negated: the two must not be siblings).
    Sibling { a: String, b: String, negated: bool },
    /// `depth(concept) ⊙ depth` with the root at depth 0
    /// (negated: the comparison must not hold).
    Depth {
        concept: String,
        cmp: Comparator,
        depth: usize,
        negated: bool,
    },
    /// A concept name cannot appear more than once along any label path.
    NoRepeat,
    /// No concept may occur at a depth greater than the given bound.
    MaxDepth(usize),
}

impl Constraint {
    /// `parent(c1, c2)` constructor.
    pub fn parent(ancestor: impl Into<String>, descendant: impl Into<String>) -> Self {
        Constraint::Parent {
            ancestor: ancestor.into(),
            descendant: descendant.into(),
            negated: false,
        }
    }

    /// `sibling(a, b)` constructor.
    pub fn sibling(a: impl Into<String>, b: impl Into<String>) -> Self {
        Constraint::Sibling {
            a: a.into(),
            b: b.into(),
            negated: false,
        }
    }

    /// `depth(c) ⊙ d` constructor.
    pub fn depth(concept: impl Into<String>, cmp: Comparator, depth: usize) -> Self {
        Constraint::Depth {
            concept: concept.into(),
            cmp,
            depth,
            negated: false,
        }
    }

    /// Returns the negated form of this constraint (no-op for the
    /// experiment-level `NoRepeat`/`MaxDepth` classes).
    pub fn negate(mut self) -> Self {
        match &mut self {
            Constraint::Parent { negated, .. }
            | Constraint::Sibling { negated, .. }
            | Constraint::Depth { negated, .. } => *negated = !*negated,
            Constraint::NoRepeat | Constraint::MaxDepth(_) => {}
        }
        self
    }
}

// JSON form follows serde's externally-tagged convention so existing
// domain files keep parsing: unit variants are name strings
// (`"NoRepeat"`), the newtype variant is a one-member object
// (`{"MaxDepth": 3}`), and struct variants nest their fields
// (`{"Parent": {"ancestor": ..., "descendant": ..., "negated": ...}}`).
impl ToJson for Constraint {
    fn to_json(&self) -> Json {
        let tagged = |tag: &str, body: Json| Json::Obj(vec![(tag.to_owned(), body)]);
        match self {
            Constraint::Parent {
                ancestor,
                descendant,
                negated,
            } => tagged(
                "Parent",
                Json::Obj(vec![
                    ("ancestor".to_owned(), ancestor.to_json()),
                    ("descendant".to_owned(), descendant.to_json()),
                    ("negated".to_owned(), negated.to_json()),
                ]),
            ),
            Constraint::Sibling { a, b, negated } => tagged(
                "Sibling",
                Json::Obj(vec![
                    ("a".to_owned(), a.to_json()),
                    ("b".to_owned(), b.to_json()),
                    ("negated".to_owned(), negated.to_json()),
                ]),
            ),
            Constraint::Depth {
                concept,
                cmp,
                depth,
                negated,
            } => tagged(
                "Depth",
                Json::Obj(vec![
                    ("concept".to_owned(), concept.to_json()),
                    ("cmp".to_owned(), cmp.to_json()),
                    ("depth".to_owned(), depth.to_json()),
                    ("negated".to_owned(), negated.to_json()),
                ]),
            ),
            Constraint::NoRepeat => Json::Str("NoRepeat".to_owned()),
            Constraint::MaxDepth(max) => tagged("MaxDepth", max.to_json()),
        }
    }
}

impl FromJson for Constraint {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        fn field<T: FromJson>(body: &Json, tag: &str, name: &str) -> Result<T, JsonError> {
            body.get(name)
                .ok_or_else(|| JsonError(format!("Constraint::{tag} is missing \"{name}\"")))
                .and_then(FromJson::from_json)
                .map_err(|e| JsonError(format!("Constraint::{tag}.{name}: {}", e.0)))
        }
        match value {
            Json::Str(s) if s == "NoRepeat" => Ok(Constraint::NoRepeat),
            Json::Obj(members) if members.len() == 1 => {
                let (tag, body) = &members[0];
                match tag.as_str() {
                    "Parent" => Ok(Constraint::Parent {
                        ancestor: field(body, "Parent", "ancestor")?,
                        descendant: field(body, "Parent", "descendant")?,
                        negated: field(body, "Parent", "negated")?,
                    }),
                    "Sibling" => Ok(Constraint::Sibling {
                        a: field(body, "Sibling", "a")?,
                        b: field(body, "Sibling", "b")?,
                        negated: field(body, "Sibling", "negated")?,
                    }),
                    "Depth" => Ok(Constraint::Depth {
                        concept: field(body, "Depth", "concept")?,
                        cmp: field(body, "Depth", "cmp")?,
                        depth: field(body, "Depth", "depth")?,
                        negated: field(body, "Depth", "negated")?,
                    }),
                    "MaxDepth" => FromJson::from_json(body)
                        .map(Constraint::MaxDepth)
                        .map_err(|e| JsonError(format!("Constraint::MaxDepth: {}", e.0))),
                    other => Err(JsonError(format!("unknown Constraint variant {other:?}"))),
                }
            }
            other => Err(JsonError(format!("invalid Constraint: {other}"))),
        }
    }
}

/// A collection of constraints with admission checks.
#[derive(Clone, Debug, Default)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
}

impl_json_struct!(ConstraintSet { constraints });

impl ConstraintSet {
    /// Creates an empty (fully permissive) set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a constraint.
    pub fn add(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether the set has no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Iterates over the constraints.
    pub fn iter(&self) -> impl Iterator<Item = &Constraint> {
        self.constraints.iter()
    }

    /// Whether a root label path (`path[0]` is the root, depth 0) is
    /// admissible under every constraint.
    pub fn admits_path(&self, path: &[&str]) -> bool {
        self.constraints.iter().all(|c| match c {
            Constraint::Parent {
                ancestor,
                descendant,
                negated,
            } => {
                let ok = path
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| *l == descendant)
                    .all(|(i, _)| path[..i].iter().any(|l| l == ancestor));
                if *negated {
                    // Negated: ancestor must never precede descendant.
                    path.iter()
                        .enumerate()
                        .filter(|(_, l)| *l == descendant)
                        .all(|(i, _)| !path[..i].iter().any(|l| l == ancestor))
                } else {
                    ok
                }
            }
            Constraint::Sibling { .. } => true, // does not constrain paths
            Constraint::Depth {
                concept,
                cmp,
                depth,
                negated,
            } => path
                .iter()
                .enumerate()
                .filter(|(_, l)| *l == concept)
                .all(|(i, _)| cmp.test(i, *depth) != *negated),
            Constraint::NoRepeat => {
                path.iter()
                    .all(|l| path.iter().filter(|m| *m == l).count() == 1)
            }
            Constraint::MaxDepth(max) => path.len() <= max + 1,
        })
    }

    /// Whether two concepts may be siblings (only negated sibling
    /// constraints forbid it).
    pub fn admits_siblings(&self, x: &str, y: &str) -> bool {
        self.constraints.iter().all(|c| match c {
            Constraint::Sibling { a, b, negated: true } => {
                !((a == x && b == y) || (a == y && b == x))
            }
            _ => true,
        })
    }

    /// Whether the constraints assert a positive sibling relationship
    /// between two concepts (used as a hint by token decomposition).
    pub fn asserts_siblings(&self, x: &str, y: &str) -> bool {
        self.constraints.iter().any(|c| {
            matches!(c, Constraint::Sibling { a, b, negated: false }
                if (a == x && b == y) || (a == y && b == x))
        })
    }
}

impl FromIterator<Constraint> for ConstraintSet {
    fn from_iter<T: IntoIterator<Item = Constraint>>(iter: T) -> Self {
        ConstraintSet {
            constraints: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_admits_everything() {
        let s = ConstraintSet::new();
        assert!(s.admits_path(&["resume", "education", "degree"]));
        assert!(s.admits_siblings("a", "b"));
    }

    #[test]
    fn parent_constraint_requires_ancestor() {
        let s: ConstraintSet = [Constraint::parent("education", "degree")]
            .into_iter()
            .collect();
        assert!(s.admits_path(&["resume", "education", "degree"]));
        assert!(s.admits_path(&["resume", "education"]));
        assert!(s.admits_path(&["resume", "contact"]));
        assert!(!s.admits_path(&["resume", "degree"]));
        assert!(!s.admits_path(&["resume", "degree", "education"]));
    }

    #[test]
    fn negated_parent_forbids_nesting() {
        let s: ConstraintSet = [Constraint::parent("contact", "degree").negate()]
            .into_iter()
            .collect();
        assert!(s.admits_path(&["resume", "education", "degree"]));
        assert!(!s.admits_path(&["resume", "contact", "degree"]));
    }

    #[test]
    fn depth_eq_constraint() {
        let s: ConstraintSet = [Constraint::depth("education", Comparator::Eq, 1)]
            .into_iter()
            .collect();
        assert!(s.admits_path(&["resume", "education"]));
        assert!(!s.admits_path(&["resume", "contact", "education"]));
        // Paths without the concept are unconstrained.
        assert!(s.admits_path(&["resume", "contact", "phone"]));
    }

    #[test]
    fn depth_gt_constraint() {
        let s: ConstraintSet = [Constraint::depth("degree", Comparator::Gt, 1)]
            .into_iter()
            .collect();
        assert!(!s.admits_path(&["resume", "degree"]));
        assert!(s.admits_path(&["resume", "education", "degree"]));
    }

    #[test]
    fn negated_depth() {
        let s: ConstraintSet = [Constraint::depth("date", Comparator::Eq, 1).negate()]
            .into_iter()
            .collect();
        assert!(!s.admits_path(&["resume", "date"]));
        assert!(s.admits_path(&["resume", "education", "date"]));
    }

    #[test]
    fn no_repeat() {
        let s: ConstraintSet = [Constraint::NoRepeat].into_iter().collect();
        assert!(s.admits_path(&["resume", "education", "degree"]));
        assert!(!s.admits_path(&["resume", "education", "education"]));
        assert!(!s.admits_path(&["resume", "a", "b", "a"]));
    }

    #[test]
    fn max_depth() {
        let s: ConstraintSet = [Constraint::MaxDepth(2)].into_iter().collect();
        assert!(s.admits_path(&["r"]));
        assert!(s.admits_path(&["r", "a", "b"]));
        assert!(!s.admits_path(&["r", "a", "b", "c"]));
    }

    #[test]
    fn sibling_constraints() {
        let s: ConstraintSet = [
            Constraint::sibling("degree", "date"),
            Constraint::sibling("objective", "gpa").negate(),
        ]
        .into_iter()
        .collect();
        assert!(s.asserts_siblings("degree", "date"));
        assert!(s.asserts_siblings("date", "degree"));
        assert!(!s.asserts_siblings("degree", "gpa"));
        assert!(s.admits_siblings("degree", "date"));
        assert!(!s.admits_siblings("objective", "gpa"));
        assert!(!s.admits_siblings("gpa", "objective"));
        // Sibling constraints never restrict paths.
        assert!(s.admits_path(&["r", "objective", "gpa"]));
    }

    #[test]
    fn combined_constraints_all_must_hold() {
        let s: ConstraintSet = [
            Constraint::NoRepeat,
            Constraint::MaxDepth(3),
            Constraint::depth("education", Comparator::Eq, 1),
        ]
        .into_iter()
        .collect();
        assert!(s.admits_path(&["resume", "education", "degree"]));
        assert!(!s.admits_path(&["resume", "education", "education"]));
        assert!(!s.admits_path(&["resume", "skills", "education"]));
    }
}
