//! Concepts and concept sets.

use webre_substrate::json::{FromJson, Json, JsonError, ToJson};
use webre_substrate::{impl_json_enum_unit, impl_json_struct};

/// The role a concept plays in the document hierarchy (Section 4.2 divides
/// the resume concepts into *title names* and *content names*).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConceptRole {
    /// Likely a section title; can only occur as a first-level node.
    Title,
    /// Describes the content of a title; only occurs at depth > 1.
    Content,
    /// No depth commitment.
    Generic,
}

/// A topic concept: a name (used as the XML element name after
/// [`webre_xml::name::sanitize`]-style cleanup by the converter) plus its
/// concept instances.
///
/// Per the paper, the instance set always includes the concept name itself;
/// [`Concept::new`] enforces this.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Concept {
    pub name: String,
    pub role: ConceptRole,
    /// Text patterns/keywords identifying the concept, including its name.
    pub instances: Vec<String>,
}

impl Concept {
    /// Creates a concept, prepending the concept name to the instance list
    /// if it is not already present (case-insensitively).
    pub fn new(
        name: impl Into<String>,
        role: ConceptRole,
        instances: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        let name = name.into();
        let mut list: Vec<String> = instances.into_iter().map(Into::into).collect();
        if !list.iter().any(|i| i.eq_ignore_ascii_case(&name)) {
            list.insert(0, name.clone());
        }
        Concept {
            name,
            role,
            instances: list,
        }
    }

    /// Number of instances (including the name itself).
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }
}

impl_json_enum_unit!(ConceptRole { Title, Content, Generic });
impl_json_struct!(Concept {
    name,
    role,
    instances
});

/// The full set of topic concepts for a domain.
#[derive(Clone, Debug, Default)]
pub struct ConceptSet {
    concepts: Vec<Concept>,
}

impl_json_struct!(ConceptSet { concepts });

impl ConceptSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a concept. Replaces an existing concept with the same name.
    pub fn add(&mut self, concept: Concept) {
        match self.concepts.iter_mut().find(|c| c.name == concept.name) {
            Some(existing) => *existing = concept,
            None => self.concepts.push(concept),
        }
    }

    /// Looks a concept up by name.
    pub fn get(&self, name: &str) -> Option<&Concept> {
        self.concepts.iter().find(|c| c.name == name)
    }

    /// Whether a concept with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Iterates over the concepts in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Concept> {
        self.concepts.iter()
    }

    /// Concept names in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.concepts.iter().map(|c| c.name.as_str())
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Total number of concept instances across all concepts.
    pub fn total_instances(&self) -> usize {
        self.concepts.iter().map(Concept::instance_count).sum()
    }

    /// Names with a given role.
    pub fn names_with_role(&self, role: ConceptRole) -> Vec<&str> {
        self.concepts
            .iter()
            .filter(|c| c.role == role)
            .map(|c| c.name.as_str())
            .collect()
    }
}

impl FromIterator<Concept> for ConceptSet {
    fn from_iter<T: IntoIterator<Item = Concept>>(iter: T) -> Self {
        let mut set = ConceptSet::new();
        for c in iter {
            set.add(c);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_is_always_an_instance() {
        let c = Concept::new("institution", ConceptRole::Content, ["University", "College"]);
        assert_eq!(c.instances[0], "institution");
        assert_eq!(c.instance_count(), 3);
    }

    #[test]
    fn name_not_duplicated_if_present() {
        let c = Concept::new("date", ConceptRole::Content, ["Date", "January"]);
        assert_eq!(c.instance_count(), 2);
    }

    #[test]
    fn set_add_replaces_by_name() {
        let mut s = ConceptSet::new();
        s.add(Concept::new("a", ConceptRole::Title, ["x"]));
        s.add(Concept::new("a", ConceptRole::Title, ["x", "y"]));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get("a").unwrap().instance_count(), 3);
    }

    #[test]
    fn totals_and_roles() {
        let s: ConceptSet = [
            Concept::new("education", ConceptRole::Title, ["academics"]),
            Concept::new("degree", ConceptRole::Content, ["B.S.", "M.S."]),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_instances(), 2 + 3);
        assert_eq!(s.names_with_role(ConceptRole::Title), ["education"]);
        assert_eq!(s.names_with_role(ConceptRole::Content), ["degree"]);
        assert!(s.contains("degree"));
        assert!(!s.contains("gpa"));
    }
}

/// A complete topic domain: concepts plus optional constraints, as a user
/// would author it in JSON (the paper's "minimal user input").
#[derive(Clone, Debug, Default)]
pub struct Domain {
    pub concepts: Vec<Concept>,
    /// Optional; an absent `"constraints"` member reads as empty.
    pub constraints: Vec<crate::constraints::Constraint>,
}

impl ToJson for Domain {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("concepts".to_owned(), self.concepts.to_json()),
            ("constraints".to_owned(), self.constraints.to_json()),
        ])
    }
}

impl FromJson for Domain {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        if !matches!(value, Json::Obj(_)) {
            return Err(JsonError(format!("expected Domain object, got {value}")));
        }
        let concepts = value
            .get("concepts")
            .ok_or_else(|| JsonError("Domain is missing \"concepts\"".to_owned()))
            .and_then(|v| {
                FromJson::from_json(v)
                    .map_err(|e| JsonError(format!("Domain.concepts: {}", e.0)))
            })?;
        let constraints = match value.get("constraints") {
            Some(v) => FromJson::from_json(v)
                .map_err(|e| JsonError(format!("Domain.constraints: {}", e.0)))?,
            None => Vec::new(),
        };
        Ok(Domain {
            concepts,
            constraints,
        })
    }
}

impl Domain {
    /// Loads a domain from JSON text.
    pub fn from_json(json: &str) -> Result<Self, String> {
        webre_substrate::json::from_str(json).map_err(|e| e.0)
    }

    /// Serializes the domain to pretty JSON.
    pub fn to_json(&self) -> String {
        webre_substrate::json::to_string_pretty(self)
    }

    /// The concept set.
    pub fn concept_set(&self) -> ConceptSet {
        self.concepts.iter().cloned().collect()
    }

    /// The constraint set.
    pub fn constraint_set(&self) -> crate::constraints::ConstraintSet {
        self.constraints.iter().cloned().collect()
    }
}

#[cfg(test)]
mod domain_tests {
    use super::*;
    use crate::constraints::{Comparator, Constraint};

    fn sample() -> Domain {
        Domain {
            concepts: vec![
                Concept::new("listing", ConceptRole::Title, ["for sale", "property"]),
                Concept::new("price", ConceptRole::Content, ["$", "USD", "asking"]),
            ],
            constraints: vec![
                Constraint::NoRepeat,
                Constraint::depth("price", Comparator::Gt, 0),
            ],
        }
    }

    #[test]
    fn json_round_trip() {
        let d = sample();
        let json = d.to_json();
        let back = Domain::from_json(&json).unwrap();
        assert_eq!(back.concepts, d.concepts);
        assert_eq!(back.constraints, d.constraints);
    }

    #[test]
    fn sets_are_usable() {
        let d = sample();
        let set = d.concept_set();
        assert_eq!(set.len(), 2);
        assert!(set.contains("price"));
        let cs = d.constraint_set();
        assert!(!cs.admits_path(&["listing", "listing"]));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(Domain::from_json("{not json").is_err());
        assert!(Domain::from_json("[]").is_err());
    }

    #[test]
    fn constraints_default_to_empty() {
        let d = Domain::from_json(r#"{"concepts": []}"#).unwrap();
        assert!(d.constraints.is_empty());
    }
}
