//! Metamorphic invariants over schema discovery: transformations of the
//! corpus with a known effect on the mining outcome.
//!
//! Unlike the differential oracles, these need no reference
//! implementation — the *relation between two runs* of the production
//! miner is the specification.

use crate::oracles::random_xml_corpus;
use webre_schema::{doc_frequency, extract_paths, DocPaths, FrequentPathMiner, MajoritySchema};
use webre_substrate::rand::rngs::StdRng;
use webre_substrate::rand::seq::SliceRandom;
use webre_substrate::rand::Rng;

fn mine(corpus: &[DocPaths]) -> Option<MajoritySchema> {
    FrequentPathMiner {
        sup_threshold: 0.5,
        ratio_threshold: 0.3,
        constraints: None,
        max_len: None,
    }
    .mine(corpus)
    .map(|o| o.schema)
}

/// The full path/support view of a schema, for exact comparison.
fn schema_view(schema: &MajoritySchema) -> Vec<(Vec<String>, f64)> {
    let mut view: Vec<(Vec<String>, f64)> = schema
        .paths()
        .into_iter()
        .map(|p| {
            let node = schema.find(&p).expect("path from schema");
            (p, schema.tree.value(node).support)
        })
        .collect();
    view.sort_by(|a, b| a.0.cmp(&b.0));
    view
}

/// Invariant 1 — removing a document decrements the document frequency of
/// exactly the paths that document contains, and never increases any
/// path's frequency.
pub fn remove_document(rng: &mut StdRng) -> Result<(), String> {
    let docs = random_xml_corpus(rng);
    let corpus: Vec<DocPaths> = docs.iter().map(extract_paths).collect();
    let victim = rng.gen_range(0..corpus.len());
    let reduced: Vec<DocPaths> = corpus
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != victim)
        .map(|(_, d)| d.clone())
        .collect();
    // Every path known to the full corpus.
    let mut universe: Vec<&Vec<String>> =
        corpus.iter().flat_map(|d| d.paths.iter()).collect();
    universe.sort();
    universe.dedup();
    for path in universe {
        let before = doc_frequency(&corpus, path);
        let after = doc_frequency(&reduced, path);
        let expected = before - usize::from(corpus[victim].contains(path));
        if after != expected {
            return Err(format!(
                "removing document {victim} changed freq({}) from {before} to {after}, \
                 expected {expected}",
                path.join("/")
            ));
        }
        if after > before {
            return Err(format!(
                "removing a document increased freq({}) from {before} to {after}",
                path.join("/")
            ));
        }
    }
    Ok(())
}

/// Invariant 2 — duplicating the corpus preserves the majority schema
/// exactly: every support is `2f/2n = f/n`, so paths and supports are
/// bit-identical.
pub fn duplicate_corpus(rng: &mut StdRng) -> Result<(), String> {
    let docs = random_xml_corpus(rng);
    let corpus: Vec<DocPaths> = docs.iter().map(extract_paths).collect();
    let doubled: Vec<DocPaths> = corpus.iter().chain(corpus.iter()).cloned().collect();
    match (mine(&corpus), mine(&doubled)) {
        (None, None) => Ok(()),
        (Some(a), Some(b)) => {
            let (va, vb) = (schema_view(&a), schema_view(&b));
            if va != vb {
                return Err(format!(
                    "duplicating the corpus changed the schema\n  single: {va:?}\n  doubled: {vb:?}"
                ));
            }
            Ok(())
        }
        (a, b) => Err(format!(
            "duplicating the corpus changed mineability: single={}, doubled={}",
            a.is_some(),
            b.is_some()
        )),
    }
}

/// Invariant 3 — permuting document order is a complete no-op: same
/// schema paths, same supports, and the same derived DTD.
pub fn permute_order(rng: &mut StdRng) -> Result<(), String> {
    let docs = random_xml_corpus(rng);
    let corpus: Vec<DocPaths> = docs.iter().map(extract_paths).collect();
    let mut shuffled = corpus.clone();
    shuffled.shuffle(rng);
    match (mine(&corpus), mine(&shuffled)) {
        (None, None) => Ok(()),
        (Some(a), Some(b)) => {
            let (va, vb) = (schema_view(&a), schema_view(&b));
            if va != vb {
                return Err(format!(
                    "permuting document order changed the schema\n  original: {va:?}\n  shuffled: {vb:?}"
                ));
            }
            let config = webre_schema::DtdConfig::default();
            let dtd_a = webre_schema::derive_dtd(&a, &corpus, &config);
            let dtd_b = webre_schema::derive_dtd(&b, &shuffled, &config);
            if dtd_a != dtd_b {
                return Err(format!(
                    "permuting document order changed the derived DTD\n  original:\n{}\n  shuffled:\n{}",
                    dtd_a.to_dtd_string(),
                    dtd_b.to_dtd_string()
                ));
            }
            Ok(())
        }
        (a, b) => Err(format!(
            "permuting document order changed mineability: original={}, shuffled={}",
            a.is_some(),
            b.is_some()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_substrate::rand::SeedableRng;

    #[test]
    fn invariants_hold_on_many_seeds() {
        for seed in 0..60u64 {
            remove_document(&mut StdRng::seed_from_u64(seed)).unwrap();
            duplicate_corpus(&mut StdRng::seed_from_u64(seed)).unwrap();
            permute_order(&mut StdRng::seed_from_u64(seed)).unwrap();
        }
    }
}
