//! Differential oracles and structure-aware fuzzing for the reverse
//! engineering pipeline (`webre check`).
//!
//! The crate is a self-contained, deterministic testing subsystem built
//! on `webre_substrate::rand`. It ships three families of oracles:
//!
//! - **Differential** ([`oracles`]): the production implementation is run
//!   against an independently written reference ([`reference`]) on the
//!   same random input — parse/serialize fixpoint, tidy idempotence,
//!   parallel vs sequential corpus conversion, the Brzozowski content
//!   model validator vs a backtracking position-set matcher, the
//!   anti-monotone frequent-path miner vs brute-force enumeration, the
//!   live HTTP server vs the batch pipeline, and the traced pipeline vs
//!   the untraced one (observability must be byte-for-byte invisible).
//! - **Metamorphic** ([`metamorphic`]): relations between two runs of
//!   the production miner — removing a document never increases any
//!   path's document frequency, duplicating the corpus preserves the
//!   majority schema, permuting document order is a no-op.
//! - **Fuzz** ([`fuzz`]): the full convert → discover → derive → map
//!   chain must be total over generated tag soup ([`gen`]); panicking
//!   inputs are minimized automatically ([`minimize`]).
//!
//! Everything is seed-reproducible: [`runner::run`] derives one RNG
//! stream per (oracle, case) pair, and every reported failure carries a
//! one-line `webre check --only … --seed … --iters 1` command that
//! replays it exactly.

pub mod fuzz;
pub mod gen;
pub mod metamorphic;
pub mod minimize;
pub mod oracles;
pub mod reference;
pub mod runner;

pub use runner::{run, CaseFailure, CheckConfig, CheckReport, Kind, OracleReport};
