//! Automatic input minimization (delta-debugging lite).
//!
//! When the fuzzing oracle finds an input that crashes the pipeline, the
//! raw generated document is usually hundreds of bytes of noise. This
//! module shrinks it with a ddmin-style loop: repeatedly try removing
//! chunks (halving the chunk size down to single characters) and keep any
//! removal that still reproduces the failure. The predicate is arbitrary,
//! so the same minimizer serves any string-input oracle.

/// Minimizes `input` while `fails` keeps returning `true` for it.
///
/// The predicate must be `true` for `input` itself; the returned string
/// is a (possibly equal) substring-composition of `input` that still
/// fails and that no single remaining chunk-removal can shrink further
/// at character granularity. `budget` caps predicate invocations, since
/// a crashing pipeline run can be slow.
pub fn ddmin(input: &str, mut fails: impl FnMut(&str) -> bool, budget: usize) -> String {
    debug_assert!(fails(input), "minimizing an input that does not fail");
    let mut current: Vec<char> = input.chars().collect();
    let mut spent = 0usize;
    let mut chunk = (current.len() / 2).max(1);
    while chunk >= 1 && spent < budget {
        let mut shrunk_this_round = false;
        let mut start = 0;
        while start < current.len() && spent < budget {
            let end = (start + chunk).min(current.len());
            let candidate: String = current[..start]
                .iter()
                .chain(current[end..].iter())
                .collect();
            spent += 1;
            if !candidate.is_empty() && fails(&candidate) {
                current = candidate.chars().collect();
                shrunk_this_round = true;
                // Do not advance: the next chunk slid into `start`.
            } else {
                start += chunk;
            }
        }
        if chunk == 1 && !shrunk_this_round {
            break;
        }
        if !shrunk_this_round {
            chunk /= 2;
        }
    }
    current.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_to_the_failing_core() {
        // Failure: input contains both 'x' and 'y'.
        let input = "aaaaaaaaxbbbbbbbbybcccccc";
        let out = ddmin(input, |s| s.contains('x') && s.contains('y'), 10_000);
        assert_eq!(out, "xy");
    }

    #[test]
    fn respects_budget() {
        let input = "a".repeat(64) + "x";
        let mut calls = 0usize;
        let out = ddmin(
            &input,
            |s| {
                calls += 1;
                s.contains('x')
            },
            5,
        );
        assert!(out.contains('x'));
        assert!(calls <= 6, "budget overrun: {calls}");
    }

    #[test]
    fn single_char_failure_is_fixed_point() {
        let out = ddmin("x", |s| s.contains('x'), 100);
        assert_eq!(out, "x");
    }
}
