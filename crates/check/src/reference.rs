//! Independent reference implementations the differential oracles compare
//! the production code against.
//!
//! These are deliberately written with *different algorithms* than the
//! production crates — a position-set regex matcher instead of Brzozowski
//! derivatives, and a flat enumerate-and-filter miner instead of the
//! recursive candidate-extension miner — so that a shared bug cannot hide
//! by construction.

use std::collections::BTreeSet;
use webre_schema::{doc_frequency, DocPaths, LabelPath};
use webre_xml::ContentExpr;

// ---------------------------------------------------------------------------
// Reference content-model matcher
// ---------------------------------------------------------------------------

/// All positions reachable after matching `expr` against `tokens`
/// starting from each position in `from` (sorted, deduplicated). This is
/// a naive backtracking matcher in position-set form: it explores every
/// alternative instead of taking derivatives.
fn step(expr: &ContentExpr, tokens: &[&str], from: &BTreeSet<usize>) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    for &pos in from {
        match expr {
            ContentExpr::Empty => {
                out.insert(pos);
            }
            ContentExpr::PcData => {
                // Zero or more consecutive text tokens.
                let mut p = pos;
                out.insert(p);
                while p < tokens.len() && tokens[p] == "#PCDATA" {
                    p += 1;
                    out.insert(p);
                }
            }
            ContentExpr::Name(n) => {
                if pos < tokens.len() && tokens[pos] == n {
                    out.insert(pos + 1);
                }
            }
            ContentExpr::Seq(items) => {
                let mut current: BTreeSet<usize> = [pos].into();
                for item in items {
                    current = step(item, tokens, &current);
                    if current.is_empty() {
                        break;
                    }
                }
                out.extend(current);
            }
            ContentExpr::Choice(items) => {
                let here: BTreeSet<usize> = [pos].into();
                for item in items {
                    out.extend(step(item, tokens, &here));
                }
            }
            ContentExpr::Opt(inner) => {
                out.insert(pos);
                out.extend(step(inner, tokens, &[pos].into()));
            }
            ContentExpr::Star(inner) => {
                // Iterate to a fixpoint; positions are bounded by the
                // token count so this terminates even for nullable inner
                // expressions.
                let mut seen: BTreeSet<usize> = [pos].into();
                let mut frontier = seen.clone();
                while !frontier.is_empty() {
                    let next = step(inner, tokens, &frontier);
                    frontier = next.difference(&seen).copied().collect();
                    seen.extend(frontier.iter().copied());
                }
                out.extend(seen);
            }
            ContentExpr::Plus(inner) => {
                let once = step(inner, tokens, &[pos].into());
                let star = ContentExpr::Star(inner.clone());
                out.extend(step(&star, tokens, &once));
            }
        }
    }
    out
}

/// Reference semantics for "token sequence matches content model":
/// some backtracking path consumes every token.
pub fn ref_matches(expr: &ContentExpr, tokens: &[&str]) -> bool {
    step(expr, tokens, &[0usize].into()).contains(&tokens.len())
}

/// Samples one word *from the language* of `expr` (None when the
/// expression denotes the empty language, which our generators never
/// build). Used to feed the matchers accepting inputs, not just noise.
pub fn sample_word(
    expr: &ContentExpr,
    rng: &mut webre_substrate::rand::rngs::StdRng,
) -> Vec<String> {
    use webre_substrate::rand::Rng;
    match expr {
        ContentExpr::Empty => Vec::new(),
        ContentExpr::PcData => vec!["#PCDATA"; rng.gen_range(0..=2usize)]
            .into_iter()
            .map(str::to_owned)
            .collect(),
        ContentExpr::Name(n) => vec![n.clone()],
        ContentExpr::Seq(items) => items.iter().flat_map(|i| sample_word(i, rng)).collect(),
        ContentExpr::Choice(items) => {
            let i = rng.gen_range(0..items.len());
            sample_word(&items[i], rng)
        }
        ContentExpr::Opt(inner) => {
            if rng.gen_bool(0.5) {
                sample_word(inner, rng)
            } else {
                Vec::new()
            }
        }
        ContentExpr::Star(inner) => (0..rng.gen_range(0..=2u32))
            .flat_map(|_| sample_word(inner, rng))
            .collect(),
        ContentExpr::Plus(inner) => (0..rng.gen_range(1..=3u32))
            .flat_map(|_| sample_word(inner, rng))
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Reference frequent-path miner
// ---------------------------------------------------------------------------

/// The reference mining result: the majority root plus every frequent
/// path with its document support.
#[derive(Clone, Debug, PartialEq)]
pub struct RefMined {
    pub root_label: String,
    /// Frequent paths with their support fractions, keyed for set
    /// comparison against the production schema.
    pub paths: Vec<(LabelPath, f64)>,
}

/// Brute-force enumerate-and-count miner: collect *every* label path that
/// occurs anywhere in the corpus, then keep a path iff all of
///
/// * it starts at the majority root,
/// * its support is at least `sup_threshold`,
/// * its support ratio w.r.t. its parent is at least `ratio_threshold`,
/// * its parent is kept (frequency is only anti-monotone along kept
///   prefixes — same closure the production miner walks), and
/// * it is no longer than `max_len` nodes, when set.
///
/// Returns `None` exactly when the production miner does: empty corpus or
/// the root itself below the support threshold.
pub fn ref_mine(
    corpus: &[DocPaths],
    sup_threshold: f64,
    ratio_threshold: f64,
    max_len: Option<usize>,
) -> Option<RefMined> {
    if corpus.is_empty() {
        return None;
    }
    // Majority root: highest document count, ties to the lexicographically
    // smallest label.
    let roots: BTreeSet<&str> = corpus.iter().map(|d| d.root_label.as_str()).collect();
    let root_label = roots
        .iter()
        .map(|label| {
            let count = corpus.iter().filter(|d| d.root_label == *label).count();
            (count, *label)
        })
        // max_by_key on (count, Reverse(label)) — spelled out to keep the
        // tie-break direction obvious.
        .fold(None::<(usize, &str)>, |best, (count, label)| match best {
            None => Some((count, label)),
            Some((bc, bl)) => {
                if count > bc || (count == bc && label < bl) {
                    Some((count, label))
                } else {
                    Some((bc, bl))
                }
            }
        })
        .map(|(_, label)| label.to_owned())
        .expect("non-empty corpus");

    let n = corpus.len() as f64;
    let support = |path: &LabelPath| doc_frequency(corpus, path) as f64 / n;

    let root_path = vec![root_label.clone()];
    if support(&root_path) < sup_threshold {
        return None;
    }

    // Every path present in any document, shortest first so parents are
    // decided before their extensions.
    let mut universe: Vec<&LabelPath> = corpus.iter().flat_map(|d| d.paths.iter()).collect();
    universe.sort();
    universe.dedup();
    universe.sort_by_key(|p| p.len());

    let mut kept: Vec<(LabelPath, f64)> = vec![(root_path.clone(), support(&root_path))];
    let is_kept = |kept: &[(LabelPath, f64)], p: &[String]| kept.iter().any(|(k, _)| k == p);
    for path in universe {
        if path.len() < 2 || path[0] != root_label {
            continue;
        }
        if max_len.is_some_and(|m| path.len() > m) {
            continue;
        }
        let parent = &path[..path.len() - 1];
        if !is_kept(&kept, parent) {
            continue;
        }
        let sup = support(path);
        if sup < sup_threshold {
            continue;
        }
        let parent_sup = kept
            .iter()
            .find(|(k, _)| k == parent)
            .map(|(_, s)| *s)
            .expect("parent kept");
        let ratio = if parent_sup > 0.0 { sup / parent_sup } else { 0.0 };
        if ratio < ratio_threshold {
            continue;
        }
        kept.push((path.clone(), sup));
    }
    kept.sort_by(|a, b| a.0.cmp(&b.0));
    Some(RefMined {
        root_label,
        paths: kept,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_xml::dtd::parse_content_expr;

    fn m(model: &str, tokens: &[&str]) -> bool {
        ref_matches(&parse_content_expr(model).unwrap(), tokens)
    }

    #[test]
    fn reference_matcher_basics() {
        assert!(m("(a, b)", &["a", "b"]));
        assert!(!m("(a, b)", &["b", "a"]));
        assert!(m("(a | b)", &["b"]));
        assert!(m("(a*)", &[]));
        assert!(m("((a, b)+, c)", &["a", "b", "a", "b", "c"]));
        assert!(!m("((a, b)+, c)", &["a", "b", "b", "c"]));
        assert!(m("(#PCDATA)", &["#PCDATA", "#PCDATA"]));
        assert!(!m("(#PCDATA)", &["a"]));
        assert!(m("EMPTY", &[]));
        assert!(!m("EMPTY", &["a"]));
    }

    #[test]
    fn star_of_nullable_terminates() {
        // (a?)* is nullable inside a star: the fixpoint loop must stop.
        assert!(m("((a?)*)", &["a", "a"]));
        assert!(m("((a?)*)", &[]));
        assert!(!m("((a?)*)", &["b"]));
    }

    #[test]
    fn sampled_words_are_accepted() {
        use webre_substrate::rand::rngs::StdRng;
        use webre_substrate::rand::SeedableRng;
        let expr = parse_content_expr("((#PCDATA), (a | b)+, c?, (d, e)*)").unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let word = sample_word(&expr, &mut rng);
            let refs: Vec<&str> = word.iter().map(String::as_str).collect();
            assert!(ref_matches(&expr, &refs), "sampled word rejected: {refs:?}");
        }
    }

    #[test]
    fn ref_mine_matches_hand_computation() {
        use webre_schema::extract_paths;
        let corpus: Vec<DocPaths> = [
            "<r><a><x/></a><b/></r>",
            "<r><a/><b/></r>",
            "<r><a/></r>",
        ]
        .iter()
        .map(|x| extract_paths(&webre_xml::parse_xml(x).unwrap()))
        .collect();
        let mined = ref_mine(&corpus, 0.5, 0.0, None).unwrap();
        assert_eq!(mined.root_label, "r");
        let paths: Vec<String> = mined.paths.iter().map(|(p, _)| p.join("/")).collect();
        // a in 3/3, b in 2/3, a/x in 1/3 (below 0.5).
        assert_eq!(paths, ["r", "r/a", "r/b"]);
    }

    #[test]
    fn ref_mine_requires_frequent_prefix() {
        use webre_schema::extract_paths;
        // x/y has support 0.5 but its parent x only 0.5 too; with
        // threshold 0.6 the parent is cut so y must not survive even if
        // some different threshold combination would admit it.
        let corpus: Vec<DocPaths> = ["<r><x><y/></x></r>", "<r><z/></r>"]
            .iter()
            .map(|x| extract_paths(&webre_xml::parse_xml(x).unwrap()))
            .collect();
        let mined = ref_mine(&corpus, 0.6, 0.0, None).unwrap();
        let paths: Vec<String> = mined.paths.iter().map(|(p, _)| p.join("/")).collect();
        assert_eq!(paths, ["r"]);
    }

    #[test]
    fn ref_mine_none_cases() {
        assert!(ref_mine(&[], 0.5, 0.0, None).is_none());
        use webre_schema::extract_paths;
        let corpus: Vec<DocPaths> = ["<r/>", "<s/>", "<t/>"]
            .iter()
            .map(|x| extract_paths(&webre_xml::parse_xml(x).unwrap()))
            .collect();
        // Majority root (lexicographic tie-break: "r") has support 1/3.
        assert!(ref_mine(&corpus, 0.5, 0.0, None).is_none());
    }
}
