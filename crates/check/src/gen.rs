//! Structure-aware tag-soup generation and mutation.
//!
//! The generator produces the kind of HTML the paper's topic crawler
//! actually encounters: visually-marked-up legacy pages with implied end
//! tags, unclosed lists, entity soup, attribute noise and stray
//! delimiters. Two flavors are produced:
//!
//! * [`soup_document`] — arbitrary tag soup, structure-aware (the tag
//!   pool and nesting shape mirror [`webre_html::taxonomy`]) but with no
//!   topical content; drives the parser/tidy/serializer oracles;
//! * [`resume_like`] — a resume-shaped document (headings, lists,
//!   tables) whose text draws from the resume domain vocabulary, so the
//!   conversion and schema-discovery oracles see inputs that actually
//!   exercise the restructuring rules;
//! * [`mutate`] — a byte/region mutator applied on top of either flavor
//!   (duplicate a span, delete a span, splice delimiters or entities),
//!   which is what pushes the corpus off the happy path.
//!
//! Everything draws from a caller-supplied [`StdRng`], so a case seed
//! fully determines the generated input.

use webre_substrate::rand::rngs::StdRng;
use webre_substrate::rand::seq::SliceRandom;
use webre_substrate::rand::Rng;

/// Block-level container tags the generator nests.
const BLOCK_TAGS: &[&str] = &[
    "div", "p", "blockquote", "center", "ul", "ol", "dl", "table", "h1", "h2", "h3", "h4", "pre",
];

/// Tags that only make sense inside a specific parent; the generator
/// emits them both correctly nested and stray (tag soup!).
const CONTEXT_TAGS: &[&str] = &["li", "dt", "dd", "tr", "td", "th"];

/// Text-level tags.
const INLINE_TAGS: &[&str] = &["b", "i", "em", "strong", "font", "a", "span", "code", "tt", "u"];

/// Void elements.
const VOID_TAGS: &[&str] = &["br", "hr", "img", "input"];

/// Entity soup: valid, numeric, unterminated and bogus references.
const ENTITIES: &[&str] = &[
    "&amp;", "&lt;", "&gt;", "&quot;", "&nbsp;", "&#65;", "&#x41;", "&copy;", "&amp", "&lt",
    "&bogus;", "&#xZZ;", "&", "&&amp;;",
];

/// Delimiter storms: fragments that stress the lexer's tag detection.
const DELIMITERS: &[&str] = &[
    "<", ">", "<<", ">>", "</>", "< p>", "<p<div>", "<!>", "<!-", "<!-- unterminated",
    "<a href=>", "=\"", "'", "-->",
];

/// Plain words for text nodes.
const WORDS: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "omega", "lorem", "ipsum", "data", "web", "page",
    "structure", "visual", "semantic", "legacy", "markup",
];

/// Resume-domain vocabulary: heading sentences and line content that the
/// concept-instance rule can actually identify, so conversion produces
/// non-trivial XML structure.
const RESUME_HEADINGS: &[&str] = &[
    "Education",
    "Educational Background",
    "Experience",
    "Employment History",
    "Contact Information",
    "Objective",
    "Skills",
    "Honors and Awards",
    "Relevant Coursework",
    "Activities",
    "References",
    "Summary of Qualifications",
];

const RESUME_LINES: &[&str] = &[
    "Stanford University, M.S., June 1996",
    "University of California at Davis, B.S., June 1994",
    "Foothill College, A.A., June 1992",
    "Oracle Corporation, Principal Engineer, January 1993 - present",
    "IBM Research, Summer Intern, 1991",
    "(916) 555-0142",
    "88 Birch Road, Sacramento, CA 94203",
    "jane.doe@example.net",
    "C, C++, Java, SQL",
    "National Merit Scholarship, 1983",
    "Database Systems; Operating Systems; Compilers",
    "Dean's List, 1990",
    "Seeking a senior engineering position",
];

/// A short run of random words, occasionally spiced with entity soup.
fn text(rng: &mut StdRng) -> String {
    let n = rng.gen_range(1..=5);
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        if rng.gen_bool(0.15) {
            out.push_str(ENTITIES.choose(rng).expect("non-empty"));
        } else {
            out.push_str(WORDS.choose(rng).expect("non-empty"));
        }
    }
    out
}

/// A noisy attribute list: quoted, single-quoted, unquoted, bare and
/// value-with-specials forms.
fn attrs(rng: &mut StdRng) -> String {
    let mut out = String::new();
    for _ in 0..rng.gen_range(0..=2u32) {
        match rng.gen_range(0..=4u32) {
            0 => out.push_str(" class=\"x y\""),
            1 => out.push_str(" id=a1"),
            2 => out.push_str(" checked"),
            3 => out.push_str(" title=\"a &amp; b < c\""),
            _ => out.push_str(" align='center'"),
        }
    }
    out
}

/// Recursively emits one element (or text/void/stray fragment) into `out`.
fn fragment(rng: &mut StdRng, out: &mut String, depth: u32) {
    let roll = rng.gen_range(0..=99u32);
    if depth == 0 || roll < 30 {
        out.push_str(&text(rng));
        return;
    }
    if roll < 38 {
        let tag = VOID_TAGS.choose(rng).expect("non-empty");
        out.push('<');
        out.push_str(tag);
        out.push_str(&attrs(rng));
        out.push('>');
        return;
    }
    if roll < 45 {
        // Delimiter storm or stray context tag: the tag-soup part.
        if rng.gen_bool(0.5) {
            out.push_str(DELIMITERS.choose(rng).expect("non-empty"));
        } else {
            let tag = CONTEXT_TAGS.choose(rng).expect("non-empty");
            out.push('<');
            out.push_str(tag);
            out.push('>');
            out.push_str(&text(rng));
        }
        return;
    }
    if roll < 60 {
        // Inline element, sometimes left unclosed.
        let tag = INLINE_TAGS.choose(rng).expect("non-empty");
        out.push('<');
        out.push_str(tag);
        out.push_str(&attrs(rng));
        out.push('>');
        fragment(rng, out, depth - 1);
        if rng.gen_bool(0.8) {
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
        return;
    }
    // Block container. Lists/tables get their context children (with the
    // end tags frequently implied, as legacy markup does).
    let tag = *BLOCK_TAGS.choose(rng).expect("non-empty");
    out.push('<');
    out.push_str(tag);
    out.push_str(&attrs(rng));
    out.push('>');
    let children = rng.gen_range(1..=3u32);
    for _ in 0..children {
        match tag {
            "ul" | "ol" => {
                out.push_str("<li>");
                fragment(rng, out, depth - 1);
                if rng.gen_bool(0.4) {
                    out.push_str("</li>");
                }
            }
            "dl" => {
                out.push_str("<dt>");
                out.push_str(&text(rng));
                out.push_str("<dd>");
                fragment(rng, out, depth - 1);
            }
            "table" => {
                out.push_str("<tr>");
                for _ in 0..rng.gen_range(1..=3u32) {
                    out.push_str("<td>");
                    fragment(rng, out, depth - 1);
                    if rng.gen_bool(0.3) {
                        out.push_str("</td>");
                    }
                }
                if rng.gen_bool(0.3) {
                    out.push_str("</tr>");
                }
            }
            _ => fragment(rng, out, depth - 1),
        }
    }
    if rng.gen_bool(0.75) {
        out.push_str("</");
        out.push_str(tag);
        out.push('>');
    }
}

/// Generates one arbitrary tag-soup document.
pub fn soup_document(rng: &mut StdRng) -> String {
    let mut out = String::new();
    if rng.gen_bool(0.3) {
        out.push_str("<!DOCTYPE html>");
    }
    if rng.gen_bool(0.5) {
        out.push_str("<html><body>");
    }
    if rng.gen_bool(0.2) {
        out.push_str("<!-- generated -->");
    }
    let top = rng.gen_range(1..=5u32);
    for _ in 0..top {
        let depth = rng.gen_range(1..=4u32);
        fragment(rng, &mut out, depth);
    }
    // Closing </body></html> intentionally optional and often absent.
    if rng.gen_bool(0.2) {
        out.push_str("</body></html>");
    }
    out
}

/// Generates a resume-shaped document: H2 headings introducing sections
/// whose bodies are lists, tables or paragraphs of domain vocabulary.
pub fn resume_like(rng: &mut StdRng) -> String {
    let mut out = String::from("<html><body>");
    let sections = rng.gen_range(2..=5u32);
    let mut headings: Vec<&&str> = RESUME_HEADINGS
        .choose_multiple(rng, sections as usize)
        .collect();
    headings.shuffle(rng);
    for heading in headings {
        out.push_str("<h2>");
        out.push_str(heading);
        out.push_str("</h2>");
        match rng.gen_range(0..=2u32) {
            0 => {
                out.push_str("<ul>");
                for _ in 0..rng.gen_range(1..=3u32) {
                    out.push_str("<li>");
                    out.push_str(RESUME_LINES.choose(rng).expect("non-empty"));
                    if rng.gen_bool(0.5) {
                        out.push_str("</li>");
                    }
                }
                out.push_str("</ul>");
            }
            1 => {
                out.push_str("<table>");
                for _ in 0..rng.gen_range(1..=2u32) {
                    out.push_str("<tr>");
                    for part in RESUME_LINES
                        .choose(rng)
                        .expect("non-empty")
                        .split(", ")
                        .take(3)
                    {
                        out.push_str("<td>");
                        out.push_str(part);
                        out.push_str("</td>");
                    }
                    out.push_str("</tr>");
                }
                out.push_str("</table>");
            }
            _ => {
                out.push_str("<p>");
                out.push_str(RESUME_LINES.choose(rng).expect("non-empty"));
                out.push_str("</p>");
            }
        }
    }
    out.push_str("</body></html>");
    out
}

/// Applies 1–3 random mutations to an HTML string: delete a region,
/// duplicate a region, or splice in a delimiter storm / entity soup /
/// random tag at a random position. Mutations operate on char
/// boundaries so the result stays a valid `String`.
pub fn mutate(html: &str, rng: &mut StdRng) -> String {
    let mut out = html.to_owned();
    for _ in 0..rng.gen_range(1..=3u32) {
        let boundaries: Vec<usize> = out.char_indices().map(|(i, _)| i).collect();
        if boundaries.len() < 2 {
            break;
        }
        let pick = |rng: &mut StdRng, b: &[usize]| b[rng.gen_range(0..b.len())];
        match rng.gen_range(0..=3u32) {
            0 => {
                // Delete a region.
                let a = pick(rng, &boundaries);
                let b = pick(rng, &boundaries);
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                out.replace_range(lo..hi, "");
            }
            1 => {
                // Duplicate a region in place.
                let a = pick(rng, &boundaries);
                let b = pick(rng, &boundaries);
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let region = out[lo..hi].to_owned();
                out.insert_str(hi, &region);
            }
            2 => {
                let at = pick(rng, &boundaries);
                out.insert_str(at, DELIMITERS.choose(rng).expect("non-empty"));
            }
            _ => {
                let at = pick(rng, &boundaries);
                out.insert_str(at, ENTITIES.choose(rng).expect("non-empty"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_substrate::rand::SeedableRng;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = soup_document(&mut StdRng::seed_from_u64(7));
        let b = soup_document(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = soup_document(&mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn resume_like_contains_domain_markup() {
        let html = resume_like(&mut StdRng::seed_from_u64(3));
        assert!(html.contains("<h2>"), "{html}");
        assert!(html.starts_with("<html><body>"));
    }

    #[test]
    fn mutate_changes_input_but_stays_utf8() {
        let mut rng = StdRng::seed_from_u64(11);
        let base = resume_like(&mut rng);
        let mut changed = 0;
        for _ in 0..20 {
            let m = mutate(&base, &mut rng);
            assert!(m.is_char_boundary(m.len()));
            if m != base {
                changed += 1;
            }
        }
        assert!(changed > 10, "mutator almost never changes the input");
    }

    #[test]
    fn soup_has_variety() {
        // Across seeds the generator should produce both doctype'd and
        // bare documents, and both short and long ones.
        let docs: Vec<String> = (0..40)
            .map(|s| soup_document(&mut StdRng::seed_from_u64(s)))
            .collect();
        assert!(docs.iter().any(|d| d.contains("<!DOCTYPE")));
        assert!(docs.iter().any(|d| !d.contains("<!DOCTYPE")));
        let min = docs.iter().map(String::len).min().unwrap();
        let max = docs.iter().map(String::len).max().unwrap();
        assert!(max > min * 2, "no size variety: {min}..{max}");
    }
}
