//! Battery runner: deterministic scheduling, per-case seed derivation and
//! failure reporting for the differential / metamorphic / fuzz oracles.
//!
//! Reproducibility contract: case `i` of a run with base seed `s` uses
//! the *case seed* `s.wrapping_add(i)`. The RNG handed to each oracle is
//! seeded from the case seed mixed (via SplitMix64) with an FNV-1a hash
//! of the oracle name, so every oracle sees an independent stream and
//! `webre check --only <oracle> --seed <case-seed> --iters 1` replays a
//! single failing case exactly.

use webre_substrate::rand::rngs::StdRng;
use webre_substrate::rand::{RngCore, SeedableRng, SplitMix64};

/// What kind of specification an oracle checks against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Production code vs an independently written reference.
    Differential,
    /// A relation between two runs of the production code.
    Metamorphic,
    /// Totality (no panics) over generated tag soup.
    Fuzz,
    /// Not part of the default battery; runnable only via `--only`.
    Hidden,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Differential => "differential",
            Kind::Metamorphic => "metamorphic",
            Kind::Fuzz => "fuzz",
            Kind::Hidden => "hidden",
        }
    }
}

type OracleFn = fn(&mut StdRng) -> Result<(), String>;

/// The full oracle registry. Order is the (deterministic) execution and
/// report order.
pub const ORACLES: &[(&str, Kind, OracleFn)] = &[
    ("fixpoint", Kind::Differential, crate::oracles::fixpoint),
    ("tidy-idempotence", Kind::Differential, crate::oracles::tidy_idempotent),
    ("parallel-convert", Kind::Differential, crate::oracles::parallel_convert),
    ("brzozowski-vs-backtracking", Kind::Differential, crate::oracles::brzozowski),
    ("miner-vs-bruteforce", Kind::Differential, crate::oracles::miner),
    ("serve-vs-batch", Kind::Differential, crate::oracles::serve_vs_batch),
    ("loris-liveness", Kind::Differential, crate::oracles::loris_liveness),
    ("trace-noop", Kind::Differential, crate::oracles::trace_noop),
    ("matcher-vs-naive", Kind::Differential, crate::oracles::matcher_vs_naive),
    ("shard-merge-vs-batch", Kind::Differential, crate::oracles::shard_merge_vs_batch),
    ("map-vs-batch", Kind::Differential, crate::oracles::map_vs_batch),
    ("remove-document", Kind::Metamorphic, crate::metamorphic::remove_document),
    ("duplicate-corpus", Kind::Metamorphic, crate::metamorphic::duplicate_corpus),
    ("permute-order", Kind::Metamorphic, crate::metamorphic::permute_order),
    ("fuzz-totality", Kind::Fuzz, crate::fuzz::fuzz_totality),
    ("self-test", Kind::Hidden, self_test),
];

/// Hidden oracle that fails unconditionally. It exists so the failure
/// path — non-zero exit plus the reproduction line — has a regression
/// test without planting a real bug.
fn self_test(_rng: &mut StdRng) -> Result<(), String> {
    Err("self-test oracle always fails (this is the expected output)".to_owned())
}

/// Configuration for one battery run.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Base seed; case `i` runs with case seed `seed.wrapping_add(i)`.
    pub seed: u64,
    /// Cases per oracle.
    pub iters: u64,
    /// Restrict the run to a single oracle (also unlocks hidden ones).
    pub only: Option<String>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig { seed: 1, iters: 200, only: None }
    }
}

/// One failing case.
#[derive(Clone, Debug)]
pub struct CaseFailure {
    pub oracle: String,
    pub case_seed: u64,
    pub message: String,
}

impl CaseFailure {
    /// The one-line command that replays exactly this case.
    pub fn repro(&self) -> String {
        format!(
            "webre check --only {} --seed {} --iters 1",
            self.oracle, self.case_seed
        )
    }
}

/// Per-oracle outcome.
#[derive(Clone, Debug)]
pub struct OracleReport {
    pub name: String,
    pub kind: Kind,
    pub cases: u64,
    /// First failure, if any. The oracle stops at its first failing case
    /// so a systematic bug does not flood the report.
    pub failure: Option<CaseFailure>,
}

/// Outcome of a full battery run.
#[derive(Clone, Debug)]
pub struct CheckReport {
    pub seed: u64,
    pub iters: u64,
    pub oracles: Vec<OracleReport>,
}

impl CheckReport {
    pub fn passed(&self) -> bool {
        self.oracles.iter().all(|o| o.failure.is_none())
    }

    /// Deterministic human-readable report, repro lines included.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "webre check: seed={} iters={}\n",
            self.seed, self.iters
        ));
        for oracle in &self.oracles {
            match &oracle.failure {
                None => out.push_str(&format!(
                    "  ok    {:<28} [{}] {} cases\n",
                    oracle.name,
                    oracle.kind.label(),
                    oracle.cases
                )),
                Some(f) => {
                    out.push_str(&format!(
                        "  FAIL  {:<28} [{}] case seed {}\n",
                        oracle.name,
                        oracle.kind.label(),
                        f.case_seed
                    ));
                    for line in f.message.lines() {
                        out.push_str(&format!("        {line}\n"));
                    }
                    out.push_str(&format!("        reproduce: {}\n", f.repro()));
                }
            }
        }
        let failed = self.oracles.iter().filter(|o| o.failure.is_some()).count();
        if failed == 0 {
            out.push_str(&format!(
                "all {} oracles passed ({} cases each)\n",
                self.oracles.len(),
                self.iters
            ));
        } else {
            out.push_str(&format!(
                "{failed} of {} oracles FAILED\n",
                self.oracles.len()
            ));
        }
        out
    }
}

/// FNV-1a, used only to give each oracle an independent seed stream.
fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The RNG an oracle receives for a given case.
pub fn case_rng(oracle: &str, case_seed: u64) -> StdRng {
    let stream = SplitMix64::new(case_seed ^ fnv1a(oracle)).next_u64();
    StdRng::seed_from_u64(stream)
}

/// Runs the battery described by `config` and returns the report.
/// Unknown `--only` names yield an empty report (`passed()` is true but
/// `oracles` is empty — the CLI treats that as a usage error).
pub fn run(config: &CheckConfig) -> CheckReport {
    let selected: Vec<&(&str, Kind, OracleFn)> = ORACLES
        .iter()
        .filter(|(name, kind, _)| match &config.only {
            Some(only) => name == only,
            None => *kind != Kind::Hidden,
        })
        .collect();
    let mut reports = Vec::with_capacity(selected.len());
    for (name, kind, oracle) in selected {
        let mut failure = None;
        let mut cases = 0u64;
        for i in 0..config.iters {
            let case_seed = config.seed.wrapping_add(i);
            let mut rng = case_rng(name, case_seed);
            cases += 1;
            if let Err(message) = oracle(&mut rng) {
                failure = Some(CaseFailure {
                    oracle: (*name).to_owned(),
                    case_seed,
                    message,
                });
                break;
            }
        }
        reports.push(OracleReport {
            name: (*name).to_owned(),
            kind: *kind,
            cases,
            failure,
        });
    }
    CheckReport {
        seed: config.seed,
        iters: config.iters,
        oracles: reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_battery_passes_and_is_deterministic() {
        let config = CheckConfig { seed: 1, iters: 10, only: None };
        let a = run(&config);
        let b = run(&config);
        assert!(a.passed(), "battery failed:\n{}", a.render());
        assert_eq!(a.render(), b.render());
        // Eleven differential + three metamorphic + one fuzz oracle;
        // the hidden self-test never runs by default.
        assert_eq!(a.oracles.len(), 15);
        assert_eq!(
            a.oracles.iter().filter(|o| o.kind == Kind::Differential).count(),
            11
        );
        assert_eq!(
            a.oracles.iter().filter(|o| o.kind == Kind::Metamorphic).count(),
            3
        );
        assert!(a.oracles.iter().all(|o| o.kind != Kind::Hidden));
    }

    #[test]
    fn only_selects_one_oracle() {
        let config = CheckConfig {
            seed: 7,
            iters: 3,
            only: Some("fixpoint".to_owned()),
        };
        let report = run(&config);
        assert_eq!(report.oracles.len(), 1);
        assert_eq!(report.oracles[0].name, "fixpoint");
        assert_eq!(report.oracles[0].cases, 3);
    }

    #[test]
    fn unknown_only_yields_empty_report() {
        let config = CheckConfig {
            seed: 1,
            iters: 1,
            only: Some("no-such-oracle".to_owned()),
        };
        assert!(run(&config).oracles.is_empty());
    }

    #[test]
    fn self_test_fails_with_repro_line() {
        let config = CheckConfig {
            seed: 41,
            iters: 5,
            only: Some("self-test".to_owned()),
        };
        let report = run(&config);
        assert!(!report.passed());
        let failure = report.oracles[0].failure.as_ref().unwrap();
        // Fails on the first case, so the case seed is the base seed.
        assert_eq!(failure.case_seed, 41);
        assert_eq!(
            failure.repro(),
            "webre check --only self-test --seed 41 --iters 1"
        );
        assert!(report.render().contains("reproduce: webre check --only self-test"));
    }

    #[test]
    fn case_rng_streams_differ_between_oracles() {
        use webre_substrate::rand::RngCore;
        let a = case_rng("fixpoint", 1).next_u64();
        let b = case_rng("miner-vs-bruteforce", 1).next_u64();
        assert_ne!(a, b);
    }
}
