//! The differential oracles: each one generates an adversarial input from
//! the case rng and cross-checks a production implementation against an
//! independent reference (or against itself through a semantics-preserving
//! transformation).
//!
//! Every oracle is a function `fn(&mut StdRng) -> Result<(), String>`; the
//! error string describes the divergence and embeds enough of the input to
//! eyeball it. The runner attributes failures to `(oracle, case seed)`.

use crate::gen;
use crate::reference::{ref_matches, ref_mine, sample_word};
use std::sync::OnceLock;
use webre_concepts::{Concept, ConceptMatcher, ConceptRole, ConceptSet};
use webre_convert::Converter;
use webre_schema::{extract_paths, DocPaths, FrequentPathMiner};
use webre_substrate::rand::rngs::StdRng;
use webre_substrate::rand::seq::SliceRandom;
use webre_substrate::rand::Rng;
use webre_xml::ContentExpr;

/// Truncates an input for inclusion in a failure message.
pub(crate) fn snippet(s: &str) -> String {
    const MAX: usize = 240;
    if s.len() <= MAX {
        return s.to_owned();
    }
    let mut end = MAX;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}… ({} bytes)", &s[..end], s.len())
}

/// A soup document, sometimes mutated on top.
fn soup_input(rng: &mut StdRng) -> String {
    let base = if rng.gen_bool(0.3) {
        gen::resume_like(rng)
    } else {
        gen::soup_document(rng)
    };
    if rng.gen_bool(0.5) {
        gen::mutate(&base, rng)
    } else {
        base
    }
}

/// Oracle 1 — parse → serialize → parse fixpoint. One parse+serialize
/// normalizes arbitrary soup; from there the pair must be a fixpoint:
/// reparsing the serialized form yields an equal tree and re-serializing
/// yields identical text.
pub fn fixpoint(rng: &mut StdRng) -> Result<(), String> {
    let input = soup_input(rng);
    let once = webre_html::parse(&input);
    let text1 = webre_html::to_html(&once);
    let twice = webre_html::parse(&text1);
    if !once
        .tree
        .subtree_eq(once.tree.root(), &twice.tree, twice.tree.root())
    {
        return Err(format!(
            "reparse changed the tree\n  input: {}\n  serialized: {}",
            snippet(&input),
            snippet(&text1)
        ));
    }
    let text2 = webre_html::to_html(&twice);
    if text1 != text2 {
        return Err(format!(
            "serialize is not a fixpoint after one round\n  first: {}\n  second: {}",
            snippet(&text1),
            snippet(&text2)
        ));
    }
    Ok(())
}

/// Oracle 2 — tidy idempotence: running the cleanup pass a second time
/// must change nothing.
pub fn tidy_idempotent(rng: &mut StdRng) -> Result<(), String> {
    let input = soup_input(rng);
    let mut doc = webre_html::parse(&input);
    webre_html::tidy(&mut doc);
    let once = webre_html::to_html(&doc);
    webre_html::tidy(&mut doc);
    let twice = webre_html::to_html(&doc);
    if once != twice {
        return Err(format!(
            "tidy is not idempotent\n  input: {}\n  after one pass: {}\n  after two: {}",
            snippet(&input),
            snippet(&once),
            snippet(&twice)
        ));
    }
    Ok(())
}

/// Oracle 3 — parallel corpus conversion ≡ sequential conversion, for
/// every thread count the splitter can produce.
pub fn parallel_convert(rng: &mut StdRng) -> Result<(), String> {
    let converter = Converter::new(webre_concepts::resume::concepts());
    let n = rng.gen_range(1..=6usize);
    let htmls: Vec<String> = (0..n).map(|_| soup_input(rng)).collect();
    let sequential = converter.convert_corpus(&htmls);
    let threads = rng.gen_range(2..=4usize);
    let parallel = converter.convert_corpus_parallel(&htmls, threads);
    if sequential.len() != parallel.len() {
        return Err(format!(
            "parallel returned {} documents, sequential {}",
            parallel.len(),
            sequential.len()
        ));
    }
    for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
        let (s, p) = (webre_xml::to_xml(s), webre_xml::to_xml(p));
        if s != p {
            return Err(format!(
                "document {i} diverges under {threads} threads\n  sequential: {}\n  parallel: {}\n  input: {}",
                snippet(&s),
                snippet(&p),
                snippet(&htmls[i])
            ));
        }
    }
    Ok(())
}

/// Labels used by the random content models and token sequences.
const ALPHABET: &[&str] = &["a", "b", "c", "d"];

/// A random content-model expression of bounded depth.
fn random_expr(rng: &mut StdRng, depth: u32) -> ContentExpr {
    let leaf = depth == 0 || rng.gen_bool(0.35);
    if leaf {
        return match rng.gen_range(0..=5u32) {
            0 => ContentExpr::PcData,
            _ => ContentExpr::Name((*ALPHABET.choose(rng).expect("non-empty")).to_owned()),
        };
    }
    match rng.gen_range(0..=4u32) {
        0 => ContentExpr::Seq(
            (0..rng.gen_range(2..=3u32))
                .map(|_| random_expr(rng, depth - 1))
                .collect(),
        ),
        1 => ContentExpr::Choice(
            (0..rng.gen_range(2..=3u32))
                .map(|_| random_expr(rng, depth - 1))
                .collect(),
        ),
        2 => ContentExpr::Opt(Box::new(random_expr(rng, depth - 1))),
        3 => ContentExpr::Star(Box::new(random_expr(rng, depth - 1))),
        _ => ContentExpr::Plus(Box::new(random_expr(rng, depth - 1))),
    }
}

/// Oracle 4 — the Brzozowski-derivative validator agrees with the naive
/// backtracking reference matcher, on random token noise, on words
/// sampled from the model's language, and on near-miss perturbations of
/// those words.
pub fn brzozowski(rng: &mut StdRng) -> Result<(), String> {
    let expr = random_expr(rng, 3);
    for trial in 0..8 {
        let word: Vec<String> = match trial % 3 {
            // Language words (must match), possibly perturbed below.
            0 | 1 => sample_word(&expr, rng),
            // Pure noise.
            _ => (0..rng.gen_range(0..=6usize))
                .map(|_| {
                    if rng.gen_bool(0.15) {
                        "#PCDATA".to_owned()
                    } else if rng.gen_bool(0.1) {
                        "z".to_owned() // foreign label
                    } else {
                        (*ALPHABET.choose(rng).expect("non-empty")).to_owned()
                    }
                })
                .collect(),
        };
        let word = if trial % 3 == 1 && !word.is_empty() {
            // Near-miss: drop, duplicate or swap one token.
            let mut w = word;
            let i = rng.gen_range(0..w.len());
            match rng.gen_range(0..=2u32) {
                0 => {
                    w.remove(i);
                }
                1 => {
                    let t = w[i].clone();
                    w.insert(i, t);
                }
                _ => w[i] = (*ALPHABET.choose(rng).expect("non-empty")).to_owned(),
            }
            w
        } else {
            word
        };
        let refs: Vec<&str> = word.iter().map(String::as_str).collect();
        let production = webre_xml::validate::matches(&expr, &refs);
        let reference = ref_matches(&expr, &refs);
        if production != reference {
            return Err(format!(
                "validator divergence on model {expr} with tokens {refs:?}: \
                 derivatives say {production}, backtracking reference says {reference}"
            ));
        }
    }
    Ok(())
}

/// A small random XML corpus (random label trees), shared by the miner
/// oracle and the metamorphic invariants.
pub(crate) fn random_xml_corpus(rng: &mut StdRng) -> Vec<webre_xml::XmlDocument> {
    const LABELS: &[&str] = &["a", "b", "c", "d", "e"];
    const ROOTS: &[&str] = &["r", "s"];
    let n = rng.gen_range(2..=6usize);
    (0..n)
        .map(|_| {
            // Mostly one root label so mining usually clears the support
            // threshold; occasionally a dissenting root.
            let root = if rng.gen_bool(0.85) { ROOTS[0] } else { *ROOTS.choose(rng).expect("non-empty") };
            let mut doc = webre_xml::XmlDocument::new(root);
            let root_id = doc.root();
            grow(rng, &mut doc, root_id, 3, LABELS);
            doc
        })
        .collect()
}

fn grow(
    rng: &mut StdRng,
    doc: &mut webre_xml::XmlDocument,
    at: webre_tree::NodeId,
    depth: u32,
    labels: &[&str],
) {
    if depth == 0 {
        return;
    }
    for _ in 0..rng.gen_range(0..=3u32) {
        let label = *labels.choose(rng).expect("non-empty");
        let child = doc
            .tree
            .append_child(at, webre_xml::XmlNode::element(label));
        if rng.gen_bool(0.5) {
            grow(rng, doc, child, depth - 1, labels);
        }
    }
}

/// Thresholds drawn from a discrete grid so float comparisons between the
/// production and reference miners see bit-identical values.
fn random_thresholds(rng: &mut StdRng) -> (f64, f64, Option<usize>) {
    const SUPS: &[f64] = &[0.0, 0.25, 0.4, 0.5, 0.75, 0.9];
    const RATIOS: &[f64] = &[0.0, 0.3, 0.5, 0.8];
    let max_len = if rng.gen_bool(0.25) {
        Some(rng.gen_range(1..=3usize))
    } else {
        None
    };
    (
        *SUPS.choose(rng).expect("non-empty"),
        *RATIOS.choose(rng).expect("non-empty"),
        max_len,
    )
}

/// Oracle 5 — the anti-monotone frequent-path miner agrees with the
/// brute-force enumerate-and-count reference on random corpora: same
/// `None` cases, same root, same frequent-path set, same supports.
pub fn miner(rng: &mut StdRng) -> Result<(), String> {
    let docs = random_xml_corpus(rng);
    let corpus: Vec<DocPaths> = docs.iter().map(extract_paths).collect();
    let (sup, ratio, max_len) = random_thresholds(rng);
    let production = FrequentPathMiner {
        sup_threshold: sup,
        ratio_threshold: ratio,
        constraints: None,
        max_len,
    }
    .mine(&corpus);
    let reference = ref_mine(&corpus, sup, ratio, max_len);
    let context = || {
        let xmls: Vec<String> = docs.iter().map(webre_xml::to_xml).collect();
        format!("sup={sup} ratio={ratio} max_len={max_len:?}\n  corpus: {}", xmls.join(" | "))
    };
    match (production, reference) {
        (None, None) => Ok(()),
        (Some(p), None) => Err(format!(
            "production mined a schema where the reference mined none\n  {}\n  schema:\n{}",
            context(),
            p.schema.render()
        )),
        (None, Some(_)) => Err(format!(
            "production mined nothing where the reference found a schema\n  {}",
            context()
        )),
        (Some(p), Some(r)) => {
            let mut produced: Vec<(Vec<String>, f64)> = p
                .schema
                .paths()
                .into_iter()
                .map(|path| {
                    let node = p.schema.find(&path).expect("path from schema");
                    (path, p.schema.tree.value(node).support)
                })
                .collect();
            produced.sort_by(|a, b| a.0.cmp(&b.0));
            if p.schema.root_label() != r.root_label {
                return Err(format!(
                    "root divergence: production {:?}, reference {:?}\n  {}",
                    p.schema.root_label(),
                    r.root_label,
                    context()
                ));
            }
            if produced != r.paths {
                let fmt = |v: &[(Vec<String>, f64)]| {
                    v.iter()
                        .map(|(p, s)| format!("{}={s}", p.join("/")))
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                return Err(format!(
                    "frequent-path divergence\n  {}\n  production: {}\n  reference: {}",
                    context(),
                    fmt(&produced),
                    fmt(&r.paths)
                ));
            }
            Ok(())
        }
    }
}

/// Instance pool for the fuzzed concept catalogues: deliberately stacked
/// with prefixes/suffixes of each other (`uni` / `university` /
/// `universality`, `ver` / `versity`), multi-word instances that overlap
/// single-word ones, punctuation-heavy degree strings, and unicode whose
/// lowercase form changes byte length (`İstanbul`).
const INSTANCE_POOL: &[&str] = &[
    "uni",
    "university",
    "universality",
    "college",
    "state college",
    "b.s.",
    "b.s. degree",
    "m.s.",
    "science",
    "bachelor of science",
    "june",
    "june 1996",
    "1996",
    "gpa",
    "c++",
    "ver",
    "versity",
    "résumé",
    "istanbul",
    "İstanbul",
];

/// Filler that must never match (plus delimiters and whitespace shapes).
const NOISE_POOL: &[&str] = &[
    "zorp", "the", "of", "at", ",", ";", ":", "  ", " ", "universit", "ollege", "",
];

/// A random concept catalogue: a handful of concepts, each with a few
/// instances drawn (with cross-concept repetition, to force equal-span
/// tie-breaks) from [`INSTANCE_POOL`].
fn random_concept_set(rng: &mut StdRng) -> ConceptSet {
    let concepts = rng.gen_range(1..=5usize);
    (0..concepts)
        .map(|i| {
            let instances: Vec<&str> = (0..rng.gen_range(1..=4usize))
                .map(|_| *INSTANCE_POOL.choose(rng).expect("non-empty"))
                .collect();
            Concept::new(format!("c{i}"), ConceptRole::Content, instances)
        })
        .collect()
}

/// A random token text: instance words and noise glued together, with
/// random per-character case flips so the lowercasing path is always hot.
fn random_token_text(rng: &mut StdRng) -> String {
    let mut text = String::new();
    for _ in 0..rng.gen_range(0..=8usize) {
        let piece = if rng.gen_bool(0.6) {
            *INSTANCE_POOL.choose(rng).expect("non-empty")
        } else {
            *NOISE_POOL.choose(rng).expect("non-empty")
        };
        for c in piece.chars() {
            if rng.gen_bool(0.3) {
                text.extend(c.to_uppercase());
            } else {
                text.push(c);
            }
        }
        if rng.gen_bool(0.7) {
            text.push(' ');
        }
    }
    text
}

/// The resume catalogue compiled once, plus every token the golden
/// fixtures produce — the fixed half of the matcher oracle. Compiled
/// lazily and cached: the catalogue and fixtures are constants, so
/// rebuilding the automaton per case would only add noise.
fn resume_fixture_state() -> &'static (ConceptSet, ConceptMatcher, Vec<String>) {
    static STATE: OnceLock<(ConceptSet, ConceptMatcher, Vec<String>)> = OnceLock::new();
    STATE.get_or_init(|| {
        const FIXTURES: &[&str] = &[
            include_str!("../../../tests/fixtures/resume_clean.html"),
            include_str!("../../../tests/fixtures/resume_nested.html"),
            include_str!("../../../tests/fixtures/resume_soup.html"),
            include_str!("../../../tests/fixtures/resume_table.html"),
        ];
        let set = webre_concepts::resume::concepts();
        let matcher = ConceptMatcher::new(&set);
        let delims = webre_text::tokenize::Delimiters::default();
        let mut tokens = Vec::new();
        for fixture in FIXTURES {
            let doc = webre_html::parse(fixture);
            for id in doc.tree.descendants(doc.tree.root()) {
                if let webre_html::HtmlNode::Text(t) = doc.tree.value(id) {
                    tokens.extend(webre_text::tokenize::split_tokens(t, &delims));
                }
            }
        }
        (set, matcher, tokens)
    })
}

/// One automaton-vs-naive comparison, with a divergence report that shows
/// both match lists.
fn compare_matchers(
    set: &ConceptSet,
    automaton: &ConceptMatcher,
    text: &str,
) -> Result<(), String> {
    let naive = webre_concepts::find_matches(set, text);
    let fast = automaton.find_matches(text);
    if naive != fast {
        return Err(format!(
            "automaton diverges from naive scanner\n  text: {}\n  naive:     {naive:?}\n  automaton: {fast:?}",
            snippet(text)
        ));
    }
    Ok(())
}

/// Oracle 8 — matcher-vs-naive: the Aho–Corasick concept automaton must
/// produce *identical* match sets (positions, concept attribution,
/// overlap/tie resolution) to the retained naive per-instance scanner —
/// on fuzzed catalogues over fuzzed token streams, and with the full
/// resume catalogue over every token of the golden fixtures. This is the
/// oracle that licenses routing the conversion hot path through the
/// automaton: any divergence is a byte-visible output change.
pub fn matcher_vs_naive(rng: &mut StdRng) -> Result<(), String> {
    // Fuzzed half: a fresh catalogue, compiled fresh, against a batch of
    // adversarial token texts.
    let set = random_concept_set(rng);
    let automaton = ConceptMatcher::new(&set);
    for _ in 0..8 {
        let text = random_token_text(rng);
        compare_matchers(&set, &automaton, &text)?;
    }
    // Fixed half: the production catalogue against the golden fixtures'
    // real token population.
    let (set, matcher, tokens) = resume_fixture_state();
    for token in tokens {
        compare_matchers(set, matcher, token)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_substrate::rand::SeedableRng;

    fn run_many(oracle: fn(&mut StdRng) -> Result<(), String>, name: &str) {
        for seed in 0..60u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            if let Err(e) = oracle(&mut rng) {
                panic!("oracle {name} failed at unit-test seed {seed}: {e}");
            }
        }
    }

    #[test]
    fn fixpoint_holds_on_many_seeds() {
        run_many(fixpoint, "fixpoint");
    }

    #[test]
    fn tidy_idempotent_holds_on_many_seeds() {
        run_many(tidy_idempotent, "tidy-idempotent");
    }

    #[test]
    fn parallel_convert_holds_on_many_seeds() {
        // Fewer seeds: each case converts a corpus twice.
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            parallel_convert(&mut rng).unwrap();
        }
    }

    #[test]
    fn brzozowski_agrees_on_many_seeds() {
        run_many(brzozowski, "brzozowski");
    }

    #[test]
    fn miner_agrees_on_many_seeds() {
        run_many(miner, "miner");
    }

    #[test]
    fn trace_noop_holds_on_many_seeds() {
        // Fewer seeds: each case runs the full chain twice.
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            trace_noop(&mut rng).unwrap();
        }
    }

    #[test]
    fn map_vs_batch_holds_on_a_few_seeds() {
        // Fewer seeds: each case boots a server and runs exact tree-edit
        // mappings over the whole corpus.
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            map_vs_batch(&mut rng).unwrap();
        }
    }

    #[test]
    fn matcher_vs_naive_holds_on_many_seeds() {
        run_many(matcher_vs_naive, "matcher-vs-naive");
    }

    #[test]
    fn fixture_tokens_are_nonempty() {
        // The fixed half of the matcher oracle would be vacuous if fixture
        // tokenization ever produced nothing.
        let (_, _, tokens) = resume_fixture_state();
        assert!(tokens.len() >= 40, "only {} fixture tokens", tokens.len());
    }

    #[test]
    fn snippet_truncates_on_char_boundary() {
        let long = "é".repeat(400);
        let s = snippet(&long);
        assert!(s.contains("bytes"));
        let short = snippet("abc");
        assert_eq!(short, "abc");
    }
}

/// Oracle 6 — serve ≡ batch: a live HTTP server hammered by concurrent
/// clients must be indistinguishable from the sequential batch pipeline.
///
/// A random corpus is split across several client threads, each posting
/// its share to `POST /convert` and `POST /corpus/docs` over its own
/// keep-alive connection. Every `/convert` reply must be byte-identical
/// to the batch conversion of the same document, and the final
/// `GET /schema` / `GET /schema/dtd` must match a sequential
/// mine-and-derive over the whole corpus — interleaving, the response
/// cache, and the coalesced snapshot recompute must all be invisible.
pub fn serve_vs_batch(rng: &mut StdRng) -> Result<(), String> {
    use std::io::BufReader;
    use std::net::TcpStream;
    use webre_serve::server::{ServeConfig, Server};
    use webre_serve::Engine;
    use webre_substrate::http::{read_response, write_request};

    // Mostly resume-like documents (so a schema usually emerges), soup
    // mixed in to stress the converter's error paths under concurrency.
    let docs: Vec<String> = (0..rng.gen_range(3..=6))
        .map(|_| {
            if rng.gen_bool(0.7) {
                gen::resume_like(rng)
            } else {
                soup_input(rng)
            }
        })
        .collect();

    // Sequential batch reference, computed before the server exists.
    let engine = Engine::resume_domain();
    let expected_xml: Vec<String> = docs
        .iter()
        .map(|d| engine.convert_to_xml(d).2)
        .collect();
    let paths: Vec<DocPaths> = docs
        .iter()
        .map(|d| extract_paths(&engine.converter.convert_str(d).0))
        .collect();
    let expected_schema = engine.miner.mine(&paths).map(|outcome| {
        let dtd = webre_schema::derive_dtd(&outcome.schema, &paths, &engine.dtd_config);
        (outcome.schema.render(), dtd.to_dtd_string())
    });

    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: rng.gen_range(2..=4),
        queue_cap: 64,
        ..ServeConfig::default()
    };
    let server =
        Server::start(config, engine).map_err(|e| format!("cannot bind test server: {e}"))?;
    let addr = server.local_addr();

    // Concurrent clients; client c takes documents c, c+n, c+2n, …
    let clients = rng.gen_range(2..=3usize);
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let docs = docs.clone();
            std::thread::spawn(move || -> Result<Vec<(usize, String)>, String> {
                let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
                let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
                let mut reader = BufReader::new(stream);
                let mut converted = Vec::new();
                for (i, doc) in docs.iter().enumerate() {
                    if i % clients != c {
                        continue;
                    }
                    write_request(&mut writer, "POST", "/convert", doc.as_bytes(), true)
                        .map_err(|e| e.to_string())?;
                    let response = read_response(&mut reader, 64 << 20)
                        .map_err(|e| format!("/convert doc {i}: {e}"))?;
                    if response.status != 200 {
                        return Err(format!("/convert doc {i}: status {}", response.status));
                    }
                    converted.push((i, response.text()));
                    write_request(&mut writer, "POST", "/corpus/docs", doc.as_bytes(), true)
                        .map_err(|e| e.to_string())?;
                    let response = read_response(&mut reader, 1 << 20)
                        .map_err(|e| format!("/corpus/docs doc {i}: {e}"))?;
                    if response.status != 202 {
                        return Err(format!("/corpus/docs doc {i}: status {}", response.status));
                    }
                }
                Ok(converted)
            })
        })
        .collect();
    let mut served_xml: Vec<(usize, String)> = Vec::new();
    for handle in handles {
        served_xml.extend(
            handle
                .join()
                .map_err(|_| "client thread panicked".to_owned())??,
        );
    }

    for (i, served) in &served_xml {
        if served != &expected_xml[*i] {
            return Err(format!(
                "/convert diverged from batch conversion on doc {i}\n  input: {}\n  served: {}\n  batch:  {}",
                snippet(&docs[*i]),
                snippet(served),
                snippet(&expected_xml[*i])
            ));
        }
    }

    // Final schema state vs the sequential mine over the same corpus.
    let fetch = |path: &str| -> Result<(u16, String), String> {
        let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(stream);
        write_request(&mut writer, "GET", path, b"", false).map_err(|e| e.to_string())?;
        let response = read_response(&mut reader, 16 << 20).map_err(|e| e.to_string())?;
        Ok((response.status, response.text()))
    };
    let schema = fetch("/schema")?;
    let dtd = fetch("/schema/dtd")?;
    match &expected_schema {
        None => {
            if schema.0 != 404 || dtd.0 != 404 {
                return Err(format!(
                    "batch mined no schema but the server answered {}/{} (expected 404/404)",
                    schema.0, dtd.0
                ));
            }
        }
        Some((schema_text, dtd_text)) => {
            if schema.0 != 200 || schema.1 != *schema_text {
                return Err(format!(
                    "final /schema diverged (status {})\n  served: {}\n  batch:  {}",
                    schema.0,
                    snippet(&schema.1),
                    snippet(schema_text)
                ));
            }
            if dtd.0 != 200 || dtd.1 != *dtd_text {
                return Err(format!(
                    "final /schema/dtd diverged (status {})\n  served: {}\n  batch:  {}",
                    dtd.0,
                    snippet(&dtd.1),
                    snippet(dtd_text)
                ));
            }
        }
    }

    server.request_drain();
    server.join();
    Ok(())
}

/// Oracle 7 — tracing is non-perturbing: the full convert → mine →
/// derive chain run under a live trace recorder must produce output
/// byte-identical to the untraced run. The observability layer may watch
/// the pipeline but never steer it — no counter, span, or clock read is
/// allowed to leak into a branch.
pub fn trace_noop(rng: &mut StdRng) -> Result<(), String> {
    use webre_obs::clock::FakeClock;
    use webre_obs::trace::TraceRecorder;
    use webre_obs::{counter, stage, Ctx};
    use webre_schema::derive_dtd_obs;

    let converter = Converter::new(webre_concepts::resume::concepts());
    let n = rng.gen_range(1..=6usize);
    let htmls: Vec<String> = (0..n).map(|_| soup_input(rng)).collect();

    let recorder = TraceRecorder::new(Box::new(FakeClock::new(1_000)));
    let ctx = Ctx::new(&recorder);

    // Conversion, document by document.
    let mut docs = Vec::with_capacity(n);
    for (i, html) in htmls.iter().enumerate() {
        let (plain_doc, plain_stats) = converter.convert_str(html);
        let (traced_doc, traced_stats) = converter.convert_str_obs(html, ctx);
        let (plain_xml, traced_xml) =
            (webre_xml::to_xml(&plain_doc), webre_xml::to_xml(&traced_doc));
        if plain_xml != traced_xml {
            return Err(format!(
                "conversion diverges under tracing on doc {i}\n  input: {}\n  untraced: {}\n  traced:   {}",
                snippet(html),
                snippet(&plain_xml),
                snippet(&traced_xml)
            ));
        }
        if plain_stats != traced_stats {
            return Err(format!(
                "conversion stats diverge under tracing on doc {i}\n  input: {}\n  untraced: {plain_stats:?}\n  traced:   {traced_stats:?}",
                snippet(html)
            ));
        }
        docs.push(traced_doc);
    }

    // Mining and DTD derivation over the converted corpus.
    let paths: Vec<DocPaths> = docs.iter().map(extract_paths).collect();
    let miner = FrequentPathMiner {
        constraints: Some(webre_concepts::resume::constraints()),
        ..FrequentPathMiner::default()
    };
    let plain = miner.mine(&paths);
    let traced = miner.mine_view_obs(paths.as_slice(), ctx);
    let context = || {
        let inputs: Vec<String> = htmls.iter().map(|h| snippet(h)).collect();
        format!("corpus: {}", inputs.join(" | "))
    };
    match (plain, traced) {
        (None, None) => {}
        (Some(_), None) | (None, Some(_)) => {
            return Err(format!(
                "mining outcome presence differs under tracing\n  {}",
                context()
            ));
        }
        (Some(p), Some(t)) => {
            if p.schema.render() != t.schema.render()
                || p.nodes_explored != t.nodes_explored
                || p.nodes_accepted != t.nodes_accepted
            {
                return Err(format!(
                    "mining diverges under tracing\n  {}\n  untraced: explored={} accepted={}\n{}\n  traced: explored={} accepted={}\n{}",
                    context(),
                    p.nodes_explored,
                    p.nodes_accepted,
                    p.schema.render(),
                    t.nodes_explored,
                    t.nodes_accepted,
                    t.schema.render()
                ));
            }
            let config = webre_schema::DtdConfig::default();
            let plain_dtd = webre_schema::derive_dtd(&p.schema, &paths, &config).to_dtd_string();
            let traced_dtd = derive_dtd_obs(&t.schema, &paths, &config, ctx).to_dtd_string();
            if plain_dtd != traced_dtd {
                return Err(format!(
                    "DTD diverges under tracing\n  {}\n  untraced: {}\n  traced:   {}",
                    context(),
                    snippet(&plain_dtd),
                    snippet(&traced_dtd)
                ));
            }
        }
    }

    // The recorder must actually have been live — a silently disabled
    // context would make this oracle vacuous.
    let spans = recorder.spans();
    if !spans.iter().any(|s| s.name == stage::CONVERT) {
        return Err("trace recorder saw no convert span; the traced path did not record".into());
    }
    if spans.iter().any(|s| s.end_ns.is_none()) {
        return Err("trace recorder holds an unclosed span after the run".into());
    }
    for span in &spans {
        for (name, _) in &span.counters {
            if counter::index_of(name).is_none() {
                return Err(format!("uncatalogued counter {name:?} recorded"));
            }
        }
    }
    Ok(())
}

/// Oracle 13 — sharded mining merges back to batch mining. The
/// frequent-path statistics are associative aggregates, so for a random
/// corpus, a random shard count and random thresholds, four independent
/// routes must agree byte-for-byte:
///
/// 1. batch mining over the document slice,
/// 2. mining the [`webre_schema::ShardedCorpus`] union view,
/// 3. mining the merge of the per-shard [`webre_schema::PathTable`]s,
/// 4. mining the merged table after a JSON round-trip (the
///    `/corpus/table` wire format).
///
/// DTD derivation over the shard slices must likewise equal batch
/// derivation (group patterns stay off: group detection is seeded by the
/// first observed child sequence, so it is order-sensitive by design and
/// excluded from the identity).
pub fn shard_merge_vs_batch(rng: &mut StdRng) -> Result<(), String> {
    use webre_substrate::json::{FromJson, Json, ToJson};

    let docs = random_xml_corpus(rng);
    let corpus: Vec<DocPaths> = docs.iter().map(extract_paths).collect();
    let shard_count = rng.gen_range(1..=5usize);
    let (sup, ratio, max_len) = random_thresholds(rng);
    let context = || {
        let xmls: Vec<String> = docs.iter().map(webre_xml::to_xml).collect();
        format!(
            "shards={shard_count} sup={sup} ratio={ratio} max_len={max_len:?}\n  corpus: {}",
            xmls.join(" | ")
        )
    };

    // Route documents by real content hash, as the serving layer does.
    let mut sharded = webre_schema::ShardedCorpus::new(shard_count);
    for (doc, paths) in docs.iter().zip(&corpus) {
        let hash = webre_substrate::wal::checksum(webre_xml::to_xml(doc).as_bytes());
        sharded.push(hash, paths.clone());
    }

    let merged = webre_schema::PathTable::merged(
        &sharded
            .shards()
            .iter()
            .map(webre_schema::CorpusIndex::table)
            .collect::<Vec<_>>(),
    );
    let wire = merged.to_json().to_string();
    let decoded = Json::parse(&wire)
        .map_err(|e| format!("merged table serialized unparseably: {e}\n  {}", context()))
        .and_then(|v| {
            webre_schema::PathTable::from_json(&v)
                .map_err(|e| format!("merged table failed to decode: {e}\n  {}", context()))
        })?;
    if decoded != merged {
        return Err(format!(
            "merged table changed across its JSON round-trip\n  {}",
            context()
        ));
    }

    let miner = FrequentPathMiner {
        sup_threshold: sup,
        ratio_threshold: ratio,
        constraints: None,
        max_len,
    };
    let batch = miner.mine(&corpus);
    let routes: [(&str, Option<webre_schema::MiningOutcome>); 3] = [
        ("sharded view", miner.mine_view(&sharded)),
        ("merged table", miner.mine_view(&merged)),
        ("round-tripped table", miner.mine_view(&decoded)),
    ];
    for (route, outcome) in routes {
        match (&batch, outcome) {
            (None, None) => {}
            (Some(b), Some(o)) => {
                if b.schema.render() != o.schema.render() {
                    return Err(format!(
                        "{route} mined a different schema than batch\n  {}\n  batch:\n{}\n  {route}:\n{}",
                        context(),
                        b.schema.render(),
                        o.schema.render()
                    ));
                }
                if b.nodes_explored != o.nodes_explored || b.nodes_accepted != o.nodes_accepted {
                    return Err(format!(
                        "{route} explored a different search space than batch \
                         (batch {}de/{}da, {route} {}de/{}da)\n  {}",
                        b.nodes_explored,
                        b.nodes_accepted,
                        o.nodes_explored,
                        o.nodes_accepted,
                        context()
                    ));
                }
            }
            (b, o) => {
                return Err(format!(
                    "mining presence diverges: batch {} but {route} {}\n  {}",
                    if b.is_some() { "found a schema" } else { "found none" },
                    if o.is_some() { "found a schema" } else { "found none" },
                    context()
                ));
            }
        }
    }

    // DTD derivation over shard slices, two configurations.
    if let Some(b) = &batch {
        for config in [
            webre_schema::DtdConfig::default(),
            webre_schema::DtdConfig {
                rep_threshold: 2,
                optional_below: Some(0.75),
                ..webre_schema::DtdConfig::default()
            },
        ] {
            let batch_dtd = webre_schema::derive_dtd(&b.schema, &corpus, &config).to_dtd_string();
            let sharded_dtd =
                webre_schema::derive_dtd_sharded(&b.schema, &sharded.docs_by_shard(), &config)
                    .to_dtd_string();
            if batch_dtd != sharded_dtd {
                return Err(format!(
                    "sharded DTD derivation diverged from batch \
                     (rep_threshold={}, optional_below={:?})\n  {}\n  batch:   {}\n  sharded: {}",
                    config.rep_threshold,
                    config.optional_below,
                    context(),
                    snippet(&batch_dtd),
                    snippet(&sharded_dtd)
                ));
            }
        }
    }
    Ok(())
}

/// Oracle 14 — served mapping ≡ batch planning: `POST /map` answered by
/// a live server under concurrent clients must be byte-identical to the
/// sequential batch planner over the same corpus — same JSON body
/// (mapped XML, canonical edit script, cost, tier) and same status code,
/// with a randomized reject budget exercising all three tiers. The
/// response cache, the snapshot coalescing, and client interleaving must
/// all be invisible.
pub fn map_vs_batch(rng: &mut StdRng) -> Result<(), String> {
    use std::io::BufReader;
    use std::net::TcpStream;
    use webre_map::{MapPlanner, MapTier};
    use webre_serve::server::{ServeConfig, Server};
    use webre_serve::Engine;
    use webre_substrate::http::{read_response, write_request};

    let docs: Vec<String> = (0..rng.gen_range(3..=6))
        .map(|_| {
            if rng.gen_bool(0.7) {
                gen::resume_like(rng)
            } else {
                soup_input(rng)
            }
        })
        .collect();
    // All three tiers get exercised across seeds: no budget (never
    // rejects), zero (rejects anything non-conformant), and a small one.
    let budget = match rng.gen_range(0..3u8) {
        0 => None,
        1 => Some(0),
        _ => Some(rng.gen_range(1..=40u32)),
    };

    // Sequential batch reference, computed before the server exists.
    let engine = Engine::resume_domain();
    let converted: Vec<_> = docs.iter().map(|d| engine.converter.convert_str(d).0).collect();
    let paths: Vec<DocPaths> = converted.iter().map(extract_paths).collect();
    let expected: Option<Vec<(u16, String)>> = engine.miner.mine(&paths).map(|outcome| {
        let dtd = webre_schema::derive_dtd(&outcome.schema, &paths, &engine.dtd_config);
        let planner = MapPlanner {
            budget,
            ..MapPlanner::default()
        };
        converted
            .iter()
            .map(|doc| {
                let planned = planner.plan(doc, &outcome.schema, &dtd);
                let status = if planned.tier == MapTier::Rejected { 422 } else { 200 };
                (status, format!("{}\n", webre_map::render_json(&planned, budget)))
            })
            .collect()
    });

    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: rng.gen_range(2..=4),
        queue_cap: 64,
        map_budget: budget,
        ..ServeConfig::default()
    };
    let server =
        Server::start(config, engine).map_err(|e| format!("cannot bind test server: {e}"))?;
    let addr = server.local_addr();

    // Accrete the whole corpus first so every /map sees the final schema.
    {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(stream);
        for (i, doc) in docs.iter().enumerate() {
            write_request(&mut writer, "POST", "/corpus/docs", doc.as_bytes(), true)
                .map_err(|e| e.to_string())?;
            let response = read_response(&mut reader, 1 << 20)
                .map_err(|e| format!("/corpus/docs doc {i}: {e}"))?;
            if response.status != 202 {
                return Err(format!("/corpus/docs doc {i}: status {}", response.status));
            }
        }
    }

    // Concurrent clients; client c maps documents c, c+n, c+2n, … with a
    // duplicate pass to drive both cache misses and hits.
    let clients = rng.gen_range(2..=3usize);
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let docs = docs.clone();
            std::thread::spawn(move || -> Result<Vec<(usize, u16, String)>, String> {
                let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
                let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
                let mut reader = BufReader::new(stream);
                let mut mapped = Vec::new();
                for pass in 0..2 {
                    for (i, doc) in docs.iter().enumerate() {
                        if i % clients != c {
                            continue;
                        }
                        write_request(&mut writer, "POST", "/map", doc.as_bytes(), true)
                            .map_err(|e| e.to_string())?;
                        let response = read_response(&mut reader, 64 << 20)
                            .map_err(|e| format!("/map doc {i} pass {pass}: {e}"))?;
                        mapped.push((i, response.status, response.text()));
                    }
                }
                Ok(mapped)
            })
        })
        .collect();
    let mut served: Vec<(usize, u16, String)> = Vec::new();
    for handle in handles {
        served.extend(
            handle
                .join()
                .map_err(|_| "client thread panicked".to_owned())??,
        );
    }

    match &expected {
        None => {
            for (i, status, _) in &served {
                if *status != 404 {
                    return Err(format!(
                        "batch mined no schema but /map on doc {i} answered {status} (expected 404)"
                    ));
                }
            }
        }
        Some(expected) => {
            for (i, status, body) in &served {
                let (want_status, want_body) = &expected[*i];
                if status != want_status || body != want_body {
                    return Err(format!(
                        "/map diverged from the batch planner on doc {i} \
                         (status {status}, batch {want_status})\n  input: {}\n  served: {}\n  batch:  {}",
                        snippet(&docs[*i]),
                        snippet(body),
                        snippet(want_body)
                    ));
                }
            }
        }
    }

    server.request_drain();
    server.join();
    Ok(())
}

/// Oracle 11 — loris liveness: slow-loris connections must be reaped on
/// the read budget while the server keeps answering honest clients, and
/// afterwards no worker may be left holding anything.
///
/// A server with a short read budget gets a swarm of connections that
/// send a partial request head and then trickle one byte at a time —
/// the classic attack that pins one thread per socket on a
/// thread-per-connection design. Concurrently, an honest client runs
/// `/healthz` probes and one cold `/convert` whose reply must stay
/// byte-identical to the batch engine. Every loris must observe EOF (or
/// a courtesy 408) within twice the read budget, the reap counter must
/// account for all of them, and `requests_in_flight` must return to
/// zero — a reap that leaks a worker or a buffer fails here.
pub fn loris_liveness(rng: &mut StdRng) -> Result<(), String> {
    use std::io::{BufReader, Read, Write};
    use std::net::TcpStream;
    use std::sync::atomic::Ordering;
    use std::time::{Duration, Instant};
    use webre_serve::server::{ServeConfig, Server};
    use webre_serve::Engine;
    use webre_substrate::http::{read_response, write_request};

    // Short enough that 200 battery cases stay in tens of seconds, long
    // enough that several trickled bytes land inside the budget.
    let read_budget = Duration::from_millis(150);
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: rng.gen_range(1..=2),
        queue_cap: 32,
        read_timeout: read_budget,
        idle_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    };
    let engine = Engine::resume_domain();
    let document = gen::resume_like(rng);
    let expected = engine.convert_to_xml(&document).2;
    let server =
        Server::start(config, engine).map_err(|e| format!("cannot bind test server: {e}"))?;
    let addr = server.local_addr();
    let app = server.app();

    // The swarm: partial head now, one trickled byte per sweep below.
    let loris_total = rng.gen_range(6..=12usize);
    let mut swarm = Vec::with_capacity(loris_total);
    for i in 0..loris_total {
        let stream = TcpStream::connect(addr).map_err(|e| format!("loris {i} connect: {e}"))?;
        stream
            .set_nonblocking(true)
            .map_err(|e| format!("loris {i} nonblocking: {e}"))?;
        (&stream)
            .write_all(b"POST /convert HTTP/1.1\r\nx-drip: ")
            .map_err(|e| format!("loris {i} first bytes: {e}"))?;
        swarm.push((stream, Instant::now(), false));
    }

    // Honest traffic while the swarm hangs: the server must stay live.
    let roundtrip = |method: &str, path: &str, body: &[u8]| -> Result<(u16, String), String> {
        let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .map_err(|e| e.to_string())?;
        write_request(&mut stream, method, path, body, false).map_err(|e| e.to_string())?;
        let response =
            read_response(&mut BufReader::new(stream), 64 << 20).map_err(|e| e.to_string())?;
        Ok((response.status, response.text()))
    };
    let (status, body) = roundtrip("POST", "/convert", document.as_bytes())?;
    if status != 200 || body != expected {
        return Err(format!(
            "/convert under loris load diverged from the batch engine (status {status})"
        ));
    }

    // Sweep the swarm until every connection is cut, proving liveness
    // with a healthz probe on each pass.
    let bound = read_budget * 2;
    let hard_stop = Instant::now() + Duration::from_secs(5);
    let mut reaped = 0usize;
    while reaped < loris_total {
        if Instant::now() > hard_stop {
            return Err(format!(
                "only {reaped}/{loris_total} loris connections reaped within 5s \
                 (read budget {read_budget:?})"
            ));
        }
        let (status, _) = roundtrip("GET", "/healthz", b"")?;
        if status != 200 {
            return Err(format!("healthz answered {status} during the loris storm"));
        }
        for (i, (stream, started, done)) in swarm.iter_mut().enumerate() {
            if *done {
                continue;
            }
            let mut buf = [0u8; 256];
            let closed = match stream.read(&mut buf) {
                Ok(0) => true,
                Ok(_) => false, // courtesy 408 bytes; EOF follows
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Trickle one more byte: the budget must run from
                    // the FIRST byte, so this must not buy time.
                    matches!(
                        stream.write(b"z"),
                        Err(ref we) if we.kind() != std::io::ErrorKind::WouldBlock
                    )
                }
                Err(_) => true,
            };
            if closed {
                let elapsed = started.elapsed();
                if elapsed > bound {
                    return Err(format!(
                        "loris {i} survived {elapsed:?}, past twice the {read_budget:?} budget"
                    ));
                }
                *done = true;
                reaped += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(swarm);

    // Accounting: every reap was a read-budget reap, and no worker is
    // left holding a request.
    let reaped_read = app.metrics.reaped_read.load(Ordering::Relaxed);
    if (reaped_read as usize) < loris_total {
        return Err(format!(
            "server counted {reaped_read} read-budget reaps for {loris_total} loris connections"
        ));
    }
    let settle = Instant::now() + Duration::from_secs(2);
    while app.metrics.in_flight.load(Ordering::Relaxed) != 0 {
        if Instant::now() > settle {
            return Err(format!(
                "{} request(s) still in flight after the storm — a worker is hung",
                app.metrics.in_flight.load(Ordering::Relaxed)
            ));
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    server.request_drain();
    server.join();
    Ok(())
}
