//! Crash/totality fuzzing of the full pipeline.
//!
//! The conversion → discovery → derivation → mapping chain must be total
//! over arbitrary tag soup: whatever the crawler drags in, the pipeline
//! may produce a poor document, never a panic. This oracle drives the
//! whole chain on generated/mutated soup corpora inside `catch_unwind`
//! and, when a panic surfaces, shrinks the offending document with
//! [`crate::minimize::ddmin`] before reporting.

use crate::gen;
use crate::minimize::ddmin;
use crate::oracles::snippet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use webre_convert::Converter;
use webre_schema::{derive_dtd, extract_paths, DocPaths, DtdConfig, FrequentPathMiner};
use webre_substrate::rand::rngs::StdRng;
use webre_substrate::rand::Rng;

/// Runs the full pipeline over one corpus; the return value is opaque —
/// only completing without a panic matters.
fn pipeline_total(htmls: &[String]) -> usize {
    let converter = Converter::new(webre_concepts::resume::concepts());
    let miner = FrequentPathMiner {
        sup_threshold: 0.5,
        ratio_threshold: 0.3,
        constraints: Some(webre_concepts::resume::constraints()),
        max_len: None,
    };
    let docs = converter.convert_corpus(htmls);
    let paths: Vec<DocPaths> = docs.iter().map(extract_paths).collect();
    let mut touched = docs.len();
    if let Some(outcome) = miner.mine(&paths) {
        let dtd = derive_dtd(&outcome.schema, &paths, &DtdConfig::default());
        for doc in &docs {
            let mapped = webre_map::map_to_dtd(doc, &outcome.schema, &dtd);
            touched += usize::from(mapped.conforms);
            touched += webre_xml::validate::validate(&mapped.document, &dtd).len();
        }
    }
    touched
}

/// `true` when the pipeline panics on a corpus containing just `html`.
/// The default panic hook is silenced for the probe so minimization does
/// not spray hundreds of backtraces.
fn panics_on(html: &str) -> bool {
    let corpus = vec![html.to_owned()];
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = catch_unwind(AssertUnwindSafe(|| pipeline_total(&corpus))).is_err();
    std::panic::set_hook(prev);
    result
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Fuzz oracle — the pipeline is total on arbitrary soup corpora. On a
/// panic, the failing document is isolated and minimized automatically.
pub fn fuzz_totality(rng: &mut StdRng) -> Result<(), String> {
    let n = rng.gen_range(1..=4usize);
    let htmls: Vec<String> = (0..n)
        .map(|_| {
            let base = if rng.gen_bool(0.5) {
                gen::resume_like(rng)
            } else {
                gen::soup_document(rng)
            };
            if rng.gen_bool(0.6) {
                gen::mutate(&base, rng)
            } else {
                base
            }
        })
        .collect();
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = catch_unwind(AssertUnwindSafe(|| pipeline_total(&htmls)));
    std::panic::set_hook(prev);
    let Err(payload) = outcome else {
        return Ok(());
    };
    let message = panic_message(payload);
    // Isolate the offending document, then shrink it.
    let culprit = htmls.iter().find(|h| panics_on(h));
    let detail = match culprit {
        Some(h) => {
            let minimized = ddmin(h, panics_on, 400);
            format!("minimized input ({} bytes): {}", minimized.len(), snippet(&minimized))
        }
        None => format!(
            "panic needs the {}-document corpus to reproduce (first: {})",
            htmls.len(),
            snippet(&htmls[0])
        ),
    };
    Err(format!("pipeline panicked: {message}\n  {detail}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_substrate::rand::SeedableRng;

    #[test]
    fn pipeline_is_total_on_many_seeds() {
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            fuzz_totality(&mut rng).unwrap();
        }
    }

    #[test]
    fn pipeline_total_runs_on_fixed_inputs() {
        // Empty, whitespace, naked delimiters, a plain resume.
        for html in ["", "   ", "<<<>>>", "<h2>Education</h2><ul><li>MIT, B.S., 1990</ul>"] {
            pipeline_total(&[html.to_owned()]);
        }
    }
}
