//! Benchmark: frequent-path mining across support thresholds (the
//! threshold sweep behind the majority schema).

use webre_substrate::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use webre_concepts::resume;
use webre_convert::Converter;
use webre_corpus::CorpusGenerator;
use webre_schema::{extract_paths, DocPaths, FrequentPathMiner};

fn corpus_paths(n: usize) -> Vec<DocPaths> {
    let gen = CorpusGenerator::new(9);
    let converter = Converter::new(resume::concepts());
    (0..n)
        .map(|i| {
            let (doc, _) = converter.convert_str(&gen.generate_one(i).html);
            extract_paths(&doc)
        })
        .collect()
}

fn bench_mining(c: &mut Criterion) {
    let paths = corpus_paths(100);
    let mut group = c.benchmark_group("frequent_paths");
    for sup in [0.1f64, 0.5, 0.9] {
        group.bench_with_input(BenchmarkId::from_parameter(sup), &sup, |b, &sup| {
            let miner = FrequentPathMiner {
                sup_threshold: sup,
                ratio_threshold: 0.0,
                constraints: None,
                max_len: None,
            };
            b.iter(|| std::hint::black_box(miner.mine(&paths)))
        });
    }
    group.bench_function("with_constraints", |b| {
        let miner = FrequentPathMiner {
            sup_threshold: 0.5,
            ratio_threshold: 0.3,
            constraints: Some(resume::constraints()),
            max_len: None,
        };
        b.iter(|| std::hint::black_box(miner.mine(&paths)))
    });
    group.finish();
}

criterion_group!(benches, bench_mining);
criterion_main!(benches);
