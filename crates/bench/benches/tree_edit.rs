//! Benchmark: Zhang–Shasha tree-edit distance on document-sized trees.

use webre_substrate::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use webre_bench::harness::paper_pipeline;
use webre_corpus::CorpusGenerator;
use webre_map::{edit_distance_docs, EditCosts};

fn bench_tree_edit(c: &mut Criterion) {
    let gen = CorpusGenerator::new(17);
    let pipeline = paper_pipeline();
    let docs: Vec<webre_xml::XmlDocument> = (0..6)
        .map(|i| pipeline.convert_html(&gen.generate_one(i).html).0)
        .collect();

    let mut group = c.benchmark_group("tree_edit");
    for (i, j) in [(0usize, 1usize), (2, 3), (4, 5)] {
        let name = format!(
            "{}x{}",
            docs[i].element_count(),
            docs[j].element_count()
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(i, j),
            |b, &(i, j)| {
                b.iter(|| {
                    std::hint::black_box(edit_distance_docs(
                        &docs[i],
                        &docs[j],
                        &EditCosts::default(),
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tree_edit);
criterion_main!(benches);
