//! Benchmark: Figure 5's shape — convert + discover at growing corpus
//! sizes; Criterion's estimates across the sizes should grow linearly.

use webre_substrate::bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use webre_bench::harness::{corpus_html, paper_pipeline};

fn bench_scaling(c: &mut Criterion) {
    let pipeline = paper_pipeline();
    let mut group = c.benchmark_group("schema_scaling");
    group.sample_size(10);
    for n in [25usize, 50, 100] {
        let htmls = corpus_html(8, n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &htmls, |b, htmls| {
            b.iter(|| {
                let docs = pipeline.convert_corpus(htmls);
                std::hint::black_box(pipeline.discover_schema(&docs))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
