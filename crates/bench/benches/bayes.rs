//! Benchmark: multinomial naive Bayes training and classification.

use webre_substrate::bench::{criterion_group, criterion_main, Criterion};
use webre_concepts::{matcher::find_matches, resume};
use webre_corpus::CorpusGenerator;
use webre_text::tokenize::{split_tokens, Delimiters};
use webre_text::BayesTrainer;

fn bench_bayes(c: &mut Criterion) {
    let gen = CorpusGenerator::new(3);
    let set = resume::concepts();
    let delims = Delimiters::default();
    let mut labeled: Vec<(String, String)> = Vec::new();
    for doc in gen.generate(20) {
        let text = webre_html::parse(&doc.html).text_content();
        for tok in split_tokens(&text, &delims) {
            let label = find_matches(&set, &tok)
                .first()
                .map(|m| m.concept.clone())
                .unwrap_or_else(|| "unknown".into());
            labeled.push((label, tok));
        }
    }

    c.bench_function("bayes/train", |b| {
        b.iter(|| {
            let mut t = BayesTrainer::new();
            for (l, tok) in &labeled {
                t.add(l, tok);
            }
            std::hint::black_box(t.build())
        })
    });

    let mut trainer = BayesTrainer::new();
    for (l, tok) in &labeled {
        trainer.add(l, tok);
    }
    let reference = trainer.build_reference().expect("labeled data");
    let model = trainer.build().expect("labeled data");
    c.bench_function("bayes/classify", |b| {
        b.iter(|| {
            for (_, tok) in labeled.iter().take(100) {
                std::hint::black_box(model.classify(tok));
            }
        })
    });
    // The HashMap-per-class formulation the table layout replaced; kept
    // benchmarked so the table's edge stays visible.
    c.bench_function("bayes/classify_reference", |b| {
        b.iter(|| {
            for (_, tok) in labeled.iter().take(100) {
                std::hint::black_box(reference.classify(tok));
            }
        })
    });
}

criterion_group!(benches, bench_bayes);
criterion_main!(benches);
