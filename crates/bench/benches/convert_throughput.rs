//! Benchmark: full document conversion (all four restructuring rules).

use webre_substrate::bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use webre_concepts::resume;
use webre_convert::Converter;
use webre_corpus::CorpusGenerator;

fn bench_convert(c: &mut Criterion) {
    let gen = CorpusGenerator::new(5);
    let converter = Converter::new(resume::concepts());

    let mut group = c.benchmark_group("convert");
    for n in [1usize, 8, 32] {
        let docs: Vec<webre_html::HtmlDocument> = (0..n)
            .map(|i| webre_html::parse(&gen.generate_one(i).html))
            .collect();
        let bytes: usize = (0..n).map(|i| gen.generate_one(i).html.len()).sum();
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &docs, |b, docs| {
            b.iter(|| {
                for d in docs {
                    std::hint::black_box(converter.convert(d));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convert);
criterion_main!(benches);
