//! Benchmark: topic-sentence tokenization and concept-instance matching.

use webre_substrate::bench::{criterion_group, criterion_main, Criterion, Throughput};
use webre_concepts::{matcher::find_matches, resume, ConceptMatcher};
use webre_text::tokenize::{split_tokens, Delimiters};

fn bench_tokenizer(c: &mut Criterion) {
    let sentence =
        "University of California at Davis, B.S.(Computer Science), June 1996, GPA 3.8/4.0";
    let delims = Delimiters::default();
    let concepts = resume::concepts();
    let matcher = ConceptMatcher::new(&concepts);

    let mut group = c.benchmark_group("text");
    group.throughput(Throughput::Bytes(sentence.len() as u64));
    group.bench_function("split_tokens", |b| {
        b.iter(|| std::hint::black_box(split_tokens(sentence, &delims)))
    });
    group.bench_function("find_matches", |b| {
        b.iter(|| std::hint::black_box(find_matches(&concepts, sentence)))
    });
    group.bench_function("automaton_find_matches", |b| {
        b.iter(|| std::hint::black_box(matcher.find_matches(sentence)))
    });
    group.bench_function("tokenize_then_match", |b| {
        b.iter(|| {
            for tok in split_tokens(sentence, &delims) {
                std::hint::black_box(find_matches(&concepts, &tok));
            }
        })
    });
    group.bench_function("tokenize_then_match_automaton", |b| {
        b.iter(|| {
            for tok in split_tokens(sentence, &delims) {
                std::hint::black_box(matcher.find_matches(&tok));
            }
        })
    });
    group.finish();

    // One-time cost of compiling the resume catalogue into the dense DFA
    // (paid once per `Converter`, amortized over every conversion).
    c.bench_function("text/automaton_build", |b| {
        b.iter(|| std::hint::black_box(ConceptMatcher::new(&concepts)))
    });
}

criterion_group!(benches, bench_tokenizer);
criterion_main!(benches);
