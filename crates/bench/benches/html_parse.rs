//! Benchmark: HTML tag-soup parsing and tidy over generated resume pages.

use webre_substrate::bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use webre_corpus::CorpusGenerator;

fn bench_html_parse(c: &mut Criterion) {
    let gen = CorpusGenerator::new(1);
    let pages: Vec<String> = (0..16).map(|i| gen.generate_one(i).html).collect();
    let bytes: usize = pages.iter().map(String::len).sum();

    let mut group = c.benchmark_group("html");
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("parse", |b| {
        b.iter(|| {
            for p in &pages {
                std::hint::black_box(webre_html::parse(p));
            }
        })
    });
    group.bench_function("parse_and_tidy", |b| {
        b.iter(|| {
            for p in &pages {
                let mut doc = webre_html::parse(p);
                webre_html::tidy(&mut doc);
                std::hint::black_box(doc);
            }
        })
    });
    group.finish();

    let mut group = c.benchmark_group("html_by_size");
    for n in [1usize, 4, 16] {
        let page: String = pages.iter().take(n).cloned().collect();
        group.throughput(Throughput::Bytes(page.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &page, |b, p| {
            b.iter(|| std::hint::black_box(webre_html::parse(p)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_html_parse);
criterion_main!(benches);
