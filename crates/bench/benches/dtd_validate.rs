//! Benchmark: DTD conformance checking (Brzozowski derivatives) and the
//! full document mapper.

use webre_substrate::bench::{criterion_group, criterion_main, Criterion};
use webre_bench::harness::{corpus_html, paper_pipeline};
use webre_map::map_to_dtd;

fn bench_validate(c: &mut Criterion) {
    let pipeline = paper_pipeline();
    let htmls = corpus_html(21, 60);
    let docs = pipeline.convert_corpus(&htmls);
    let discovery = pipeline.discover_schema(&docs).expect("non-empty");

    c.bench_function("dtd/validate_corpus", |b| {
        b.iter(|| {
            for d in &docs {
                std::hint::black_box(webre_xml::validate::validate(d, &discovery.dtd));
            }
        })
    });
    c.bench_function("dtd/map_document", |b| {
        b.iter(|| std::hint::black_box(map_to_dtd(&docs[0], &discovery.schema, &discovery.dtd)))
    });
}

criterion_group!(benches, bench_validate);
criterion_main!(benches);
