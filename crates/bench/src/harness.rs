//! Common workload setup shared by benches and experiment binaries.

use webre::Pipeline;
use webre_corpus::CorpusGenerator;
use webre_schema::FrequentPathMiner;

/// The experiment pipeline: resume domain, paper-style thresholds.
pub fn paper_pipeline() -> Pipeline {
    Pipeline::resume_domain().with_miner(FrequentPathMiner {
        sup_threshold: 0.5,
        ratio_threshold: 0.3,
        constraints: Some(webre_concepts::resume::constraints()),
        max_len: None,
    })
}

/// Generates the HTML side of a corpus.
pub fn corpus_html(seed: u64, n: usize) -> Vec<String> {
    CorpusGenerator::new(seed)
        .generate(n)
        .into_iter()
        .map(|d| d.html)
        .collect()
}

/// Tokens of a page, extracted per text node (crossing element boundaries
/// would merge unrelated topic sentences), labeled via synonym matching
/// against `concepts` with `"unknown"` for unmatched tokens.
pub fn labeled_tokens(
    html: &str,
    concepts: &webre_concepts::ConceptSet,
) -> Vec<(String, String)> {
    use webre_text::tokenize::{split_tokens, Delimiters};
    let doc = webre_html::parse(html);
    let delims = Delimiters::default();
    let mut out = Vec::new();
    for id in doc.tree.descendants(doc.tree.root()) {
        if let webre_html::HtmlNode::Text(text) = doc.tree.value(id) {
            for token in split_tokens(text, &delims) {
                let label = webre_concepts::matcher::find_matches(concepts, &token)
                    .first()
                    .map(|m| m.concept.clone())
                    .unwrap_or_else(|| "unknown".to_owned());
                out.push((label, token));
            }
        }
    }
    out
}
