//! Experiment E4 — Section 4.4: the sample run.
//!
//! The paper discovers a schema for 1400+ resume documents and shows a DTD
//! fragment of 20 elements, e.g.
//!
//! ```text
//! <!ELEMENT resume ((#PCDATA), contact+, objective, education+, courses,
//!                   experience+, awards, skills, activities+, reference)>
//! <!ELEMENT education ((#PCDATA), institute, date-entry)>
//! ...
//! ```
//!
//! Run with: `cargo run --release -p webre-bench --bin dtd_sample_run`

use std::time::Instant;
use webre::Pipeline;
use webre_corpus::CorpusGenerator;
use webre_schema::FrequentPathMiner;

fn main() {
    let docs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1400);

    println!("Section 4.4 — Sample Run ({docs} documents)");
    let start = Instant::now();
    let corpus = CorpusGenerator::new(1400).generate(docs);
    let htmls: Vec<String> = corpus.iter().map(|d| d.html.clone()).collect();
    println!("  generated in {:.1}s", start.elapsed().as_secs_f64());

    let pipeline = Pipeline::resume_domain().with_miner(FrequentPathMiner {
        sup_threshold: 0.5,
        ratio_threshold: 0.3,
        constraints: Some(webre::concepts::resume::constraints()),
        max_len: None,
    });

    let start = Instant::now();
    let xml_docs = pipeline.convert_corpus(&htmls);
    println!(
        "  converted in {:.1}s ({:.1} ms/doc)",
        start.elapsed().as_secs_f64(),
        start.elapsed().as_secs_f64() * 1e3 / docs as f64
    );

    let start = Instant::now();
    let discovery = pipeline.discover_schema(&xml_docs).expect("non-empty");
    println!(
        "  schema discovered in {:.2}s ({} candidate paths explored)",
        start.elapsed().as_secs_f64(),
        discovery.nodes_explored
    );
    println!();
    println!(
        "== derived DTD ({} elements; paper's fragment had 20) ==",
        discovery.dtd.len()
    );
    print!("{}", discovery.dtd.to_dtd_string());
    println!();
    println!("== majority schema with supports ==");
    print!("{}", discovery.schema.render());
}
