//! Experiment A4: document mapping to DTD conformance (the Quixote
//! Document Mapping Component, Section 5 / [13]).
//!
//! Measures, over a converted corpus: how many documents conform to the
//! majority DTD as-extracted, how many the tree-edit mapper brings into
//! conformance, and the distribution of edit costs.
//!
//! Run with: `cargo run --release -p webre-bench --bin mapping_conformance`

use webre::Pipeline;
use webre_corpus::CorpusGenerator;
use webre_schema::FrequentPathMiner;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    let corpus = CorpusGenerator::new(73).generate(n);
    let htmls: Vec<String> = corpus.iter().map(|d| d.html.clone()).collect();
    let pipeline = Pipeline::resume_domain().with_miner(FrequentPathMiner {
        sup_threshold: 0.5,
        ratio_threshold: 0.3,
        constraints: Some(webre::concepts::resume::constraints()),
        max_len: None,
    });

    let docs = pipeline.convert_corpus(&htmls);
    let discovery = pipeline.discover_schema(&docs).expect("non-empty corpus");

    let mut already = 0usize;
    let mut fixed = 0usize;
    let mut failed = 0usize;
    let mut costs: Vec<u32> = Vec::new();
    let mut demoted = 0u64;
    let mut wrapped = 0u64;
    let mut inserted = 0u64;
    let mut merged = 0u64;
    let mut reordered = 0u64;

    for doc in &docs {
        if webre::xml::validate::conforms(doc, &discovery.dtd) {
            already += 1;
            continue;
        }
        let outcome = pipeline.map_document(doc, &discovery);
        if outcome.conforms {
            fixed += 1;
            costs.push(outcome.edit_distance);
            demoted += u64::from(outcome.demoted);
            wrapped += u64::from(outcome.wrapped);
            inserted += u64::from(outcome.inserted);
            merged += u64::from(outcome.merged);
            reordered += u64::from(outcome.reordered);
        } else {
            failed += 1;
        }
    }

    println!("A4 — document mapping over {n} documents");
    println!();
    println!("  DTD: {} elements", discovery.dtd.len());
    println!("  conforming as-extracted:  {already}");
    println!("  mapped to conformance:    {fixed}");
    println!("  still non-conforming:     {failed}");
    if !costs.is_empty() {
        costs.sort_unstable();
        let total: u64 = costs.iter().map(|c| u64::from(*c)).sum();
        println!();
        println!("  edit cost of successful mappings:");
        println!("    mean   {:.1}", total as f64 / costs.len() as f64);
        println!("    median {}", costs[costs.len() / 2]);
        println!("    max    {}", costs.last().expect("non-empty"));
        println!();
        println!("  edit mix: {demoted} demoted, {wrapped} wrapped, {inserted} inserted, {merged} merged, {reordered} reordered");
    }
}
