//! Experiment E1 — Figure 4: data extraction accuracy.
//!
//! The paper manually inspects 50 resume documents, counting logical
//! errors in the extracted trees, and reports: 3.9 errors/document on
//! average, 53.7 concept nodes/document, 9.2% average error (90.8%
//! accuracy), with a histogram of documents bucketed by error percentage.
//!
//! Run with: `cargo run --release -p webre-bench --bin fig4_accuracy`

use webre::convert::accuracy::logical_errors;
use webre::Pipeline;
use webre_corpus::CorpusGenerator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let docs: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(50);
    let seed: u64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(2002);

    let corpus = CorpusGenerator::new(seed).generate(docs);
    let pipeline = Pipeline::resume_domain();

    let mut total_errors = 0u64;
    let mut total_nodes = 0u64;
    let mut rates: Vec<f64> = Vec::with_capacity(docs);
    for doc in &corpus {
        let (xml, _) = pipeline.convert_html(&doc.html);
        let report = logical_errors(&xml, &doc.truth);
        total_errors += report.errors;
        total_nodes += report.concept_nodes;
        rates.push(report.error_rate() * 100.0);
    }

    let avg_errors = total_errors as f64 / docs as f64;
    let avg_nodes = total_nodes as f64 / docs as f64;
    let avg_rate = rates.iter().sum::<f64>() / docs as f64;

    println!("Figure 4 — Accuracy of Heuristics ({docs} documents, seed {seed})");
    println!();
    println!("  paper:    avg 3.9 errors/doc, 53.7 concept nodes/doc, 9.2% error (90.8% accuracy)");
    println!(
        "  measured: avg {:.1} errors/doc, {:.1} concept nodes/doc, {:.1}% error ({:.1}% accuracy)",
        avg_errors,
        avg_nodes,
        avg_rate,
        100.0 - avg_rate
    );
    println!();
    println!("  histogram (documents per error-percentage bucket):");
    let buckets = [(0.0, 4.0), (4.0, 8.0), (8.0, 12.0), (12.0, 16.0), (16.0, 20.0), (20.0, 24.0)];
    for (lo, hi) in buckets {
        let count = rates.iter().filter(|r| **r >= lo && **r < hi).count();
        println!("    {lo:>2.0}-{hi:<2.0}%  {:<3} {}", count, "#".repeat(count));
    }
    let over = rates.iter().filter(|r| **r >= 24.0).count();
    if over > 0 {
        println!("    >=24%  {:<3} {}", over, "#".repeat(over));
    }
}
