//! Ablation A2: synonym matching vs the Bayes classifier in the concept
//! instance rule (the two identification mechanisms of Section 2.3.1).
//!
//! Trains the multinomial NB on generator-labeled tokens, then measures
//! token-level identification and document-level conversion accuracy in
//! three modes: synonyms only, Bayes only, and synonyms + Bayes.
//!
//! Run with: `cargo run --release -p webre-bench --bin ablation_classifier`

use webre::concepts::resume;
use webre::convert::accuracy::logical_errors;
use webre::convert::{ClassifierMode, ConvertConfig, Converter};
use webre::text::BayesTrainer;
use webre_bench::harness::labeled_tokens;
use webre_corpus::CorpusGenerator;

fn main() {
    let docs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50);
    let generator = CorpusGenerator::new(909);
    let set = resume::concepts();

    // Train on 60 documents' tokens, labeled via synonym ground truth.
    let mut trainer = BayesTrainer::new();
    for doc in generator.generate(60) {
        for (label, token) in labeled_tokens(&doc.html, &set) {
            trainer.add(&label, &token);
        }
    }
    println!(
        "Ablation A2 — concept identification ({} training tokens, {docs} eval documents)",
        trainer.example_count()
    );
    let model = trainer.build().expect("training data");

    let modes = [
        ("synonyms only", ClassifierMode::SynonymsOnly),
        (
            "Bayes only",
            ClassifierMode::BayesOnly {
                model: model.clone(),
                margin: 0.0,
                unknown_label: "unknown".into(),
            },
        ),
        (
            "synonyms + Bayes",
            ClassifierMode::Both {
                model,
                margin: 0.0,
                unknown_label: "unknown".into(),
            },
        ),
    ];

    println!();
    println!(
        "  {:<18} {:>12} {:>14} {:>12}",
        "mode", "ident. rate", "via classifier", "avg error"
    );
    // Evaluate on unseen documents (indices past the training range).
    for (label, mode) in modes {
        let converter = Converter::with_config(
            resume::concepts(),
            ConvertConfig {
                classifier: mode,
                ..ConvertConfig::default()
            },
        );
        let mut identified = 0u64;
        let mut total = 0u64;
        let mut via_classifier = 0u64;
        let mut error_rate = 0.0;
        for i in 0..docs {
            let doc = generator.generate_one(10_000 + i);
            let (xml, stats) = converter.convert(&webre::html::parse(&doc.html));
            identified += stats.tokens_identified;
            total += stats.tokens_total;
            via_classifier += stats.tokens_via_classifier;
            error_rate += logical_errors(&xml, &doc.truth).error_rate();
        }
        println!(
            "  {label:<18} {:>11.1}% {via_classifier:>14} {:>11.1}%",
            identified as f64 / total as f64 * 100.0,
            error_rate / docs as f64 * 100.0
        );
    }
}
