//! Lint throughput: wall time for a full `webre lint` pass over this
//! workspace's own sources, with the flow-sensitive engine (CFG build,
//! dataflow solves, call-graph fixpoint) on every function body.
//!
//! The lint gate runs on every `scripts/verify.sh` invocation, so its
//! wall time is developer-loop latency. This harness measures the
//! workspace pass end to end — discovery, lexing, parsing, call-graph
//! fixpoint, all nine rules, suppression filtering — the same work
//! `webre lint --deny-warnings` does, and holds two lines:
//!
//! * the pass stays fast (files/s floor held by the regression guard),
//! * the workspace stays clean (zero findings attested in the record).
//!
//! Results go to stdout as a table and to `BENCH_lint.json` (override
//! with `WEBRE_BENCH_LINT_OUT`) as one JSON-lines record.
//!
//! Run with: `cargo run --release -p webre-bench --bin lint_throughput`

use std::io::Write as _;
use std::path::Path;
use std::time::Instant;
use webre_lint::{lint_workspace, LintConfig, Workspace};

/// Timed passes; the median is reported so one scheduler hiccup does
/// not define the snapshot.
const RUNS: usize = 5;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let ws = Workspace::discover(&root).expect("discover workspace");
    let rel_files = ws.source_files().expect("enumerate sources");
    let files = rel_files.len();
    let lines: usize = rel_files
        .iter()
        .map(|rel| {
            std::fs::read_to_string(root.join(rel))
                .map(|s| s.lines().count())
                .unwrap_or(0)
        })
        .sum();

    let config = LintConfig::default();
    // Warm-up pass: page cache, allocator, lazy statics.
    let warm = lint_workspace(&root, &config).expect("lint run");
    let findings = warm.len();

    let mut seconds: Vec<f64> = (0..RUNS)
        .map(|_| {
            let started = Instant::now();
            let diags = lint_workspace(&root, &config).expect("lint run");
            assert_eq!(diags.len(), findings, "lint output changed between passes");
            started.elapsed().as_secs_f64()
        })
        .collect();
    seconds.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = seconds[RUNS / 2];
    let files_per_s = files as f64 / median;
    let klines_per_s = lines as f64 / median / 1000.0;

    println!("lint_throughput: full workspace pass, all rules, {RUNS} runs");
    println!(
        "  {:>6} {:>8} {:>10} {:>12} {:>14} {:>9}",
        "files", "lines", "median s", "files/s", "klines/s", "findings"
    );
    println!(
        "  {files:>6} {lines:>8} {median:>10.4} {files_per_s:>12.1} {klines_per_s:>14.1} {findings:>9}"
    );

    let out_path = std::env::var("WEBRE_BENCH_LINT_OUT")
        .unwrap_or_else(|_| "BENCH_lint.json".to_owned());
    let mut out = std::fs::File::create(&out_path).expect("create bench output");
    writeln!(
        out,
        "{{\"name\":\"lint_throughput\",\"files\":{files},\"lines\":{lines},\
         \"runs\":{RUNS},\"seconds\":{median:.6},\"files_per_s\":{files_per_s:.1},\
         \"klines_per_s\":{klines_per_s:.1},\"findings\":{findings}}}"
    )
    .expect("write bench record");
    println!("==> wrote 1 record to {out_path}");
}
