//! Experiment A5: generality across topics.
//!
//! The paper closes by targeting "broader types of topics such as product
//! catalogs". This harness runs the *identical* domain-independent rules
//! on two topics — resumes and product catalogs — swapping only the domain
//! knowledge (concepts + constraints), and reports extraction accuracy and
//! the discovered DTD for each.
//!
//! Run with: `cargo run --release -p webre-bench --bin generality`

use webre::concepts::resume;
use webre::convert::accuracy::logical_errors;
use webre::convert::{ConvertConfig, Converter};
use webre_corpus::{catalog, CorpusGenerator};
use webre_schema::{derive_dtd, extract_paths, DtdConfig, FrequentPathMiner};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60);

    println!("A5 — one rule set, two topics ({n} documents each)");
    println!();

    // Topic 1: resumes.
    {
        let converter = Converter::new(resume::concepts());
        let corpus = CorpusGenerator::new(2002).generate(n);
        let mut total = 0.0;
        let mut paths = Vec::new();
        for doc in &corpus {
            let (xml, _) = converter.convert_str(&doc.html);
            total += logical_errors(&xml, &doc.truth).error_rate();
            paths.push(extract_paths(&xml));
        }
        let schema = FrequentPathMiner {
            sup_threshold: 0.5,
            ratio_threshold: 0.3,
            constraints: Some(resume::constraints()),
            max_len: None,
        }
        .mine(&paths)
        .expect("non-empty")
        .schema;
        let dtd = derive_dtd(&schema, &paths, &DtdConfig::default());
        println!(
            "  resumes:  {:>5.1}% avg extraction error, {}-element DTD, root:",
            total / n as f64 * 100.0,
            dtd.len()
        );
        println!("    {}", dtd.elements.get("resume").expect("root decl"));
    }

    // Topic 2: product catalogs — same rules, different domain knowledge.
    {
        let converter = Converter::with_config(
            catalog::concepts(),
            ConvertConfig {
                root_concept: "catalog-entry".into(),
                ..ConvertConfig::default()
            },
        );
        let corpus = catalog::generate(2002, n);
        let mut total = 0.0;
        let mut paths = Vec::new();
        for page in &corpus {
            let (xml, _) = converter.convert_str(&page.html);
            total += logical_errors(&xml, &page.truth).error_rate();
            paths.push(extract_paths(&xml));
        }
        let schema = FrequentPathMiner {
            sup_threshold: 0.5,
            ratio_threshold: 0.3,
            constraints: Some(catalog::constraints()),
            max_len: None,
        }
        .mine(&paths)
        .expect("non-empty")
        .schema;
        let dtd = derive_dtd(&schema, &paths, &DtdConfig::default());
        println!(
            "  catalogs: {:>5.1}% avg extraction error, {}-element DTD, root:",
            total / n as f64 * 100.0,
            dtd.len()
        );
        println!("    {}", dtd.elements.get("catalog-entry").expect("root decl"));
    }

    println!();
    println!("  the converter, miner and DTD rules are byte-identical across the");
    println!("  two runs; only the JSON-equivalent domain knowledge differs.");
}
