//! Mapping throughput: mapped documents/second through the tiered
//! [`webre_map::MapPlanner`], filter on vs filter off, across growing
//! document sizes.
//!
//! The corpus is synthetic and wide/flat (depth 3: root → sections →
//! leaves) so the exact Zhang–Shasha tier stays tractable while scaling
//! to thousands of nodes. Each scale mixes the three planner tiers the
//! way a crawl does:
//!
//! * **conformant** — byte-identical to the schema's canonical document;
//!   the filter resolves these by label-tree equality without the DP,
//! * **rejected** — a third of the leaves relabeled to alien names; the
//!   admissible lower bound exceeds the reject budget so the filter
//!   skips the DP outright,
//! * **exact** — two leaves relabeled; the bound stays under budget and
//!   the full edit-script DP runs in both modes.
//!
//! Filter on and off produce byte-identical mapping results (held by the
//! `map-vs-batch` oracle and the planner tests) — only the wall clock
//! differs, which is exactly what this harness measures.
//!
//! Sizes are multiples of the ~40-node base fixture: 10×, 30×, 100×.
//! Results go to stdout as a table and to `BENCH_map.json` (override
//! with `WEBRE_BENCH_MAP_OUT`) as JSON lines, one record per scale.
//!
//! Run with: `cargo run --release -p webre-bench --bin map_throughput`

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;
use webre_map::{MapPlanner, MapTier};
use webre_schema::{derive_dtd, extract_paths, DtdConfig, FrequentPathMiner, MajoritySchema};
use webre_xml::{parse_xml, Dtd, XmlDocument};

/// Sections per document (fixed); leaves per section scale.
const SECTIONS: usize = 10;
/// Leaves per section at the 1× base fixture (21 nodes total); 100×
/// puts the exact tier's quadratic DP around a thousand nodes, large
/// enough to dominate the linear transform without the filter-off
/// reference pass taking minutes.
const BASE_LEAVES: usize = 1;
/// Reject budget: far below the relabeled docs' bound, above the
/// exact-tier docs' cost.
const BUDGET: u32 = 8;

/// The canonical document: `SECTIONS` sections of `leaves` empty leaf
/// elements each. Leaf labels are shared across sections.
fn canonical_xml(leaves: usize) -> String {
    let mut xml = String::from("<doc>");
    for s in 0..SECTIONS {
        let _ = write!(xml, "<s{s}>");
        for f in 0..leaves {
            let _ = write!(xml, "<f{f}/>");
        }
        let _ = write!(xml, "</s{s}>");
    }
    xml.push_str("</doc>");
    xml
}

/// The canonical document with `relabeled` leaves renamed to alien
/// labels (spread round-robin across sections).
fn relabeled_xml(leaves: usize, relabeled: usize) -> String {
    let mut xml = String::from("<doc>");
    let mut alien = 0usize;
    for s in 0..SECTIONS {
        let _ = write!(xml, "<s{s}>");
        for f in 0..leaves {
            if (f * SECTIONS + s) < relabeled {
                let _ = write!(xml, "<z{alien}/>");
                alien += 1;
            } else {
                let _ = write!(xml, "<f{f}/>");
            }
        }
        let _ = write!(xml, "</s{s}>");
    }
    xml.push_str("</doc>");
    xml
}

/// Mines the majority schema + DTD from two copies of the canonical
/// document (setup; not timed).
fn schema_and_dtd(leaves: usize) -> (MajoritySchema, Dtd) {
    let canonical = canonical_xml(leaves);
    let corpus: Vec<_> = [&canonical, &canonical]
        .iter()
        .map(|x| extract_paths(&parse_xml(x).expect("canonical doc parses")))
        .collect();
    let schema = FrequentPathMiner {
        sup_threshold: 0.5,
        ratio_threshold: 0.0,
        ..Default::default()
    }
    .mine(&corpus)
    .expect("canonical corpus mines a schema")
    .schema;
    let dtd = derive_dtd(&schema, &corpus, &DtdConfig::default());
    (schema, dtd)
}

struct Mix {
    docs: Vec<XmlDocument>,
    conformant: usize,
    rejected: usize,
    exact: usize,
}

/// The mixed corpus at one scale: 5 conformant + 4 rejected + 1 exact.
fn mixed_corpus(leaves: usize) -> Mix {
    let total = SECTIONS * leaves;
    let mut xmls = Vec::new();
    for _ in 0..5 {
        xmls.push(canonical_xml(leaves));
    }
    for _ in 0..4 {
        xmls.push(relabeled_xml(leaves, total / 3));
    }
    xmls.push(relabeled_xml(leaves, 2));
    Mix {
        docs: xmls
            .iter()
            .map(|x| parse_xml(x).expect("corpus doc parses"))
            .collect(),
        conformant: 5,
        rejected: 4,
        exact: 1,
    }
}

struct Outcome {
    docs: usize,
    seconds: f64,
    docs_per_s: f64,
    tiers: [usize; 3],
}

fn run_mode(mix: &Mix, schema: &MajoritySchema, dtd: &Dtd, filter: bool) -> Outcome {
    let planner = MapPlanner {
        budget: Some(BUDGET),
        filter,
        ..MapPlanner::default()
    };
    let started = Instant::now();
    let mut tiers = [0usize; 3];
    for doc in &mix.docs {
        let planned = planner.plan(doc, schema, dtd);
        tiers[match planned.tier {
            MapTier::Conformant => 0,
            MapTier::Rejected => 1,
            MapTier::Exact => 2,
        }] += 1;
    }
    let seconds = started.elapsed().as_secs_f64();
    Outcome {
        docs: mix.docs.len(),
        seconds,
        docs_per_s: mix.docs.len() as f64 / seconds,
        tiers,
    }
}

fn main() {
    println!("map_throughput: {SECTIONS} sections/doc, budget {BUDGET}, mix 5 conformant / 4 rejected / 1 exact");
    println!(
        "  {:<6} {:>7} {:>12} {:>13} {:>9}   {}",
        "scale", "nodes", "on docs/s", "off docs/s", "speedup", "tiers on (c/r/e)"
    );
    let mut records = Vec::new();
    for scale in [10usize, 30, 100] {
        let leaves = BASE_LEAVES * scale;
        let nodes = 1 + SECTIONS + SECTIONS * leaves;
        let (schema, dtd) = schema_and_dtd(leaves);
        let mix = mixed_corpus(leaves);
        // Warm-up pass so one-time costs (page faults, lazy allocs) don't
        // skew whichever mode runs first.
        let _ = run_mode(&mix, &schema, &dtd, true);
        let on = run_mode(&mix, &schema, &dtd, true);
        let off = run_mode(&mix, &schema, &dtd, false);
        // Filter on/off may only differ in time, never in tier counts.
        assert_eq!(on.tiers, off.tiers, "filter changed tier outcomes at {scale}x");
        assert_eq!(
            on.tiers,
            [mix.conformant, mix.rejected, mix.exact],
            "corpus mix did not land on the intended tiers at {scale}x"
        );
        let speedup = on.docs_per_s / off.docs_per_s;
        println!(
            "  {:<6} {:>7} {:>12.1} {:>13.1} {:>8.1}x   {}/{}/{}",
            format!("{scale}x"),
            nodes,
            on.docs_per_s,
            off.docs_per_s,
            speedup,
            on.tiers[0],
            on.tiers[1],
            on.tiers[2]
        );
        records.push((scale, nodes, on, off, speedup));
    }

    let out_path = std::env::var("WEBRE_BENCH_MAP_OUT")
        .unwrap_or_else(|_| "BENCH_map.json".to_owned());
    let mut out = std::fs::File::create(&out_path).expect("create bench output");
    for (scale, nodes, on, off, speedup) in &records {
        writeln!(
            out,
            "{{\"name\":\"map_throughput/{scale}x\",\"nodes\":{nodes},\"docs\":{},\
             \"budget\":{BUDGET},\"filter_on_docs_per_s\":{:.2},\
             \"filter_off_docs_per_s\":{:.2},\"speedup\":{:.2},\
             \"seconds_on\":{:.6},\"seconds_off\":{:.6},\
             \"conformant\":{},\"rejected\":{},\"exact\":{}}}",
            on.docs,
            on.docs_per_s,
            off.docs_per_s,
            speedup,
            on.seconds,
            off.seconds,
            on.tiers[0],
            on.tiers[1],
            on.tiers[2]
        )
        .expect("write bench record");
    }
    println!("==> wrote {} record(s) to {out_path}", records.len());
}
