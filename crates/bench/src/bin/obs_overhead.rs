//! Observability overhead: the full pipeline (convert → discover → map)
//! timed with tracing disabled, with the stats recorder, and with the
//! full trace recorder, over the same synthetic corpus.
//!
//! The disabled path is the claim under test: a `Ctx::disabled()` context
//! short-circuits every span and counter call on a single `enabled()`
//! check, so "recorder off" must be indistinguishable from not having the
//! instrumentation at all, and "recorder on" should stay within a few
//! percent (<3% target for stats — the always-on serving configuration).
//!
//! Results go to stdout as a table and to `BENCH_obs.json` (override with
//! `WEBRE_BENCH_OBS_OUT`) as JSON lines, one record per mode plus one
//! overhead summary record.
//!
//! Run with: `cargo run --release -p webre-bench --bin obs_overhead`
//! Args: `[--docs N] [--rounds N]`

use std::time::Instant;
use webre::obs::clock::MonotonicClock;
use webre::obs::stats::StatsRecorder;
use webre::obs::trace::TraceRecorder;
use webre::obs::Ctx;
use webre::Pipeline;
use webre_corpus::CorpusGenerator;

struct Outcome {
    name: &'static str,
    median_ns: u64,
    p95_ns: u64,
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx]
}

/// Times `rounds` full-pipeline runs, building a fresh recorder per round
/// via `make_ctx` so trace rounds do not accumulate spans across rounds.
fn run_mode(
    name: &'static str,
    pipeline: &Pipeline,
    htmls: &[String],
    rounds: usize,
    run_round: &dyn Fn(&Pipeline, &[String]),
) -> Outcome {
    // Warmup round absorbs first-touch effects (page faults, lazy init).
    run_round(pipeline, htmls);
    let mut samples: Vec<u64> = (0..rounds)
        .map(|_| {
            let started = Instant::now();
            run_round(pipeline, htmls);
            started.elapsed().as_nanos().min(u64::MAX as u128) as u64
        })
        .collect();
    samples.sort_unstable();
    Outcome {
        name,
        median_ns: percentile(&samples, 0.50),
        p95_ns: percentile(&samples, 0.95),
    }
}

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn overhead_pct(base_ns: u64, mode_ns: u64) -> f64 {
    if base_ns == 0 {
        return 0.0;
    }
    (mode_ns as f64 - base_ns as f64) / base_ns as f64 * 100.0
}

fn main() {
    let docs = arg("--docs", 40);
    let rounds = arg("--rounds", 30);

    let pipeline = Pipeline::resume_domain();
    let htmls: Vec<String> = CorpusGenerator::new(23)
        .generate(docs)
        .into_iter()
        .map(|d| d.html)
        .collect();

    let modes: [(&'static str, &dyn Fn(&Pipeline, &[String])); 3] = [
        ("off", &|p, h| {
            p.run_obs(h, Ctx::disabled()).expect("pipeline runs");
        }),
        ("stats", &|p, h| {
            let recorder = StatsRecorder::new(Box::new(MonotonicClock::new()));
            p.run_obs(h, Ctx::new(&recorder)).expect("pipeline runs");
        }),
        ("trace", &|p, h| {
            let recorder = TraceRecorder::new(Box::new(MonotonicClock::new()));
            p.run_obs(h, Ctx::new(&recorder)).expect("pipeline runs");
        }),
    ];

    println!("obs_overhead: {docs} docs, {rounds} rounds per mode");
    println!(
        "  {:<8} {:>14} {:>14} {:>10}",
        "mode", "median ns", "p95 ns", "overhead"
    );
    let mut outcomes: Vec<Outcome> = Vec::new();
    for (name, run_round) in &modes {
        let outcome = run_mode(name, &pipeline, &htmls, rounds, *run_round);
        let base = outcomes.first().map_or(outcome.median_ns, |o| o.median_ns);
        println!(
            "  {:<8} {:>14} {:>14} {:>9.2}%",
            outcome.name,
            outcome.median_ns,
            outcome.p95_ns,
            overhead_pct(base, outcome.median_ns)
        );
        outcomes.push(outcome);
    }

    let base_ns = outcomes[0].median_ns;
    let stats_pct = overhead_pct(base_ns, outcomes[1].median_ns);
    let trace_pct = overhead_pct(base_ns, outcomes[2].median_ns);
    if stats_pct >= 3.0 {
        println!("  NOTE: stats overhead {stats_pct:.2}% exceeds the 3% target");
    }

    let out_path =
        std::env::var("WEBRE_BENCH_OBS_OUT").unwrap_or_else(|_| "BENCH_obs.json".to_owned());
    use std::io::Write as _;
    let mut out = std::fs::File::create(&out_path).expect("create bench output");
    for o in &outcomes {
        writeln!(
            out,
            "{{\"name\":\"obs_{}\",\"docs\":{docs},\"rounds\":{rounds},\
             \"median_ns\":{},\"p95_ns\":{}}}",
            o.name, o.median_ns, o.p95_ns
        )
        .expect("write record");
    }
    writeln!(
        out,
        "{{\"name\":\"obs_overhead\",\"stats_pct\":{stats_pct:.3},\
         \"trace_pct\":{trace_pct:.3},\"target_pct\":3.0}}"
    )
    .expect("write record");
    println!("==> {} record(s) written to {out_path}", outcomes.len() + 1);
}
