//! Serving throughput: requests/second through a live `webre-serve`
//! instance, measured over real TCP with concurrent keep-alive clients.
//!
//! Three scenarios bracket the serving envelope:
//!
//! * `healthz`      — pure HTTP overhead (codec + queue + pool, no work)
//! * `convert_hot`  — a small document set replayed, so the sharded LRU
//!                    absorbs almost every request (production steady state
//!                    for crawl/re-crawl workloads)
//! * `convert_cold` — every request a distinct document: full conversion
//!                    per request, the cache can only miss
//!
//! Results go to stdout as a table and to `BENCH_serve.json` (override
//! with `WEBRE_BENCH_SERVE_OUT`) as JSON lines, one record per scenario.
//!
//! Run with: `cargo run --release -p webre-bench --bin serve_throughput`
//! Args: `[--workers N] [--clients N] [--requests N]` (requests are per
//! client, per scenario).

use std::io::{BufReader, Write as _};
use std::net::TcpStream;
use std::time::Instant;
use webre::serve::server::{ServeConfig, Server};
use webre::Pipeline;
use webre_corpus::CorpusGenerator;
use webre_substrate::http::{read_response, write_request};

struct Scenario {
    name: &'static str,
    /// Request target.
    path: &'static str,
    /// Bodies cycled per request; empty string means no body.
    bodies: Vec<String>,
    /// Per-client request count.
    requests: usize,
}

struct Outcome {
    name: &'static str,
    requests: usize,
    seconds: f64,
    rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    p999_us: u64,
    /// Cache hits/misses attributable to *this* scenario (deltas of the
    /// server's cumulative counters around the run, not the totals —
    /// the totals would repeat identically on every record).
    cache_hits: u64,
    cache_misses: u64,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

fn run_scenario(addr: std::net::SocketAddr, clients: usize, scenario: &Scenario) -> Outcome {
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let bodies = scenario.bodies.clone();
            let (path, requests) = (scenario.path, scenario.requests);
            std::thread::spawn(move || -> Vec<u64> {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).ok();
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut latencies_us = Vec::with_capacity(requests);
                for i in 0..requests {
                    let body = if bodies.is_empty() {
                        &[][..]
                    } else {
                        bodies[(c + i * clients) % bodies.len()].as_bytes()
                    };
                    let method = if body.is_empty() { "GET" } else { "POST" };
                    let sent = Instant::now();
                    write_request(&mut writer, method, path, body, true).expect("send");
                    let response =
                        read_response(&mut reader, 64 << 20).expect("response");
                    assert_eq!(response.status, 200, "{}", response.text());
                    latencies_us
                        .push(sent.elapsed().as_micros().min(u64::MAX as u128) as u64);
                }
                latencies_us
            })
        })
        .collect();
    let mut latencies: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let seconds = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let requests = latencies.len();
    Outcome {
        name: scenario.name,
        requests,
        seconds,
        rps: requests as f64 / seconds,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
        p999_us: percentile(&latencies, 0.999),
        cache_hits: 0,
        cache_misses: 0,
    }
}

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let workers = arg("--workers", 4);
    let clients = arg("--clients", 4);
    let requests = arg("--requests", 2000);

    // Distinct realistic documents from the synthetic resume corpus.
    let generator = CorpusGenerator::new(17);
    let hot: Vec<String> = generator.generate(8).into_iter().map(|d| d.html).collect();
    // Cold: enough unique documents that no request repeats — a different
    // generator seed so none collide with the hot set already cached.
    let cold_total = clients * requests.min(400);
    let cold: Vec<String> = CorpusGenerator::new(18)
        .generate(cold_total)
        .into_iter()
        .map(|d| d.html)
        .collect();

    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers,
            queue_cap: 256,
            cache_cap: 4096,
            ..ServeConfig::default()
        },
        Pipeline::resume_domain().serve_engine(),
    )
    .expect("bind");
    let addr = server.local_addr();

    let scenarios = [
        Scenario {
            name: "healthz",
            path: "/healthz",
            bodies: Vec::new(),
            requests,
        },
        Scenario {
            name: "convert_hot",
            path: "/convert",
            bodies: hot,
            requests,
        },
        Scenario {
            name: "convert_cold",
            path: "/convert",
            bodies: cold,
            requests: requests.min(400),
        },
    ];

    println!("serve_throughput: {workers} workers, {clients} clients");
    println!(
        "  {:<14} {:>9} {:>9} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "scenario", "requests", "seconds", "req/s", "p50 µs", "p95 µs", "p99 µs", "p99.9 µs"
    );
    let mut records = Vec::new();
    for scenario in &scenarios {
        // Bracket the run with the server's cumulative cache counters so
        // each record carries the hits/misses this scenario caused.
        let before = server.app().cache.stats();
        let mut outcome = run_scenario(addr, clients, scenario);
        let after = server.app().cache.stats();
        outcome.cache_hits = after.hits - before.hits;
        outcome.cache_misses = after.misses - before.misses;
        println!(
            "  {:<14} {:>9} {:>9.3} {:>10.0} {:>9} {:>9} {:>9} {:>9}",
            outcome.name,
            outcome.requests,
            outcome.seconds,
            outcome.rps,
            outcome.p50_us,
            outcome.p95_us,
            outcome.p99_us,
            outcome.p999_us
        );
        println!(
            "  {:<14} cache: {} hits / {} misses this scenario",
            "", outcome.cache_hits, outcome.cache_misses
        );
        records.push(outcome);
    }

    server.request_drain();
    server.join();

    let out_path = std::env::var("WEBRE_BENCH_SERVE_OUT")
        .unwrap_or_else(|_| "BENCH_serve.json".to_owned());
    let mut out = std::fs::File::create(&out_path).expect("create bench output");
    for r in &records {
        writeln!(
            out,
            "{{\"name\":\"serve_{}\",\"workers\":{workers},\"clients\":{clients},\
             \"requests\":{},\"seconds\":{:.6},\"rps\":{:.1},\"p50_us\":{},\"p95_us\":{},\
             \"p99_us\":{},\"p999_us\":{},\"cache_hits\":{},\"cache_misses\":{}}}",
            r.name,
            r.requests,
            r.seconds,
            r.rps,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.p999_us,
            r.cache_hits,
            r.cache_misses
        )
        .expect("write record");
    }
    println!("==> {} record(s) written to {out_path}", records.len());
}
