//! Experiment A6: automatic concept-instance discovery (the paper's
//! Section 5 future work, implemented).
//!
//! Setup: cripple the resume domain by deleting most of each content
//! concept's instances (keeping only the concept name itself), convert —
//! identification collapses. Then label a training corpus's tokens with
//! the *full* domain (standing in for the paper's hand-labeling), run
//! instance discovery, augment the crippled domain with what it finds, and
//! convert again.
//!
//! Run with: `cargo run --release -p webre-bench --bin instance_discovery`

use webre::concepts::discovery::{augment, discover_instances, DiscoveryConfig};
use webre::concepts::{resume, Concept, ConceptSet};
use webre_bench::harness::labeled_tokens;
use webre::convert::accuracy::logical_errors;
use webre::convert::Converter;
use webre_corpus::CorpusGenerator;

/// Keeps only the first instance (the concept name) of every content
/// concept; title concepts keep their headings so sections still resolve.
fn crippled_domain() -> ConceptSet {
    resume::concepts()
        .iter()
        .map(|c| {
            let mut c: Concept = c.clone();
            if matches!(c.role, webre::concepts::ConceptRole::Content) {
                c.instances.truncate(1);
            }
            c
        })
        .collect()
}

fn evaluate(label: &str, concepts: ConceptSet, eval_docs: usize) {
    let generator = CorpusGenerator::new(606);
    let converter = Converter::new(concepts);
    let mut identified = 0u64;
    let mut total = 0u64;
    let mut error = 0.0;
    for i in 0..eval_docs {
        let doc = generator.generate_one(50_000 + i);
        let (xml, stats) = converter.convert_str(&doc.html);
        identified += stats.tokens_identified;
        total += stats.tokens_total;
        error += logical_errors(&xml, &doc.truth).error_rate();
    }
    println!(
        "  {label:<22} {:>5.1}% tokens identified   {:>5.1}% avg error",
        identified as f64 / total as f64 * 100.0,
        error / eval_docs as f64 * 100.0
    );
}

fn main() {
    let train_docs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(80);
    let eval_docs = 40;

    println!("A6 — bootstrap via instance discovery ({train_docs} training documents)");
    println!();

    let full = resume::concepts();
    let crippled = crippled_domain();
    println!(
        "  full domain: {} instances; crippled domain: {} instances",
        full.total_instances(),
        crippled.total_instances()
    );
    println!();

    evaluate("full domain", full.clone(), eval_docs);
    evaluate("crippled domain", crippled.clone(), eval_docs);

    // Label training tokens with the full domain (the "hand labels").
    let generator = CorpusGenerator::new(606);
    let mut examples: Vec<(String, String)> = Vec::new();
    for doc in generator.generate(train_docs) {
        examples.extend(labeled_tokens(&doc.html, &full));
    }

    let proposals = discover_instances(&examples, "unknown", &DiscoveryConfig::default());
    let mut recovered = crippled;
    let added = augment(&mut recovered, &proposals);
    println!();
    println!(
        "  discovery proposed {} instances from {} labeled tokens; {} added",
        proposals.len(),
        examples.len(),
        added
    );
    for p in proposals.iter().take(8) {
        println!(
            "    {} <- {:?} (support {}, precision {:.2})",
            p.concept, p.instance, p.support, p.precision
        );
    }
    println!();
    evaluate("crippled + discovered", recovered, eval_docs);
}
