//! Experiment A7: support-threshold sweep.
//!
//! Section 3.2: "Obviously, the higher supThreshold, the more selective
//! and thus common are the schema structures discovered." This harness
//! sweeps `supThreshold` (and contrasts the `ratioThreshold` on/off) and
//! reports schema size, DTD size, path-level conformance, and mining
//! effort — the quantitative picture behind that sentence, interpolating
//! between the lower bound (threshold 1.0) and the DataGuide (threshold
//! → 0).
//!
//! Run with: `cargo run --release -p webre-bench --bin threshold_sweep`

use webre::Pipeline;
use webre_corpus::CorpusGenerator;
use webre_schema::baselines::path_conformance;
use webre_schema::{derive_dtd, extract_paths, DtdConfig, FrequentPathMiner};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120);
    let corpus = CorpusGenerator::new(99).generate(n);
    let htmls: Vec<String> = corpus.iter().map(|d| d.html.clone()).collect();
    let pipeline = Pipeline::resume_domain();
    let docs = pipeline.convert_corpus(&htmls);
    let paths: Vec<_> = docs.iter().map(extract_paths).collect();

    println!("A7 — supThreshold sweep over {n} documents (ratioThreshold = 0.3)");
    println!();
    println!(
        "  {:>9} {:>12} {:>10} {:>14} {:>10}",
        "threshold", "schema paths", "dtd elems", "conform (path)", "explored"
    );
    for sup in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let outcome = FrequentPathMiner {
            sup_threshold: sup,
            ratio_threshold: 0.3,
            constraints: Some(webre::concepts::resume::constraints()),
            max_len: None,
        }
        .mine(&paths)
        .expect("non-empty corpus");
        let dtd = derive_dtd(&outcome.schema, &paths, &DtdConfig::default());
        println!(
            "  {sup:>9.2} {:>12} {:>10} {:>13.0}% {:>10}",
            outcome.schema.len(),
            dtd.len(),
            path_conformance(&outcome.schema, &paths) * 100.0,
            outcome.nodes_explored,
        );
    }
    println!();
    println!("  (threshold → 0 recovers the DataGuide; threshold = 1 the lower bound;");
    println!("   the majority schema lives in the wide flat middle)");
}
