//! Ablation A1: contribution of the individual restructuring rules.
//!
//! The paper motivates each rule qualitatively (Sections 2.3–2.4,
//! including "applying HTML cleansing tools can improve the accuracy");
//! this harness quantifies them by re-running the Figure-4 accuracy
//! experiment with each structure rule (and the tidy pass) disabled.
//!
//! Run with: `cargo run --release -p webre-bench --bin ablation_rules`

use webre::concepts::resume;
use webre::convert::accuracy::logical_errors;
use webre::convert::{ConvertConfig, Converter};
use webre_corpus::CorpusGenerator;

fn run(label: &str, config: ConvertConfig, docs: usize) {
    let corpus = CorpusGenerator::new(2002).generate(docs);
    let converter = Converter::with_config(resume::concepts(), config);
    let mut total_rate = 0.0;
    let mut total_errors = 0u64;
    for doc in &corpus {
        let (xml, _) = converter.convert(&webre::html::parse(&doc.html));
        let report = logical_errors(&xml, &doc.truth);
        total_rate += report.error_rate();
        total_errors += report.errors;
    }
    println!(
        "  {label:<28} {:>6.1}% avg error   {:>5.1} errors/doc",
        total_rate / docs as f64 * 100.0,
        total_errors as f64 / docs as f64
    );
}

fn main() {
    let docs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50);
    println!("Ablation A1 — restructuring rules ({docs} documents)");
    println!();

    run("full pipeline", ConvertConfig::default(), docs);
    run(
        "without grouping rule",
        ConvertConfig {
            grouping: false,
            ..ConvertConfig::default()
        },
        docs,
    );
    run(
        "without consolidation rule",
        ConvertConfig {
            consolidation: false,
            ..ConvertConfig::default()
        },
        docs,
    );
    run(
        "without tidy pass",
        ConvertConfig {
            tidy: false,
            ..ConvertConfig::default()
        },
        docs,
    );
    run(
        "text rules only",
        ConvertConfig {
            grouping: false,
            consolidation: false,
            ..ConvertConfig::default()
        },
        docs,
    );
}
