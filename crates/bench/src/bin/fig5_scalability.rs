//! Experiment E3 — Figure 5: scalability.
//!
//! The paper runs schema discovery over datasets of up to 380 resume
//! documents and reports that running time scales linearly with the number
//! of documents, the number of nodes, and the number of concept (keyword)
//! nodes. Absolute times are not comparable (their testbed was a Pentium
//! 266 MHz); the *shape* — a strong linear relationship — is what this
//! harness reproduces, quantified by the R² of a least-squares line.
//!
//! Run with: `cargo run --release -p webre-bench --bin fig5_scalability`

use std::time::Instant;
use webre::Pipeline;
use webre_corpus::CorpusGenerator;
use webre_schema::FrequentPathMiner;

/// Least-squares R² of y against x.
fn r_squared(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxy: f64 = points
        .iter()
        .map(|p| (p.0 - mean_x) * (p.1 - mean_y))
        .sum();
    let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    let syy: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    if sxx == 0.0 || syy == 0.0 {
        return 1.0;
    }
    (sxy * sxy) / (sxx * syy)
}

fn main() {
    let max_docs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(380);

    let generator = CorpusGenerator::new(8);
    let pipeline = Pipeline::resume_domain().with_miner(FrequentPathMiner {
        sup_threshold: 0.5,
        ratio_threshold: 0.3,
        constraints: Some(webre::concepts::resume::constraints()),
        max_len: None,
    });

    println!("Figure 5 — Scalability (convert + discover, wall clock)");
    println!();
    println!("  {:>6} {:>10} {:>14} {:>12}", "docs", "nodes", "concept-nodes", "time (ms)");

    let sizes: Vec<usize> = (1..=8).map(|i| max_docs * i / 8).filter(|n| *n > 0).collect();
    let mut by_docs = Vec::new();
    let mut by_nodes = Vec::new();
    let mut by_concepts = Vec::new();
    for &n in &sizes {
        let corpus = generator.generate(n);
        let htmls: Vec<String> = corpus.iter().map(|d| d.html.clone()).collect();
        let html_nodes: usize = htmls
            .iter()
            .map(|h| webre::html::parse(h).element_count())
            .sum();

        let start = Instant::now();
        let docs = pipeline.convert_corpus(&htmls);
        let discovery = pipeline.discover_schema(&docs).expect("non-empty");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        let concept_nodes: usize = docs.iter().map(|d| d.element_count()).sum();

        println!(
            "  {n:>6} {html_nodes:>10} {concept_nodes:>14} {elapsed:>12.1}"
        );
        by_docs.push((n as f64, elapsed));
        by_nodes.push((html_nodes as f64, elapsed));
        by_concepts.push((concept_nodes as f64, elapsed));
        let _ = discovery;
    }

    println!();
    println!("  linearity (R² of time vs measure; paper claims 'very strong linear relationship'):");
    println!("    vs documents:      {:.4}", r_squared(&by_docs));
    println!("    vs nodes:          {:.4}", r_squared(&by_nodes));
    println!("    vs concept nodes:  {:.4}", r_squared(&by_concepts));
}
