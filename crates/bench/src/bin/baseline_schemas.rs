//! Experiment A3: majority schema vs DataGuide vs lower-bound schema.
//!
//! Section 1 of the paper argues the majority schema sits usefully between
//! the DataGuide (upper bound — every path anywhere) and the lower bound
//! (paths in every document), and that document mapping "is only
//! reasonable by using a majority schema". This harness quantifies all
//! three on one corpus: schema size, path-level conformance, and the edit
//! cost of mapping documents onto each schema's DTD.
//!
//! Run with: `cargo run --release -p webre-bench --bin baseline_schemas`

use webre::Pipeline;
use webre_corpus::CorpusGenerator;
use webre_map::map_to_dtd;
use webre_schema::baselines::{dataguide, lower_bound, path_conformance};
use webre_schema::{derive_dtd, extract_paths, DtdConfig, FrequentPathMiner, MajoritySchema};

fn report(
    label: &str,
    schema: &MajoritySchema,
    paths: &[webre_schema::DocPaths],
    docs: &[webre::xml::XmlDocument],
) {
    let dtd = derive_dtd(schema, paths, &DtdConfig::default());
    let conformance = path_conformance(schema, paths);
    let mut mapped_ok = 0usize;
    let mut total_cost = 0u64;
    let mut info_lost = 0u64; // demotions drop structure into vals
    for doc in docs {
        let outcome = map_to_dtd(doc, schema, &dtd);
        if outcome.conforms {
            mapped_ok += 1;
            total_cost += u64::from(outcome.edit_distance);
            info_lost += u64::from(outcome.demoted);
        }
    }
    println!(
        "  {label:<12} {:>6} paths {:>8} dtd-elems {:>10.0}% conform {:>7}/{} mapped  avg cost {:>5.1}  demotions {:>4}",
        schema.len(),
        dtd.len(),
        conformance * 100.0,
        mapped_ok,
        docs.len(),
        if mapped_ok > 0 { total_cost as f64 / mapped_ok as f64 } else { 0.0 },
        info_lost,
    );
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120);
    let corpus = CorpusGenerator::new(51).generate(n);
    let htmls: Vec<String> = corpus.iter().map(|d| d.html.clone()).collect();
    let pipeline = Pipeline::resume_domain();
    let docs = pipeline.convert_corpus(&htmls);
    let paths: Vec<_> = docs.iter().map(extract_paths).collect();

    println!("A3 — schema family comparison over {n} converted documents");
    println!();

    let lb = lower_bound(&paths).expect("non-empty corpus");
    report("lower bound", &lb, &paths, &docs);

    let majority = FrequentPathMiner {
        sup_threshold: 0.5,
        ratio_threshold: 0.3,
        constraints: Some(webre::concepts::resume::constraints()),
        max_len: None,
    }
    .mine(&paths)
    .expect("non-empty corpus")
    .schema;
    report("majority", &majority, &paths, &docs);

    let dg = dataguide(&paths).expect("non-empty corpus");
    report("dataguide", &dg, &paths, &docs);

    println!();
    println!(
        "  reading: the lower bound forces heavy demotion (structure collapses into vals);\n\
         \x20 the DataGuide conforms trivially but its DTD memorizes noise paths;\n\
         \x20 the majority schema keeps the DTD small while mapping cost stays low —\n\
         \x20 the paper's argument for majority schemas, quantified."
    );
}
