//! Experiment E2 — Section 4.2: concept constraints shrink the schema
//! search space.
//!
//! Paper: exhaustive enumeration of label paths over 24 concepts up to
//! length 4 explores 24⁵ − 1 = 7,962,623 nodes; with the constraint
//! classes (no repeats, 11 title names at depth 1, 13 content names at
//! depth > 1, max depth 4) the space drops to 1,871 nodes (0.023%); not
//! extending zero-support nodes leaves 73 explored (0.0009%).
//!
//! Run with: `cargo run --release -p webre-bench --bin table_constraints`

use webre::concepts::resume;
use webre::Pipeline;
use webre_schema::extract_paths;
use webre_schema::search_space::{
    constrained_enumeration, data_driven_exploration, exhaustive_size, trie_size,
};
use webre_corpus::CorpusGenerator;

fn main() {
    let docs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(380);

    let concepts = resume::concepts();
    let constraints = resume::constraints();

    let exhaustive = exhaustive_size(concepts.len(), resume::MAX_DEPTH);
    let trie = trie_size(concepts.len(), resume::MAX_DEPTH);
    let constrained = constrained_enumeration(&concepts, &constraints, "resume", 4);

    println!("Section 4.2 — Concept Constraints (search-space nodes)");
    println!();
    println!("  domain: {} concepts, {} instances, {} title / {} content names",
        concepts.len(),
        concepts.total_instances(),
        resume::TITLE_COUNT,
        resume::CONTENT_COUNT
    );
    println!();
    println!("  exhaustive (paper's 24^5-1 formula):  {exhaustive:>9}   (paper: 7,962,623)");
    println!("  exhaustive (trie-sum alternative):    {trie:>9}");
    println!(
        "  with constraints:                     {:>9}   (paper: 1,871 = 1 + 11 + 11x13 + 11x13x12)",
        constrained.admissible
    );
    println!(
        "    = {:.4}% of the paper's exhaustive space (paper: 0.023%)",
        constrained.admissible as f64 / exhaustive as f64 * 100.0
    );

    // Data-driven: only extend candidates with non-zero support.
    println!();
    println!("  converting {docs} generated documents for the data-driven count...");
    let corpus = CorpusGenerator::new(42).generate(docs);
    let pipeline = Pipeline::resume_domain();
    let paths: Vec<_> = corpus
        .iter()
        .map(|d| extract_paths(&pipeline.convert_html(&d.html).0))
        .collect();
    let explored = data_driven_exploration(&concepts, &constraints, &paths, "resume", 4);
    println!(
        "  constrained + non-zero support only:  {explored:>9}   (paper: 73)"
    );
    println!(
        "    = {:.4}% of the paper's exhaustive space (paper: 0.0009%)",
        explored as f64 / exhaustive as f64 * 100.0
    );
}
