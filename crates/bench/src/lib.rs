//! Shared helpers for the webre benchmark and experiment harnesses.
pub mod harness;
