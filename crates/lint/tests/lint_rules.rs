//! Fixture-driven rule tests plus the workspace self-lint gate.
//!
//! Each rule has a positive fixture (expected findings, including the
//! exact count), a negative fixture (expected silence, including a
//! suppressed would-be finding), and the whole fixture directory is
//! checked as one set so rules cannot contaminate each other's files.
//! Finally, the workspace itself must lint clean — the same invariant
//! `scripts/verify.sh` enforces with `webre lint --deny-warnings`.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use webre_lint::{lint_paths, lint_workspace, Diagnostic, LintConfig};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lints `files` (fixture names) with every rule enabled.
fn lint_fixtures(files: &[&str]) -> Vec<Diagnostic> {
    let paths: Vec<PathBuf> = files.iter().map(|f| fixture(f)).collect();
    lint_paths(&repo_root(), &paths, &LintConfig::default()).expect("lint run")
}

/// Findings for one rule over a pos/neg fixture pair.
fn rule_findings(rule: &str, files: &[&str]) -> Vec<Diagnostic> {
    let paths: Vec<PathBuf> = files.iter().map(|f| fixture(f)).collect();
    let config = LintConfig {
        only: Some(rule.to_owned()),
        ..LintConfig::default()
    };
    lint_paths(&repo_root(), &paths, &config).expect("lint run")
}

fn split_counts(diags: &[Diagnostic], pos: &str, neg: &str) -> (usize, usize) {
    let in_file = |f: &str| diags.iter().filter(|d| d.path.ends_with(f)).count();
    assert_eq!(
        in_file(pos) + in_file(neg),
        diags.len(),
        "findings outside the pos/neg pair: {diags:?}"
    );
    (in_file(pos), in_file(neg))
}

#[test]
fn nondet_iter_fires_on_positives_only() {
    let diags = rule_findings("nondet-iter", &["nondet_pos.rs", "nondet_neg.rs"]);
    let (pos, neg) = split_counts(&diags, "nondet_pos.rs", "nondet_neg.rs");
    assert_eq!(pos, 4, "collect-to-field, loop-push, loop-write, annotated collect: {diags:?}");
    assert_eq!(neg, 0, "negative fixture must stay silent: {diags:?}");
}

#[test]
fn std_only_fires_on_positives_only() {
    let diags = rule_findings("std-only", &["std_only_pos.rs", "std_only_neg.rs"]);
    let (pos, neg) = split_counts(&diags, "std_only_pos.rs", "std_only_neg.rs");
    assert_eq!(pos, 3, "serde, rand, extern crate libc: {diags:?}");
    assert_eq!(neg, 0, "negative fixture must stay silent: {diags:?}");
}

#[test]
fn wall_clock_fires_on_positives_only() {
    let diags = rule_findings("no-wall-clock", &["wall_clock_pos.rs", "wall_clock_neg.rs"]);
    let (pos, neg) = split_counts(&diags, "wall_clock_pos.rs", "wall_clock_neg.rs");
    // Import line (SystemTime + Instant), one use of each, env::var,
    // and thread::sleep.
    assert_eq!(pos, 6, "{diags:?}");
    assert_eq!(neg, 0, "negative fixture must stay silent: {diags:?}");
}

#[test]
fn panic_path_fires_on_positives_only() {
    let diags = rule_findings(
        "panic-in-hot-path",
        &["panic_pos.rs", "panic_neg.rs"],
    );
    let (pos, neg) = split_counts(&diags, "panic_pos.rs", "panic_neg.rs");
    assert_eq!(pos, 5, "unwrap, expect, panic!, buf[0], buf[i + 1]: {diags:?}");
    assert_eq!(neg, 0, "negative fixture must stay silent: {diags:?}");
}

#[test]
fn dropped_result_fires_on_positives_only() {
    let diags = rule_findings("dropped-result", &["dropped_pos.rs", "dropped_neg.rs"]);
    let (pos, neg) = split_counts(&diags, "dropped_pos.rs", "dropped_neg.rs");
    assert_eq!(pos, 5, "{diags:?}");
    assert_eq!(neg, 0, "negative fixture must stay silent: {diags:?}");
}

#[test]
fn lock_order_fires_on_positives_only() {
    let diags = rule_findings("lock-order", &["lock_pos.rs", "lock_neg.rs"]);
    let (pos, neg) = split_counts(&diags, "lock_pos.rs", "lock_neg.rs");
    // One finding per side of the ABBA pair.
    assert_eq!(pos, 2, "{diags:?}");
    assert_eq!(neg, 0, "file-wide suppression must silence the teardown pair: {diags:?}");
}

/// Guard-extent regressions: a branch-only `drop` must keep the edge
/// on the path that holds the guard, while block scopes and
/// straight-line drops end the guard before the next acquisition.
#[test]
fn lock_order_guard_extents_are_flow_sensitive() {
    let diags = rule_findings("lock-order", &["lock_extent_pos.rs", "lock_extent_neg.rs"]);
    let (pos, neg) = split_counts(&diags, "lock_extent_pos.rs", "lock_extent_neg.rs");
    assert_eq!(pos, 2, "conditional drop keeps the fall-path ABBA pair: {diags:?}");
    assert_eq!(neg, 0, "scoped/dropped guards must not produce edges: {diags:?}");
}

#[test]
fn lock_across_blocking_fires_on_positives_only() {
    let diags = rule_findings(
        "lock-across-blocking",
        &["lock_across_pos.rs", "lock_across_neg.rs"],
    );
    let (pos, neg) = split_counts(&diags, "lock_across_pos.rs", "lock_across_neg.rs");
    assert_eq!(pos, 3, "named guard, statement temporary, may-block callee: {diags:?}");
    assert_eq!(neg, 0, "drop/scope/condvar/suppression must stay silent: {diags:?}");
}

#[test]
fn unjoined_thread_fires_on_positives_only() {
    let diags = rule_findings("unjoined-thread", &["unjoined_pos.rs", "unjoined_neg.rs"]);
    let (pos, neg) = split_counts(&diags, "unjoined_pos.rs", "unjoined_neg.rs");
    assert_eq!(pos, 2, "both forgotten handles: {diags:?}");
    assert_eq!(neg, 0, "join/store/branch-join/suppression must stay silent: {diags:?}");
}

#[test]
fn unbounded_alloc_fires_on_positives_only() {
    let diags = rule_findings(
        "unbounded-request-alloc",
        &["unbounded_pos.rs", "unbounded_neg.rs"],
    );
    let (pos, neg) = split_counts(&diags, "unbounded_pos.rs", "unbounded_neg.rs");
    assert_eq!(pos, 3, "with_capacity, else-path vec!, resize: {diags:?}");
    assert_eq!(neg, 0, "bound checks/clamp/suppression must stay silent: {diags:?}");
}

/// The whole corpus linted as one set: every positive file fires exactly
/// its own rule; every negative file is silent for all rules.
#[test]
fn fixture_corpus_findings_are_exactly_as_expected() {
    let diags = lint_fixtures(&[
        "nondet_pos.rs",
        "nondet_neg.rs",
        "std_only_pos.rs",
        "std_only_neg.rs",
        "wall_clock_pos.rs",
        "wall_clock_neg.rs",
        "panic_pos.rs",
        "panic_neg.rs",
        "dropped_pos.rs",
        "dropped_neg.rs",
        "lock_pos.rs",
        "lock_neg.rs",
        "lock_extent_pos.rs",
        "lock_extent_neg.rs",
        "lock_across_pos.rs",
        "lock_across_neg.rs",
        "unjoined_pos.rs",
        "unjoined_neg.rs",
        "unbounded_pos.rs",
        "unbounded_neg.rs",
    ]);
    let got: BTreeSet<(String, &str)> = diags
        .iter()
        .map(|d| {
            let file = d.path.rsplit('/').next().unwrap_or(&d.path).to_owned();
            (file, d.rule)
        })
        .collect();
    let expected: BTreeSet<(String, &str)> = [
        ("nondet_pos.rs", "nondet-iter"),
        ("std_only_pos.rs", "std-only"),
        ("wall_clock_pos.rs", "no-wall-clock"),
        ("panic_pos.rs", "panic-in-hot-path"),
        ("dropped_pos.rs", "dropped-result"),
        ("lock_pos.rs", "lock-order"),
        ("lock_extent_pos.rs", "lock-order"),
        ("lock_across_pos.rs", "lock-across-blocking"),
        ("unjoined_pos.rs", "unjoined-thread"),
        ("unbounded_pos.rs", "unbounded-request-alloc"),
    ]
    .into_iter()
    .map(|(f, r)| (f.to_owned(), r))
    .collect();
    assert_eq!(got, expected, "full diagnostics: {diags:#?}");
}

/// Diagnostics come out sorted (path, line, rule) and deduplicated, so
/// `--format json` output is stable across runs.
#[test]
fn diagnostics_are_sorted_and_unique() {
    let diags = lint_fixtures(&[
        "nondet_pos.rs",
        "std_only_pos.rs",
        "panic_pos.rs",
        "dropped_pos.rs",
    ]);
    let keys: Vec<(&str, u32, &str)> = diags
        .iter()
        .map(|d| (d.path.as_str(), d.line, d.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(keys, sorted, "diagnostics must be canonicalized");
}

/// Property: the rendered diagnostic output is byte-identical no
/// matter what order the input paths arrive in. Shuffles the full
/// fixture corpus with a deterministic LCG and compares the JSON
/// rendering against the sorted-order baseline.
#[test]
fn diagnostic_output_is_byte_identical_under_file_order_shuffle() {
    let files = [
        "nondet_pos.rs",
        "nondet_neg.rs",
        "std_only_pos.rs",
        "std_only_neg.rs",
        "wall_clock_pos.rs",
        "wall_clock_neg.rs",
        "panic_pos.rs",
        "panic_neg.rs",
        "dropped_pos.rs",
        "dropped_neg.rs",
        "lock_pos.rs",
        "lock_neg.rs",
        "lock_extent_pos.rs",
        "lock_extent_neg.rs",
        "lock_across_pos.rs",
        "lock_across_neg.rs",
        "unjoined_pos.rs",
        "unjoined_neg.rs",
        "unbounded_pos.rs",
        "unbounded_neg.rs",
    ];
    let render = |order: &[&str]| -> String {
        let paths: Vec<PathBuf> = order.iter().map(|f| fixture(f)).collect();
        let diags =
            lint_paths(&repo_root(), &paths, &LintConfig::default()).expect("lint run");
        webre_lint::render_json(&diags)
    };
    let baseline = render(&files);
    // Deterministic LCG (Numerical Recipes constants) drives a
    // Fisher-Yates shuffle; no external randomness enters the test.
    let mut state: u64 = 0x5EED_CAFE_F00D_D00D;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    for round in 0..8 {
        let mut shuffled = files;
        for i in (1..shuffled.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        let got = render(&shuffled);
        assert_eq!(got, baseline, "output drifted under shuffle round {round}");
    }
}

/// The workspace's own sources must produce zero findings — the gate
/// `scripts/verify.sh` runs as `webre lint --deny-warnings`.
#[test]
fn workspace_lints_clean() {
    let diags = lint_workspace(&repo_root(), &LintConfig::default()).expect("lint run");
    assert!(
        diags.is_empty(),
        "workspace must lint clean; findings:\n{}",
        webre_lint::render_text(&diags)
    );
}
