// Positive fixture for lock-across-blocking: guards live across
// blocking I/O — a named guard, a statement temporary, and a call into
// a helper whose summary says it may block.
use std::net::TcpStream;
use webre_substrate::sync::{Mutex, RwLock};

pub struct Journal {
    entries: Mutex<Vec<u8>>,
    index: RwLock<Vec<usize>>,
}

impl Journal {
    // Finding 1: the named guard is still live when the socket write
    // blocks — every other writer stalls behind a slow peer.
    pub fn stream_out(&self, sock: &mut TcpStream) {
        let entries = self.entries.lock();
        sock.write_all(&entries).ok();
    }

    // Finding 2: the read guard is a statement temporary borrowed by
    // `first`, so it lives to the end of the `if let` — across the
    // write inside the block.
    pub fn send_head(&self, sock: &mut TcpStream, payload: &[u8]) {
        if let Some(first) = self.index.read().first() {
            sock.write_all(&payload[..*first]).ok();
        }
    }

    // Finding 3: interprocedural — `persist` carries a may-block
    // summary (its write_all), and the guard is live across the call.
    pub fn checkpoint(&self, sink: &mut TcpStream) {
        let entries = self.entries.lock();
        persist(sink, &entries);
    }
}

fn persist(sink: &mut TcpStream, data: &[u8]) {
    sink.write_all(data).ok();
}
