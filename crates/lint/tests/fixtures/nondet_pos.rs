// Positive fixture for nondet-iter: hash iteration reaching ordered
// output with no sort in between. Data for the lint engine, not
// compiled into any crate.
use std::collections::{HashMap, HashSet};

pub struct Registry {
    entries: HashMap<String, u32>,
    tags: HashSet<String>,
}

pub struct Report {
    lines: Vec<String>,
}

impl Registry {
    // Finding 1: collect into a Vec landing in an ordered struct field.
    pub fn to_report(self) -> Report {
        let lines = self
            .entries
            .into_iter()
            .map(|(name, count)| format!("{name}={count}"))
            .collect();
        Report { lines }
    }

    // Finding 2: for loop over a hash set pushing into a Vec.
    pub fn tag_list(&self) -> Vec<String> {
        let mut out = Vec::new();
        for tag in &self.tags {
            out.push(tag.clone());
        }
        out
    }

    // Finding 3: writing in hash iteration order.
    pub fn dump(&self, buf: &mut String) {
        use std::fmt::Write;
        for (name, count) in &self.entries {
            writeln!(buf, "{name}: {count}").ok();
        }
    }

    // Finding 4: annotated collect into a Vec, never sorted.
    pub fn names(&self) -> Vec<String> {
        let snapshot: Vec<String> = self.entries.keys().cloned().collect();
        snapshot
    }
}
