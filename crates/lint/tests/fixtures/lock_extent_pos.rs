// Regression fixture for lock-order guard extents: a `drop` on one
// branch must not erase the ABBA edge on the branch that keeps the
// guard. The pre-CFG engine ended the extent at the first `drop`
// token and missed this pair.
use webre_substrate::sync::Mutex;

pub struct Extent {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Extent {
    // alpha -> beta on the slow path: `drop(a)` only happens on the
    // fast path, so the fall-through still holds `a` at `beta.lock()`.
    pub fn forward(&self, fast: bool) -> u64 {
        let a = self.alpha.lock();
        if fast {
            drop(a);
            return 0;
        }
        let b = self.beta.lock();
        *a + *b
    }

    // beta -> alpha: the reversed side of the deadlock.
    pub fn backward(&self) -> u64 {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        *a + *b
    }
}
