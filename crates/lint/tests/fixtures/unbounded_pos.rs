// Positive fixture for unbounded-request-alloc: request-derived sizes
// reaching allocation sinks with no upper-bound check on the reported
// path.
pub fn read_body(header: &str, payload: &[u8]) -> Vec<u8> {
    let declared: usize = header.parse().unwrap_or(0);
    // Finding 1: a peer-controlled length sizes the buffer directly.
    let mut body = Vec::with_capacity(declared);
    body.extend_from_slice(payload);
    body
}

pub fn branch_miss(header: &str) -> Vec<u8> {
    let declared: usize = header.parse().unwrap_or(0);
    if declared < 4096 {
        // Clean path: the Then edge carries the bound.
        return vec![0u8; declared];
    }
    // Finding 2: the large-length path allocates anyway.
    vec![0u8; declared]
}

pub fn resize_miss(header: &str, buf: &mut Vec<u8>) {
    let declared: usize = header.parse().unwrap_or(0);
    // Finding 3: `resize` grows to whatever the peer claimed.
    buf.resize(declared, 0);
}
