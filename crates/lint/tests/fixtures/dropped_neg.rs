// Negative fixture for dropped-result: Results that are handled,
// propagated, deliberately consumed, or suppressed with a reason.
use std::io::Write;
use std::net::TcpStream;

pub fn persist_neg(data: &str) -> Result<(), std::io::Error> {
    std::fs::write("out.txt", data)
}

pub fn careful(stream: &mut TcpStream, data: &str) -> Result<(), std::io::Error> {
    // Clean: propagated.
    stream.write_all(data.as_bytes())?;
    // Clean: bound and inspected.
    let flushed = stream.flush();
    if flushed.is_err() {
        return flushed;
    }
    // Clean: propagated with `?`.
    persist_neg(data)?;
    Ok(())
}

pub fn best_effort(stream: &mut TcpStream) {
    // webre::allow(dropped-result): TCP_NODELAY is a hint; losing it is harmless
    let _ = stream.set_nodelay(true);
    // Clean: explicit discard justified by a trailing comment.
    let _ = stream.flush(); // best-effort; the connection is closing anyway
    // Clean: a unit-returning call discarded as a statement is not a
    // dropped Result.
    log_line("done");
}

fn log_line(message: &str) {
    eprintln!("{message}");
}
