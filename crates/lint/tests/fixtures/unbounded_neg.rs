// Negative fixture for unbounded-request-alloc: early-return bound
// checks, taint laundered through an explicit clamp, a Then-edge
// guard, and one justified suppression.
const LIMIT: usize = 4096;

// Clean: the oversized case returns before the allocation, so every
// path reaching `with_capacity` is bounded.
pub fn read_body_checked(header: &str, payload: &[u8]) -> Vec<u8> {
    let declared: usize = header.parse().unwrap_or(0);
    if declared > LIMIT {
        return Vec::new();
    }
    let mut body = Vec::with_capacity(declared);
    body.extend_from_slice(payload);
    body
}

// Clean: the rebinding clamps the value; the taint dies with the old
// binding.
pub fn clamped(header: &str) -> Vec<u8> {
    let declared: usize = header.parse().unwrap_or(0);
    let declared = declared.min(LIMIT);
    vec![0u8; declared]
}

// Clean: allocation only on the Then side of the bound check.
pub fn guarded_branch(header: &str) -> Vec<u8> {
    let declared: usize = header.parse().unwrap_or(0);
    if declared < LIMIT {
        return vec![0u8; declared];
    }
    Vec::new()
}

// Suppressed: a trusted channel, with the trust written down.
pub fn admin_scratch(header: &str) -> Vec<u8> {
    let declared: usize = header.parse().unwrap_or(0);
    // webre::allow(unbounded-request-alloc): the admin socket is loopback-only; its peer is this process
    vec![0u8; declared]
}
