// Negative fixture for unjoined-thread: joined handles, stored
// handles, a branch-only join (joined on *a* path is enough), and one
// deliberate detach with a written reason.
use std::thread;

// Clean: spawned and joined.
pub fn joined(n: u64) -> u64 {
    let h = thread::spawn(move || n + 1);
    h.join().unwrap_or(n)
}

// Clean: the handle is stored; whoever owns the vec joins later.
pub fn stored(handles: &mut Vec<thread::JoinHandle<u64>>, n: u64) {
    let h = thread::spawn(move || n);
    handles.push(h);
}

// Clean: a naive checker would flag the path that skips the `if`, but
// "never joined on any path" means a single joining path clears it.
pub fn branch_joined(flag: bool, n: u64) -> u64 {
    let h = thread::spawn(move || n);
    if flag {
        return h.join().unwrap_or(0);
    }
    n
}

// Suppressed: deliberately detached with the reason written down.
pub fn detached_flusher(n: u64) {
    // webre::allow(unjoined-thread): the flusher is detached by design; process exit reaps it
    let flusher = thread::spawn(move || n);
}
