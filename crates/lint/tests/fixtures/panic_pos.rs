// Positive fixture for panic-in-hot-path: panicking constructs in what
// would be request-serving code.
use std::collections::HashMap;

pub fn parse_header(line: &str) -> (String, String) {
    let mut parts = line.splitn(2, ':');
    let name = parts.next().unwrap().to_owned();
    let value = parts.next().expect("header has a value").to_owned();
    (name, value)
}

pub fn route(table: &HashMap<String, usize>, path: &str) -> usize {
    match table.get(path) {
        Some(id) => *id,
        None => panic!("unknown route {path}"),
    }
}

pub fn first_byte(buf: &[u8]) -> u8 {
    buf[0]
}

pub fn next_byte(buf: &[u8], i: usize) -> u8 {
    buf[i + 1]
}
