// Positive fixture for std-only: imports of crates that are neither
// std nor workspace members.
use serde::{Deserialize, Serialize};
use rand::Rng;

extern crate libc;

pub fn noise() -> u8 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
