// Negative fixture for lock-order: consistent global order, guards
// dropped before the next acquisition, io `read` on a non-lock
// receiver, and a documented file-wide suppression for a teardown
// path that reverses the order on purpose.
use std::io::Read;
use webre_substrate::sync::{Mutex, RwLock};

pub struct Calm {
    first_stage: Mutex<u64>,
    second_stage: Mutex<u64>,
    snapshot: RwLock<Vec<u8>>,
}

impl Calm {
    // Clean: both fns agree on first_stage -> second_stage.
    pub fn advance(&self) {
        let a = self.first_stage.lock();
        let b = self.second_stage.lock();
        drop(b);
        drop(a);
    }

    pub fn reconcile(&self) {
        let a = self.first_stage.lock();
        let b = self.second_stage.lock();
        drop(a);
        drop(b);
    }

    // Clean: the first guard is dropped before the second acquisition.
    pub fn staged(&self) {
        let a = self.second_stage.lock();
        drop(a);
        let b = self.first_stage.lock();
        drop(b);
    }

    // Clean: `read` on an io reader is not a lock acquisition.
    pub fn ingest(&self, mut source: impl Read) -> usize {
        let mut buf = [0u8; 64];
        let n = source.read(&mut buf).unwrap_or(0);
        let snap = self.snapshot.read();
        n + snap.len()
    }
}

// The teardown path reverses the gate order while single-threaded;
// webre::allow-file(lock-order): teardown runs after every worker joined
pub struct Nested {
    outer_gate: Mutex<u64>,
    inner_gate: Mutex<u64>,
}

impl Nested {
    pub fn forward(&self) {
        let o = self.outer_gate.lock();
        let i = self.inner_gate.lock();
        drop(i);
        drop(o);
    }

    pub fn reverse_for_teardown(&self) {
        let i = self.inner_gate.lock();
        let o = self.outer_gate.lock();
        drop(o);
        drop(i);
    }
}
