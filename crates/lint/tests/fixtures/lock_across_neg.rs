// Negative fixture for lock-across-blocking: guards released before
// the I/O, block-scoped guards, the condvar-consumes-guard idiom, and
// one justified suppression.
use std::fs::File;
use std::net::TcpStream;
use webre_substrate::sync::{Condvar, Mutex};

pub struct Outbox {
    queue: Mutex<Vec<u8>>,
    ready: Condvar,
}

impl Outbox {
    // Clean: the guard is dropped before the socket write; only the
    // copy crosses the blocking call.
    pub fn drain(&self, sock: &mut TcpStream) {
        let queue = self.queue.lock();
        let snapshot = queue.clone();
        drop(queue);
        sock.write_all(&snapshot).ok();
    }

    // Clean: the guard dies at the end of its block, before the write.
    pub fn drain_scoped(&self, sock: &mut TcpStream) {
        let snapshot = {
            let queue = self.queue.lock();
            queue.clone()
        };
        sock.write_all(&snapshot).ok();
    }

    // Clean: `wait` consumes the guard by value — that is the condvar
    // contract, not a guard held across blocking.
    pub fn park_until_ready(&self) {
        let queue = self.queue.lock();
        let queue = self.ready.wait(queue);
        drop(queue);
    }

    // Suppressed: the fsync is deliberately inside the critical
    // section so no append can land between flush and acknowledgement.
    pub fn checkpoint(&self, wal: &mut File) {
        let queue = self.queue.lock();
        // webre::allow(lock-across-blocking): fsync under the lock is the durability barrier for the queue
        wal.sync_all().ok();
        drop(queue);
    }
}
